//! The TCP front end: one thread per connection, each speaking the
//! line-oriented wire protocol against the shared [`UucsServer`].

use crate::server::UucsServer;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use uucs_protocol::wire::{read_client_msg, write_server_msg, Endpoint};
use uucs_protocol::ClientMsg;

/// A running TCP server; dropping it (after [`ServerHandle::shutdown`])
/// joins the accept loop.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    /// The shared server state, for inspection by tests and drivers.
    pub server: Arc<UucsServer>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown and joins the accept loop. In-flight connections
    /// finish their current message exchange.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

/// Binds `127.0.0.1:0` (or a specific address) and serves the given
/// server state until shutdown.
pub fn serve(server: Arc<UucsServer>, addr: &str) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    let server2 = server.clone();
    let accept_thread = std::thread::spawn(move || {
        for conn in listener.incoming() {
            if stop2.load(Ordering::SeqCst) {
                break;
            }
            match conn {
                Ok(stream) => {
                    let server = server2.clone();
                    std::thread::spawn(move || handle_connection(stream, &*server));
                }
                Err(_) => break,
            }
        }
    });
    Ok(ServerHandle {
        addr: local,
        stop,
        accept_thread: Some(accept_thread),
        server,
    })
}

/// Runs the message loop for one connection.
fn handle_connection(stream: TcpStream, server: &dyn Endpoint) {
    let mut writer = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        match read_client_msg(&mut reader) {
            Ok(Some(ClientMsg::Bye)) | Ok(None) => return,
            Ok(Some(msg)) => {
                let reply = server.handle(&msg);
                if write_server_msg(&mut writer, &reply).is_err() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::TestcaseStore;
    use std::io::BufReader;
    use uucs_protocol::wire::{read_server_msg, write_client_msg};
    use uucs_protocol::{MachineSnapshot, ServerMsg};
    use uucs_testcase::{ExerciseSpec, Resource, Testcase};

    fn start() -> ServerHandle {
        let lib = TestcaseStore::from_testcases(
            (0..10)
                .map(|i| {
                    Testcase::single(
                        format!("t{i}"),
                        1.0,
                        Resource::Disk,
                        ExerciseSpec::Ramp {
                            level: 2.0,
                            duration: 10.0,
                        },
                    )
                })
                .collect(),
        )
        .expect("generated ids are unique");
        serve(Arc::new(UucsServer::new(lib, 9)), "127.0.0.1:0").unwrap()
    }

    #[test]
    fn register_sync_upload_over_tcp() {
        let handle = start();
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);

        write_client_msg(
            &mut writer,
            &ClientMsg::Register(MachineSnapshot::study_machine("tcp-test")),
        )
        .unwrap();
        let id = match read_server_msg(&mut reader).unwrap() {
            ServerMsg::Id(id) => id,
            other => panic!("{other:?}"),
        };

        write_client_msg(
            &mut writer,
            &ClientMsg::Sync {
                client: id.clone(),
                have: 0,
                want: 4,
            },
        )
        .unwrap();
        match read_server_msg(&mut reader).unwrap() {
            ServerMsg::Testcases(tcs) => assert_eq!(tcs.len(), 4),
            other => panic!("{other:?}"),
        }

        write_client_msg(
            &mut writer,
            &ClientMsg::Upload {
                client: id,
                records: vec![],
            },
        )
        .unwrap();
        assert!(matches!(
            read_server_msg(&mut reader).unwrap(),
            ServerMsg::Ack(0)
        ));

        write_client_msg(&mut writer, &ClientMsg::Bye).unwrap();
        assert_eq!(handle.server.client_count(), 1);
        handle.shutdown();
    }

    #[test]
    fn concurrent_clients() {
        let handle = start();
        let addr = handle.addr();
        let threads: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let stream = TcpStream::connect(addr).unwrap();
                    let mut writer = stream.try_clone().unwrap();
                    let mut reader = BufReader::new(stream);
                    write_client_msg(
                        &mut writer,
                        &ClientMsg::Register(MachineSnapshot::study_machine(format!("h{i}"))),
                    )
                    .unwrap();
                    match read_server_msg(&mut reader).unwrap() {
                        ServerMsg::Id(id) => id,
                        other => panic!("{other:?}"),
                    }
                })
            })
            .collect();
        let mut ids: Vec<String> = threads.into_iter().map(|t| t.join().unwrap()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 4, "all clients got distinct ids");
        assert_eq!(handle.server.client_count(), 4);
        handle.shutdown();
    }

    #[test]
    fn shutdown_stops_accepting() {
        let handle = start();
        let addr = handle.addr();
        handle.shutdown();
        // After shutdown the listener is gone; connecting fails or the
        // connection is immediately useless. Either way no panic.
        let _ = TcpStream::connect(addr);
    }
}
