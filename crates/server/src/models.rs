//! The server's comfort-model store (`uucs-modelsvc` integration).
//!
//! Holds the fleet-wide [`ComfortModel`] the `MODEL` and `ADVICE` verbs
//! answer from, updated incrementally inside the `UPLOAD` path: every
//! *applied* (non-replayed) batch that yields at least one observation
//! becomes one epoch. In durable mode the store journals each
//! [`uucs_modelsvc::ModelDelta`] as a [`WalEntry::Model`] before
//! applying it, and
//! compaction snapshots the full [`ComfortModel::encode`] text — so a
//! recovered server serves the exact epoch and byte-identical sketches
//! it served before the crash.
//!
//! Queries are cached per `(resource, task)` key and tagged with the
//! epoch they were merged at: the merge over cohorts reruns only when
//! the model actually advanced, so a fleet of clients polling `MODEL`
//! between uploads costs one `HashMap` hit each.

use crate::store::{invalid, WalTelemetry};
use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::Mutex;
use std::sync::OnceLock;
use uucs_modelsvc::{ComfortModel, Observation, QuantileSketch};
use uucs_protocol::{RunOutcome, RunRecord, WalEntry};
use uucs_telemetry::{metrics, Counter, Gauge, Histogram};
use crate::storage::{plain_io, StoreIo};
use uucs_wal::{Recovery, Wal, WalConfig};

/// Telemetry handles for the model service, registered once.
struct ModelMetrics {
    /// Current model epoch (gauge: it survives `STATS RESET` as a level,
    /// not a rate).
    epoch: Gauge,
    /// Latency of one model update (mint + journal + apply), ns.
    update_ns: Histogram,
    /// Observations folded into the model, total.
    observations: Counter,
    /// Model updates that failed to journal (the upload itself still
    /// acks — records are the source of truth, the model is derived).
    update_errors: Counter,
}

fn model_metrics() -> &'static ModelMetrics {
    static METRICS: OnceLock<ModelMetrics> = OnceLock::new();
    METRICS.get_or_init(|| ModelMetrics {
        epoch: metrics::gauge("modelsvc.epoch"),
        update_ns: metrics::histogram("modelsvc.update.ns"),
        observations: metrics::counter("modelsvc.observations"),
        update_errors: metrics::counter("modelsvc.update.errors"),
    })
}

/// Extracts the model observations an upload batch contributes: one per
/// `(record, exercised resource)` pair, at the contention level in force
/// when the user reported (or the run exhausted, which censors the
/// sample — the user's threshold lies above every level explored).
pub fn observations_of(records: &[RunRecord]) -> Vec<Observation> {
    let mut out = Vec::new();
    for rec in records {
        for (resource, levels) in &rec.last_levels {
            let Some(&level) = levels.last() else {
                continue;
            };
            if !level.is_finite() {
                continue;
            }
            out.push(Observation {
                resource: *resource,
                task: rec.task.clone(),
                skill: rec.skill.clone(),
                level,
                censored: rec.outcome == RunOutcome::Exhausted,
            });
        }
    }
    out
}

/// A cached `MODEL` reply body: the merged sketch (encoded and decoded
/// forms) plus the epoch it was computed at.
struct CachedMerge {
    epoch: u64,
    observed: u64,
    censored: u64,
    encoded: String,
}

/// The server's comfort-model state: the cohort model, its optional WAL,
/// and the per-epoch query cache.
pub struct ModelStore {
    model: ComfortModel,
    wal: Option<Wal<StoreIo>>,
    /// Merged-query cache keyed by `(resource name, task)`. Interior
    /// mutability because queries come in through read locks; entries
    /// are invalidated by epoch tag, not eviction.
    cache: Mutex<HashMap<(&'static str, Option<String>), CachedMerge>>,
}

impl Default for ModelStore {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelStore {
    /// An empty, non-durable model store at epoch 0.
    pub fn new() -> Self {
        ModelStore {
            model: ComfortModel::new(),
            wal: None,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// Opens (creating if necessary) a WAL-backed model store: replays
    /// the journal under `dir` (snapshot = full model, entries = epoch
    /// deltas) and journals every subsequent update before applying it.
    pub fn open_wal(dir: &Path, config: WalConfig) -> io::Result<(Self, Recovery)> {
        Self::open_wal_with(plain_io(), dir, config)
    }

    /// [`ModelStore::open_wal`] over an explicit I/O backend (see
    /// [`crate::storage::StorageProfile::store_io`]).
    pub fn open_wal_with(
        io: StoreIo,
        dir: &Path,
        config: WalConfig,
    ) -> io::Result<(Self, Recovery)> {
        let (mut wal, mut recovery) = Wal::open(io, dir, config)?;
        WalTelemetry::install(&mut wal, "model");
        let mut model = ComfortModel::new();
        if let Some(snap) = recovery.snapshot.take() {
            let text = std::str::from_utf8(&snap.state).map_err(invalid)?;
            model = ComfortModel::decode(text).map_err(invalid)?;
        }
        for item in wal.replay() {
            let (lsn, payload) = item?;
            match WalEntry::decode(&payload).map_err(invalid)? {
                WalEntry::Model(delta) => model
                    .apply(&delta)
                    .map_err(|e| invalid(format!("record {lsn}: {e}")))?,
                _ => {
                    return Err(invalid(format!(
                        "record {lsn}: foreign entry in a model journal"
                    )))
                }
            }
        }
        model_metrics().epoch.set(model.epoch() as i64);
        Ok((
            ModelStore {
                model,
                wal: Some(wal),
                cache: Mutex::new(HashMap::new()),
            },
            recovery,
        ))
    }

    /// True when updates are journaled through a WAL.
    pub fn is_durable(&self) -> bool {
        self.wal.is_some()
    }

    /// Defers segment-rotation fsyncs to the next explicit sync pass
    /// (the group committer's), keeping rotation off the append path.
    /// No-op in plain mode.
    pub fn set_deferred_rotation_sync(&mut self, defer: bool) {
        if let Some(wal) = &mut self.wal {
            wal.set_deferred_rotation_sync(defer);
        }
    }

    /// The current model epoch.
    pub fn epoch(&self) -> u64 {
        self.model.epoch()
    }

    /// Folds an applied upload batch into the model as one epoch.
    /// Returns the new epoch, or the unchanged one when the batch
    /// contributed no observations (no epoch is minted for nothing —
    /// clients use epoch advances as a "new data" signal).
    ///
    /// In durable mode the delta is journaled *before* it is applied,
    /// so recovery replays the identical epoch sequence.
    pub fn observe_batch(&mut self, observations: Vec<Observation>) -> io::Result<u64> {
        if observations.is_empty() {
            return Ok(self.model.epoch());
        }
        let m = model_metrics();
        let timer = m.update_ns.start_timer();
        let count = observations.len() as u64;
        let delta = self.model.next_delta(observations);
        if let Some(wal) = &mut self.wal {
            wal.append(&WalEntry::Model(delta.clone()).encode())?;
        }
        self.model
            .apply(&delta)
            .map_err(|e| invalid(format!("model delta rejected: {e}")))?;
        m.observations.add(count);
        m.epoch.set(self.model.epoch() as i64);
        drop(timer);
        Ok(self.model.epoch())
    }

    /// Counts a failed model update (the journal refused the delta). The
    /// caller still acks the upload — the raw records are the source of
    /// truth and the model is derived state, rebuildable from them.
    pub fn count_update_error() {
        model_metrics().update_errors.inc();
    }

    /// The merged model for a `MODEL` query: `(epoch, observed, censored,
    /// encoded sketch)`. Served from the per-epoch cache when the model
    /// has not advanced since the same query last ran.
    pub fn merged(
        &self,
        resource: uucs_testcase::Resource,
        task: Option<&str>,
    ) -> (u64, u64, u64, String) {
        let epoch = self.model.epoch();
        let key = (resource.name(), task.map(str::to_string));
        let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(hit) = cache.get(&key) {
            if hit.epoch == epoch {
                return (epoch, hit.observed, hit.censored, hit.encoded.clone());
            }
        }
        let sketch = self.model.merged(resource, task);
        let entry = CachedMerge {
            epoch,
            observed: sketch.observed(),
            censored: sketch.censored(),
            encoded: sketch.encode(),
        };
        let reply = (epoch, entry.observed, entry.censored, entry.encoded.clone());
        cache.insert(key, entry);
        reply
    }

    /// The recommended borrowing level for an `ADVICE` query, or `None`
    /// when the resource has no observations at all.
    pub fn advice(
        &self,
        resource: uucs_testcase::Resource,
        task: &str,
        epsilon: f64,
    ) -> Option<(u64, f64)> {
        self.model
            .advice(resource, task, epsilon)
            .map(|level| (self.model.epoch(), level))
    }

    /// Direct access to the merged sketch (tests, offline analysis).
    pub fn merged_sketch(
        &self,
        resource: uucs_testcase::Resource,
        task: Option<&str>,
    ) -> QuantileSketch {
        self.model.merged(resource, task)
    }

    /// The LSN the next journal append would get (`None` in plain mode)
    /// — the group-commit durability watermark.
    pub fn wal_next_lsn(&self) -> Option<u64> {
        self.wal.as_ref().map(|w| w.next_lsn())
    }

    /// Forces everything journaled so far to stable storage, returning
    /// the covered watermark. `Ok(0)` in plain mode.
    pub fn sync_wal(&mut self) -> io::Result<u64> {
        match &mut self.wal {
            Some(wal) => {
                wal.sync()?;
                Ok(wal.next_lsn())
            }
            None => Ok(0),
        }
    }

    /// Consumes the store, yielding the model (shard migration).
    pub fn into_model(self) -> ComfortModel {
        self.model
    }

    /// The model this shard holds — gossip reads it to build the node's
    /// own contribution without disturbing the store.
    pub fn model(&self) -> &ComfortModel {
        &self.model
    }

    /// Replaces the model wholesale and, in durable mode, checkpoints it
    /// immediately — the shard-migration path, where the new state does
    /// not arrive as deltas. The snapshot supersedes any journal tail,
    /// so a reopened store serves exactly the installed model.
    pub fn install_model(&mut self, model: ComfortModel) -> io::Result<()> {
        self.model = model;
        self.cache.lock().unwrap_or_else(|e| e.into_inner()).clear();
        model_metrics().epoch.set(self.model.epoch() as i64);
        if self.wal.is_some() {
            self.compact()?;
        }
        Ok(())
    }

    /// Folds the journal into a full-model checkpoint and deletes the
    /// segments it covers. Returns `false` (doing nothing) in plain mode.
    pub fn compact(&mut self) -> io::Result<bool> {
        let Some(wal) = &mut self.wal else {
            return Ok(false);
        };
        wal.snapshot(self.model.encode().as_bytes())?;
        wal.compact()?;
        Ok(true)
    }
}
