//! Text-file-backed stores, as in the paper ("store testcases and
//! results on permanent storage in text files").

use std::path::Path;
use uucs_protocol::RunRecord;
use uucs_testcase::{format as tcformat, Testcase};

/// The server's testcase library.
#[derive(Debug, Default)]
pub struct TestcaseStore {
    testcases: Vec<Testcase>,
}

impl TestcaseStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a store from testcases, rejecting duplicate ids.
    pub fn from_testcases(testcases: Vec<Testcase>) -> Self {
        let mut s = Self::new();
        for tc in testcases {
            s.add(tc);
        }
        s
    }

    /// Adds a testcase ("new testcases can be added to the server at any
    /// time"). Panics on a duplicate id.
    pub fn add(&mut self, tc: Testcase) {
        assert!(
            self.get(tc.id.as_str()).is_none(),
            "duplicate testcase id {}",
            tc.id
        );
        self.testcases.push(tc);
    }

    /// All testcases in insertion order.
    pub fn all(&self) -> &[Testcase] {
        &self.testcases
    }

    /// Number of testcases.
    pub fn len(&self) -> usize {
        self.testcases.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.testcases.is_empty()
    }

    /// Finds by id.
    pub fn get(&self, id: &str) -> Option<&Testcase> {
        self.testcases.iter().find(|t| t.id.as_str() == id)
    }

    /// Saves the library to a text file.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, tcformat::emit_many(&self.testcases))
    }

    /// Loads a library from a text file.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        let testcases = tcformat::parse_many(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        Ok(Self::from_testcases(testcases))
    }
}

/// The server's result store.
#[derive(Debug, Default)]
pub struct ResultStore {
    records: Vec<RunRecord>,
}

impl ResultStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends uploaded records.
    pub fn append(&mut self, records: Vec<RunRecord>) {
        self.records.extend(records);
    }

    /// All records in upload order.
    pub fn all(&self) -> &[RunRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Saves all results to a text file.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, RunRecord::emit_many(&self.records))
    }

    /// Loads results from a text file.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        let records = RunRecord::parse_many(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        Ok(ResultStore { records })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uucs_protocol::{MonitorSummary, RunOutcome};
    use uucs_testcase::{ExerciseSpec, Resource};

    fn tc(id: &str) -> Testcase {
        Testcase::single(
            id,
            1.0,
            Resource::Cpu,
            ExerciseSpec::Ramp {
                level: 1.0,
                duration: 10.0,
            },
        )
    }

    fn rec(user: &str) -> RunRecord {
        RunRecord {
            client: "c".into(),
            user: user.into(),
            testcase: "t".into(),
            task: "IE".into(),
            outcome: RunOutcome::Exhausted,
            offset_secs: 10.0,
            last_levels: vec![],
            monitor: MonitorSummary::default(),
        }
    }

    #[test]
    fn testcase_store_roundtrips_through_disk() {
        let dir = std::env::temp_dir().join(format!("uucs-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("testcases.txt");
        let store = TestcaseStore::from_testcases(vec![tc("a"), tc("b")]);
        store.save(&path).unwrap();
        let loaded = TestcaseStore::load(&path).unwrap();
        assert_eq!(loaded.all(), store.all());
        assert!(loaded.get("a").is_some());
        assert!(loaded.get("zzz").is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_testcase_rejected() {
        let mut s = TestcaseStore::new();
        s.add(tc("x"));
        s.add(tc("x"));
    }

    #[test]
    fn result_store_roundtrips_through_disk() {
        let dir = std::env::temp_dir().join(format!("uucs-rstore-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("results.txt");
        let mut store = ResultStore::new();
        store.append(vec![rec("u1"), rec("u2")]);
        store.append(vec![rec("u3")]);
        assert_eq!(store.len(), 3);
        store.save(&path).unwrap();
        let loaded = ResultStore::load(&path).unwrap();
        assert_eq!(loaded.all(), store.all());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(TestcaseStore::load(Path::new("/nonexistent/x.txt")).is_err());
        assert!(ResultStore::load(Path::new("/nonexistent/x.txt")).is_err());
    }
}
