//! Text-file-backed stores, as in the paper ("store testcases and
//! results on permanent storage in text files") — optionally journaled
//! through a write-ahead log (`uucs-wal`) so a server crash between
//! periodic checkpoints loses nothing that was acknowledged.
//!
//! Each store runs in one of two modes:
//!
//! * **Plain** ([`TestcaseStore::new`], [`ResultStore::new`], and the
//!   `load`/`save` text files): the paper's original design. Durability
//!   is whatever the last whole-file checkpoint captured.
//! * **Durable** ([`TestcaseStore::open_wal`],
//!   [`ResultStore::open_wal`]): every mutation is journaled as a
//!   [`WalEntry`] *before* it is applied in memory, and reopening the
//!   same directory replays the journal — snapshot first, then the
//!   records past it.
//!
//! Corruption policy: a WAL tolerates a torn final frame (crash
//! residue) but reports mid-log damage; the *text* loaders tolerate
//! nothing and point at the damaged line (`line 41: bad outcome ...`),
//! because a checkpoint file has no append-in-flight excuse.

use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::Path;
use uucs_protocol::{MachineSnapshot, RunRecord, WalEntry};
use uucs_telemetry::{metrics, Counter, Histogram};
use uucs_testcase::{format as tcformat, Testcase};
use crate::storage::{plain_io, StoreIo};
use uucs_wal::{Recovery, Wal, WalConfig, WalObserver};

/// The telemetry bridge for one store's WAL: every observer hook lands
/// in the global registry under `server.wal.<flavor>.*`, so `STATS`
/// exposes append/fsync/snapshot/compaction timings per store. Handles
/// are registered once at `open_wal`, keeping the per-I/O cost at a few
/// atomic ops.
pub(crate) struct WalTelemetry {
    append_ns: Histogram,
    append_bytes: Counter,
    fsync_ns: Histogram,
    rotations: Counter,
    rotation_stall_ns: Histogram,
    snapshot_ns: Histogram,
    compact_ns: Histogram,
    compact_removed: Counter,
}

impl WalTelemetry {
    pub(crate) fn install(wal: &mut Wal<StoreIo>, flavor: &str) {
        wal.set_observer(Box::new(WalTelemetry {
            append_ns: metrics::histogram(&format!("server.wal.{flavor}.append.ns")),
            append_bytes: metrics::counter(&format!("server.wal.{flavor}.append.bytes")),
            fsync_ns: metrics::histogram(&format!("server.wal.{flavor}.fsync.ns")),
            rotations: metrics::counter(&format!("server.wal.{flavor}.rotations")),
            rotation_stall_ns: metrics::histogram(&format!(
                "server.wal.{flavor}.rotation_stall.ns"
            )),
            snapshot_ns: metrics::histogram(&format!("server.wal.{flavor}.snapshot.ns")),
            compact_ns: metrics::histogram(&format!("server.wal.{flavor}.compact.ns")),
            compact_removed: metrics::counter(&format!("server.wal.{flavor}.compact.removed")),
        }));
    }
}

impl WalObserver for WalTelemetry {
    fn on_append(&mut self, bytes: usize, dur_ns: u64) {
        self.append_ns.record(dur_ns);
        self.append_bytes.add(bytes as u64);
    }
    fn on_sync(&mut self, dur_ns: u64) {
        self.fsync_ns.record(dur_ns);
    }
    fn on_rotate(&mut self) {
        self.rotations.inc();
    }
    fn on_rotate_stall(&mut self, dur_ns: u64) {
        self.rotation_stall_ns.record(dur_ns);
    }
    fn on_snapshot(&mut self, _bytes: usize, dur_ns: u64) {
        self.snapshot_ns.record(dur_ns);
    }
    fn on_compact(&mut self, removed: usize, dur_ns: u64) {
        self.compact_ns.record(dur_ns);
        self.compact_removed.add(removed as u64);
    }
}

/// Why a store rejected a mutation.
#[derive(Debug)]
pub enum StoreError {
    /// The testcase id is already present; ids are globally unique.
    Duplicate(String),
    /// The write-ahead log could not journal the mutation; nothing was
    /// applied, so the caller must not acknowledge it.
    Io(io::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Duplicate(id) => write!(f, "duplicate testcase id {id}"),
            StoreError::Io(e) => write!(f, "journal write failed: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

pub(crate) fn invalid(msg: impl fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// The server's testcase library.
#[derive(Debug, Default)]
pub struct TestcaseStore {
    testcases: Vec<Testcase>,
    wal: Option<Wal<StoreIo>>,
}

impl TestcaseStore {
    /// An empty, non-durable store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a non-durable store from testcases, rejecting duplicate
    /// ids.
    pub fn from_testcases(testcases: Vec<Testcase>) -> Result<Self, StoreError> {
        let mut s = Self::new();
        for tc in testcases {
            s.add(tc)?;
        }
        Ok(s)
    }

    /// Opens (creating if necessary) a WAL-backed store: replays the
    /// journal under `dir` and journals every subsequent [`add`]
    /// before applying it.
    ///
    /// [`add`]: TestcaseStore::add
    pub fn open_wal(dir: &Path, config: WalConfig) -> io::Result<(Self, Recovery)> {
        Self::open_wal_with(plain_io(), dir, config)
    }

    /// [`TestcaseStore::open_wal`] over an explicit I/O backend —
    /// typically a shared per-flavor page cache
    /// ([`crate::storage::StorageProfile::store_io`]), so recovery
    /// replays and compaction scans hit memory on a warm cache.
    pub fn open_wal_with(
        io: StoreIo,
        dir: &Path,
        config: WalConfig,
    ) -> io::Result<(Self, Recovery)> {
        let (mut wal, mut recovery) = Wal::open(io, dir, config)?;
        WalTelemetry::install(&mut wal, "testcases");
        let mut store = Self::new();
        if let Some(snap) = recovery.snapshot.take() {
            let text = std::str::from_utf8(&snap.state).map_err(invalid)?;
            for tc in tcformat::parse_many(text).map_err(invalid)? {
                store.add(tc).map_err(invalid)?;
            }
        }
        for item in wal.replay() {
            let (lsn, payload) = item?;
            match WalEntry::decode(&payload).map_err(invalid)? {
                WalEntry::Testcase(tc) => store.add(tc).map_err(invalid)?,
                _ => {
                    return Err(invalid(format!(
                        "record {lsn}: foreign entry in a testcase journal"
                    )))
                }
            }
        }
        store.wal = Some(wal);
        Ok((store, recovery))
    }

    /// True when mutations are journaled through a WAL.
    pub fn is_durable(&self) -> bool {
        self.wal.is_some()
    }

    /// Defers segment-rotation fsyncs to the next explicit sync pass
    /// (the group committer's), keeping rotation off the append path.
    /// Only safe when something calls [`sync_wal`](Self::sync_wal)
    /// regularly — acks must still wait on that sync. No-op in plain
    /// mode.
    pub fn set_deferred_rotation_sync(&mut self, defer: bool) {
        if let Some(wal) = &mut self.wal {
            wal.set_deferred_rotation_sync(defer);
        }
    }

    /// Adds a testcase ("new testcases can be added to the server at any
    /// time"). Rejects a duplicate id; in durable mode the addition is
    /// journaled before it is applied, so an `Ok` survives a crash.
    pub fn add(&mut self, tc: Testcase) -> Result<(), StoreError> {
        if self.get(tc.id.as_str()).is_some() {
            return Err(StoreError::Duplicate(tc.id.as_str().to_string()));
        }
        if let Some(wal) = &mut self.wal {
            wal.append(&WalEntry::Testcase(tc.clone()).encode())?;
        }
        self.testcases.push(tc);
        Ok(())
    }

    /// Folds the journal into a checkpoint and deletes the segments it
    /// covers. Returns `false` (doing nothing) in plain mode.
    pub fn compact(&mut self) -> io::Result<bool> {
        let Some(wal) = &mut self.wal else {
            return Ok(false);
        };
        wal.snapshot(tcformat::emit_many(&self.testcases).as_bytes())?;
        wal.compact()?;
        Ok(true)
    }

    /// All testcases in insertion order.
    pub fn all(&self) -> &[Testcase] {
        &self.testcases
    }

    /// Number of testcases.
    pub fn len(&self) -> usize {
        self.testcases.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.testcases.is_empty()
    }

    /// Finds by id.
    pub fn get(&self, id: &str) -> Option<&Testcase> {
        self.testcases.iter().find(|t| t.id.as_str() == id)
    }

    /// The LSN the next journal append would get, or `None` in plain
    /// mode. Captured under the store's write lock right after an
    /// append, it is the durability watermark a group-commit waiter
    /// needs: once a sync covers it, the append is on stable storage.
    pub fn wal_next_lsn(&self) -> Option<u64> {
        self.wal.as_ref().map(|w| w.next_lsn())
    }

    /// Forces everything journaled so far to stable storage, returning
    /// the covered watermark (the next LSN). `Ok(0)` in plain mode.
    pub fn sync_wal(&mut self) -> io::Result<u64> {
        match &mut self.wal {
            Some(wal) => {
                wal.sync()?;
                Ok(wal.next_lsn())
            }
            None => Ok(0),
        }
    }

    /// Consumes the store, yielding its testcases (shard migration).
    pub fn into_testcases(self) -> Vec<Testcase> {
        self.testcases
    }

    /// Saves the library to a text file.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, tcformat::emit_many(&self.testcases))
    }

    /// Loads a library from a text file. Any defect is an
    /// `InvalidData` error naming the file.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        let testcases = tcformat::parse_many(&text)
            .map_err(|e| invalid(format!("{}: {e}", path.display())))?;
        Self::from_testcases(testcases).map_err(|e| invalid(format!("{}: {e}", path.display())))
    }
}

/// What [`ResultStore::append_batch`] did with an upload batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchStatus {
    /// The batch was new: `n` records journaled and applied.
    Applied(usize),
    /// The batch's sequence number was already applied: nothing stored,
    /// but the caller should re-acknowledge all `n` records — the
    /// previous `ACK` was evidently lost in transit.
    Replayed(usize),
}

impl BatchStatus {
    /// The record count to acknowledge, either way.
    pub fn acked(self) -> usize {
        match self {
            BatchStatus::Applied(n) | BatchStatus::Replayed(n) => n,
        }
    }
}

/// The server's result store.
///
/// Beyond the records themselves it tracks, per client, the highest
/// *batch sequence number* applied ([`ResultStore::append_batch`]), which
/// is what makes `UPLOAD` idempotent: a batch retransmitted because its
/// `ACK` was lost is recognized and re-acknowledged without storing a
/// second copy. In durable mode the sequence horizon rides in the same
/// WAL entry as the records (one atomic [`WalEntry::Batch`]) and in the
/// compaction snapshot, so dedup survives crashes and checkpoints alike.
#[derive(Debug, Default)]
pub struct ResultStore {
    records: Vec<RunRecord>,
    /// Per-client highest applied batch sequence number.
    applied: BTreeMap<String, u64>,
    wal: Option<Wal<StoreIo>>,
}

impl ResultStore {
    /// An empty, non-durable store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens (creating if necessary) a WAL-backed store: replays the
    /// journal under `dir` and journals every subsequent upload before
    /// applying it.
    pub fn open_wal(dir: &Path, config: WalConfig) -> io::Result<(Self, Recovery)> {
        Self::open_wal_with(plain_io(), dir, config)
    }

    /// [`ResultStore::open_wal`] over an explicit I/O backend (see
    /// [`crate::storage::StorageProfile::store_io`]).
    pub fn open_wal_with(
        io: StoreIo,
        dir: &Path,
        config: WalConfig,
    ) -> io::Result<(Self, Recovery)> {
        let (mut wal, mut recovery) = Wal::open(io, dir, config)?;
        WalTelemetry::install(&mut wal, "results");
        let mut records = Vec::new();
        let mut applied = BTreeMap::new();
        if let Some(snap) = recovery.snapshot.take() {
            let text = std::str::from_utf8(&snap.state).map_err(invalid)?;
            (records, applied) = Self::parse_state(text)?;
        }
        for item in wal.replay() {
            let (lsn, payload) = item?;
            match WalEntry::decode(&payload).map_err(invalid)? {
                WalEntry::Result(rec) => records.push(rec),
                WalEntry::Batch {
                    client,
                    seq,
                    records: batch,
                } => {
                    records.extend(batch);
                    let horizon = applied.entry(client).or_insert(0);
                    *horizon = (*horizon).max(seq);
                }
                WalEntry::Testcase(_) | WalEntry::Client { .. } | WalEntry::Model(_) => {
                    return Err(invalid(format!(
                        "record {lsn}: foreign entry in a result journal"
                    )))
                }
            }
        }
        Ok((
            ResultStore {
                records,
                applied,
                wal: Some(wal),
            },
            recovery,
        ))
    }

    /// The compaction-snapshot text: `SEQ <client> <n>` header lines (the
    /// idempotency horizon) followed by the record blocks.
    fn emit_state(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (client, seq) in &self.applied {
            writeln!(out, "SEQ {client} {seq}").unwrap();
        }
        out.push_str(&RunRecord::emit_many(&self.records));
        out
    }

    /// Parses [`ResultStore::emit_state`] output. Snapshots from before
    /// sequence tracking have no `SEQ` lines and parse to an empty map.
    fn parse_state(text: &str) -> io::Result<(Vec<RunRecord>, BTreeMap<String, u64>)> {
        let mut applied = BTreeMap::new();
        let mut offset = 0usize;
        for line in text.lines() {
            let Some(rest) = line.strip_prefix("SEQ ") else {
                break;
            };
            let (client, seq) = rest
                .rsplit_once(' ')
                .ok_or_else(|| invalid(format!("bad snapshot seq line {line:?}")))?;
            let seq: u64 = seq
                .parse()
                .map_err(|_| invalid(format!("bad snapshot seq line {line:?}")))?;
            applied.insert(client.to_string(), seq);
            offset += line.len() + 1;
        }
        let records = RunRecord::parse_many(&text[offset.min(text.len())..]).map_err(invalid)?;
        Ok((records, applied))
    }

    /// True when mutations are journaled through a WAL.
    pub fn is_durable(&self) -> bool {
        self.wal.is_some()
    }

    /// Defers segment-rotation fsyncs to the next explicit sync pass
    /// (the group committer's), keeping rotation off the append path.
    /// Only safe when something calls [`sync_wal`](Self::sync_wal)
    /// regularly — acks must still wait on that sync. No-op in plain
    /// mode.
    pub fn set_deferred_rotation_sync(&mut self, defer: bool) {
        if let Some(wal) = &mut self.wal {
            wal.set_deferred_rotation_sync(defer);
        }
    }

    /// Appends uploaded records, returning how many were accepted. In
    /// durable mode every record is journaled first — under
    /// `SyncPolicy::Always` an `Ok(n)` means all `n` survive a crash.
    /// On a journal error nothing is applied in memory and the upload
    /// must not be acknowledged.
    pub fn append(&mut self, records: Vec<RunRecord>) -> Result<usize, StoreError> {
        if let Some(wal) = &mut self.wal {
            for rec in &records {
                wal.append(&WalEntry::Result(rec.clone()).encode())?;
            }
        }
        let n = records.len();
        self.records.extend(records);
        Ok(n)
    }

    /// Appends an upload batch idempotently. `seq` is the client's batch
    /// sequence number: if it is at or below the client's applied
    /// horizon the batch is a retransmit — nothing is stored and
    /// [`BatchStatus::Replayed`] tells the caller to re-acknowledge.
    /// `seq == 0` is the legacy non-idempotent path (always applied).
    ///
    /// In durable mode a new batch is journaled as a single atomic
    /// [`WalEntry::Batch`] carrying both records and horizon, *before*
    /// being applied: an acknowledged batch can neither be lost nor
    /// double-applied across a crash.
    pub fn append_batch(
        &mut self,
        client: &str,
        seq: u64,
        records: Vec<RunRecord>,
    ) -> Result<BatchStatus, StoreError> {
        if seq == 0 {
            return self.append(records).map(BatchStatus::Applied);
        }
        if self.applied.get(client).copied().unwrap_or(0) >= seq {
            return Ok(BatchStatus::Replayed(records.len()));
        }
        if let Some(wal) = &mut self.wal {
            wal.append(
                &WalEntry::Batch {
                    client: client.to_string(),
                    seq,
                    records: records.clone(),
                }
                .encode(),
            )?;
        }
        self.applied.insert(client.to_string(), seq);
        let n = records.len();
        self.records.extend(records);
        Ok(BatchStatus::Applied(n))
    }

    /// The highest batch sequence number applied for `client` (0 if the
    /// client never uploaded with sequence numbers).
    pub fn applied_seq(&self, client: &str) -> u64 {
        self.applied.get(client).copied().unwrap_or(0)
    }

    /// The per-client applied-sequence horizons (shard migration).
    pub fn applied_horizons(&self) -> &BTreeMap<String, u64> {
        &self.applied
    }

    /// See [`TestcaseStore::wal_next_lsn`].
    pub fn wal_next_lsn(&self) -> Option<u64> {
        self.wal.as_ref().map(|w| w.next_lsn())
    }

    /// See [`TestcaseStore::sync_wal`].
    pub fn sync_wal(&mut self) -> io::Result<u64> {
        match &mut self.wal {
            Some(wal) => {
                wal.sync()?;
                Ok(wal.next_lsn())
            }
            None => Ok(0),
        }
    }

    /// Consumes the store, yielding records and horizons (migration).
    pub fn into_parts(self) -> (Vec<RunRecord>, BTreeMap<String, u64>) {
        (self.records, self.applied)
    }

    /// Folds the journal into a checkpoint and deletes the segments it
    /// covers. Returns `false` (doing nothing) in plain mode.
    pub fn compact(&mut self) -> io::Result<bool> {
        if self.wal.is_none() {
            return Ok(false);
        }
        let state = self.emit_state();
        let wal = self.wal.as_mut().expect("checked above");
        wal.snapshot(state.as_bytes())?;
        wal.compact()?;
        Ok(true)
    }

    /// All records in upload order.
    pub fn all(&self) -> &[RunRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Saves all results to a text file.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, RunRecord::emit_many(&self.records))
    }

    /// Loads results from a text file.
    ///
    /// Any defect — a bad key, a truncated record, a garbled number —
    /// is an `InvalidData` error naming the file and the 1-based line,
    /// e.g. `results.txt: line 41: bad outcome "maybee"`. Contrast the
    /// WAL loaders above, which tolerate (and truncate) a torn final
    /// frame: a crash can interrupt a journal append, but nothing
    /// legitimately interrupts a whole-file text checkpoint.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        let records = RunRecord::parse_many(&text)
            .map_err(|e| invalid(format!("{}: {e}", path.display())))?;
        Ok(ResultStore {
            records,
            applied: BTreeMap::new(),
            wal: None,
        })
    }
}

/// What a registry snapshot parses into: the `(id, snapshot)` rows and
/// the `(token, id)` idempotency pairs.
type RegistryState = (Vec<(String, MachineSnapshot)>, Vec<(String, String)>);

/// The server's client registry: `(GUID, machine snapshot)` pairs in
/// registration order, optionally journaled through a WAL so a restarted
/// server still recognizes the clients it handed ids to — without it,
/// every server restart would orphan every client in the field.
#[derive(Debug, Default)]
pub struct RegistryStore {
    clients: Vec<(String, MachineSnapshot)>,
    /// `(token, id)` for every registration that carried an idempotency
    /// token: a re-registration presenting a known token gets the same
    /// id back instead of a new row. Rebuilt from the journal and the
    /// snapshot on recovery, so the guarantee survives a server restart.
    tokens: Vec<(String, String)>,
    wal: Option<Wal<StoreIo>>,
}

impl RegistryStore {
    /// An empty, non-durable registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens (creating if necessary) a WAL-backed registry: replays the
    /// journal under `dir` and journals every subsequent registration
    /// before applying it.
    pub fn open_wal(dir: &Path, config: WalConfig) -> io::Result<(Self, Recovery)> {
        Self::open_wal_with(plain_io(), dir, config)
    }

    /// [`RegistryStore::open_wal`] over an explicit I/O backend (see
    /// [`crate::storage::StorageProfile::store_io`]).
    pub fn open_wal_with(
        io: StoreIo,
        dir: &Path,
        config: WalConfig,
    ) -> io::Result<(Self, Recovery)> {
        let (mut wal, mut recovery) = Wal::open(io, dir, config)?;
        WalTelemetry::install(&mut wal, "registry");
        let mut store = Self::new();
        if let Some(snap) = recovery.snapshot.take() {
            let text = std::str::from_utf8(&snap.state).map_err(invalid)?;
            (store.clients, store.tokens) = Self::parse_state(text)?;
        }
        for item in wal.replay() {
            let (lsn, payload) = item?;
            match WalEntry::decode(&payload).map_err(invalid)? {
                WalEntry::Client {
                    id,
                    token,
                    snapshot,
                } => {
                    if !token.is_empty() {
                        store.tokens.push((token, id.clone()));
                    }
                    store.clients.push((id, snapshot));
                }
                _ => {
                    return Err(invalid(format!(
                        "record {lsn}: foreign entry in a registry journal"
                    )))
                }
            }
        }
        store.wal = Some(wal);
        Ok((store, recovery))
    }

    fn emit_state(&self) -> String {
        let mut out = String::new();
        for (id, snap) in &self.clients {
            match self.tokens.iter().find(|(_, tid)| tid == id) {
                Some((token, _)) => out.push_str(&format!("CLIENT {id} {token}\n")),
                None => out.push_str(&format!("CLIENT {id}\n")),
            }
            out.push_str(&snap.emit());
        }
        out
    }

    fn parse_state(text: &str) -> io::Result<RegistryState> {
        let mut clients = Vec::new();
        let mut tokens = Vec::new();
        // (id, pending block text) for the entry being accumulated.
        let mut current: Option<(String, String)> = None;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("CLIENT ") {
                if let Some((id, block)) = current.take() {
                    let snap = MachineSnapshot::parse(&block).map_err(invalid)?;
                    clients.push((id, snap));
                }
                let mut toks = rest.split_whitespace();
                let id = toks.next().unwrap_or("").to_string();
                if id.is_empty() {
                    return Err(invalid("registry snapshot: CLIENT line missing id"));
                }
                if let Some(token) = toks.next() {
                    tokens.push((token.to_string(), id.clone()));
                }
                current = Some((id, String::new()));
            } else if let Some((_, block)) = &mut current {
                block.push_str(line);
                block.push('\n');
            } else {
                return Err(invalid(format!("registry snapshot: stray line {line:?}")));
            }
        }
        if let Some((id, block)) = current.take() {
            let snap = MachineSnapshot::parse(&block).map_err(invalid)?;
            clients.push((id, snap));
        }
        Ok((clients, tokens))
    }

    /// True when registrations are journaled through a WAL.
    pub fn is_durable(&self) -> bool {
        self.wal.is_some()
    }

    /// Defers segment-rotation fsyncs to the next explicit sync pass
    /// (the group committer's), keeping rotation off the append path.
    /// Only safe when something calls [`sync_wal`](Self::sync_wal)
    /// regularly — acks must still wait on that sync. No-op in plain
    /// mode.
    pub fn set_deferred_rotation_sync(&mut self, defer: bool) {
        if let Some(wal) = &mut self.wal {
            wal.set_deferred_rotation_sync(defer);
        }
    }

    /// Registers a machine, assigning the next GUID. In durable mode the
    /// registration is journaled before it is applied, so an id handed
    /// out survives a server restart.
    ///
    /// A non-empty `token` makes the call idempotent: if this token has
    /// registered before, the *original* id comes back and nothing is
    /// journaled. A client whose `ID` reply was lost in transit can
    /// therefore retry the registration without becoming two clients.
    pub fn register(
        &mut self,
        snapshot: MachineSnapshot,
        token: &str,
    ) -> Result<String, StoreError> {
        if !token.is_empty() {
            if let Some((_, id)) = self.tokens.iter().find(|(t, _)| t == token) {
                return Ok(id.clone());
            }
        }
        let id = format!("client-{:04}", self.clients.len() + 1);
        self.register_with_id(id.clone(), snapshot, token)?;
        Ok(id)
    }

    /// Registers a machine under a caller-chosen id — the sharded
    /// registry's entry point, where ids come from a global counter
    /// rather than this shard's row count. Journals before applying;
    /// token dedup is the *caller's* job (it requires a cross-shard
    /// scan).
    pub fn register_with_id(
        &mut self,
        id: String,
        snapshot: MachineSnapshot,
        token: &str,
    ) -> Result<(), StoreError> {
        if let Some(wal) = &mut self.wal {
            wal.append(
                &WalEntry::Client {
                    id: id.clone(),
                    token: token.to_string(),
                    snapshot: snapshot.clone(),
                }
                .encode(),
            )?;
        }
        self.clients.push((id.clone(), snapshot));
        if !token.is_empty() {
            self.tokens.push((token.to_string(), id));
        }
        Ok(())
    }

    /// The id a registration token resolved to, if it registered before.
    pub fn id_for_token(&self, token: &str) -> Option<&str> {
        if token.is_empty() {
            return None;
        }
        self.tokens
            .iter()
            .find(|(t, _)| t == token)
            .map(|(_, id)| id.as_str())
    }

    /// The registration token a client id presented, if any — the
    /// replication tier ships it alongside the snapshot so a promoted
    /// follower still honors token-matched re-registrations.
    pub fn token_of(&self, id: &str) -> Option<&str> {
        self.tokens
            .iter()
            .find(|(_, tid)| tid == id)
            .map(|(t, _)| t.as_str())
    }

    /// See [`TestcaseStore::wal_next_lsn`].
    pub fn wal_next_lsn(&self) -> Option<u64> {
        self.wal.as_ref().map(|w| w.next_lsn())
    }

    /// See [`TestcaseStore::sync_wal`].
    pub fn sync_wal(&mut self) -> io::Result<u64> {
        match &mut self.wal {
            Some(wal) => {
                wal.sync()?;
                Ok(wal.next_lsn())
            }
            None => Ok(0),
        }
    }

    /// Consumes the registry, yielding rows and token pairs (migration).
    pub fn into_parts(self) -> RegistryState {
        (self.clients, self.tokens)
    }

    /// The registered snapshot for an id.
    pub fn get(&self, id: &str) -> Option<&MachineSnapshot> {
        self.clients
            .iter()
            .find(|(cid, _)| cid == id)
            .map(|(_, s)| s)
    }

    /// All registrations in order.
    pub fn all(&self) -> &[(String, MachineSnapshot)] {
        &self.clients
    }

    /// Number of registered clients.
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    /// True if no client ever registered.
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }

    /// Folds the journal into a checkpoint and deletes the segments it
    /// covers. Returns `false` (doing nothing) in plain mode.
    pub fn compact(&mut self) -> io::Result<bool> {
        if self.wal.is_none() {
            return Ok(false);
        }
        let state = self.emit_state();
        let wal = self.wal.as_mut().expect("checked above");
        wal.snapshot(state.as_bytes())?;
        wal.compact()?;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uucs_harness::TempDir;
    use uucs_protocol::{MonitorSummary, RunOutcome};
    use uucs_testcase::{ExerciseSpec, Resource};
    use uucs_wal::SyncPolicy;

    fn tc(id: &str) -> Testcase {
        Testcase::single(
            id,
            1.0,
            Resource::Cpu,
            ExerciseSpec::Ramp {
                level: 1.0,
                duration: 10.0,
            },
        )
    }

    fn rec(user: &str) -> RunRecord {
        RunRecord {
            client: "c".into(),
            user: user.into(),
            testcase: "t".into(),
            task: "IE".into(),
            skill: "Typical".into(),
            outcome: RunOutcome::Exhausted,
            offset_secs: 10.0,
            last_levels: vec![],
            monitor: MonitorSummary::default(),
        }
    }

    #[test]
    fn testcase_store_roundtrips_through_disk() {
        let dir = TempDir::new("uucs-store");
        let path = dir.join("testcases.txt");
        let store = TestcaseStore::from_testcases(vec![tc("a"), tc("b")]).unwrap();
        store.save(&path).unwrap();
        let loaded = TestcaseStore::load(&path).unwrap();
        assert_eq!(loaded.all(), store.all());
        assert!(loaded.get("a").is_some());
        assert!(loaded.get("zzz").is_none());
    }

    #[test]
    fn duplicate_testcase_rejected() {
        let mut s = TestcaseStore::new();
        s.add(tc("x")).unwrap();
        let err = s.add(tc("x")).unwrap_err();
        assert!(matches!(&err, StoreError::Duplicate(id) if id == "x"));
        assert!(err.to_string().contains("duplicate testcase id x"));
        assert_eq!(s.len(), 1, "the duplicate was not applied");
        assert!(TestcaseStore::from_testcases(vec![tc("y"), tc("y")]).is_err());
    }

    #[test]
    fn result_store_roundtrips_through_disk() {
        let dir = TempDir::new("uucs-rstore");
        let path = dir.join("results.txt");
        let mut store = ResultStore::new();
        store.append(vec![rec("u1"), rec("u2")]).unwrap();
        store.append(vec![rec("u3")]).unwrap();
        assert_eq!(store.len(), 3);
        store.save(&path).unwrap();
        let loaded = ResultStore::load(&path).unwrap();
        assert_eq!(loaded.all(), store.all());
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(TestcaseStore::load(Path::new("/nonexistent/x.txt")).is_err());
        assert!(ResultStore::load(Path::new("/nonexistent/x.txt")).is_err());
    }

    #[test]
    fn result_load_error_names_file_and_line() {
        let dir = TempDir::new("uucs-rstore-corrupt");
        let path = dir.join("results.txt");
        let mut text = RunRecord::emit_many(&[rec("u1")]);
        let good_lines = text.lines().count();
        text.push_str("RESULT\nOUTCOME maybee\nEND\n");
        std::fs::write(&path, &text).unwrap();
        let err = ResultStore::load(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(msg.contains("results.txt"), "no file name in: {msg}");
        assert!(
            msg.contains(&format!("line {}", good_lines + 2)),
            "no line number in: {msg}"
        );
    }

    #[test]
    fn wal_backed_stores_survive_reopen() {
        let dir = TempDir::new("uucs-store-wal");
        let cfg = WalConfig {
            segment_bytes: 2048,
            sync: SyncPolicy::Always,
        };
        {
            let (mut tcs, recovery) = TestcaseStore::open_wal(&dir.join("tc"), cfg).unwrap();
            assert_eq!(recovery.records, 0);
            tcs.add(tc("a")).unwrap();
            tcs.add(tc("b")).unwrap();
            assert!(tcs.is_durable());
            let (mut res, _) = ResultStore::open_wal(&dir.join("res"), cfg).unwrap();
            assert_eq!(res.append(vec![rec("u1"), rec("u2")]).unwrap(), 2);
            // Both stores drop here without any explicit save: the WAL
            // already has everything.
        }
        let (tcs, recovery) = TestcaseStore::open_wal(&dir.join("tc"), cfg).unwrap();
        assert_eq!(recovery.records, 2);
        assert_eq!(tcs.len(), 2);
        assert!(tcs.get("a").is_some() && tcs.get("b").is_some());
        let (res, _) = ResultStore::open_wal(&dir.join("res"), cfg).unwrap();
        assert_eq!(res.len(), 2);
        assert_eq!(res.all()[0], rec("u1"));
    }

    #[test]
    fn wal_backed_store_compacts_and_still_recovers() {
        let dir = TempDir::new("uucs-store-compact");
        let cfg = WalConfig {
            segment_bytes: 512,
            sync: SyncPolicy::Always,
        };
        {
            let (mut res, _) = ResultStore::open_wal(dir.path(), cfg).unwrap();
            res.append((0..8).map(|i| rec(&format!("u{i}"))).collect())
                .unwrap();
            assert!(res.compact().unwrap());
            res.append(vec![rec("after-snap")]).unwrap();
        }
        let (res, recovery) = ResultStore::open_wal(dir.path(), cfg).unwrap();
        assert!(recovery.snapshot.is_none(), "open_wal folds the snapshot");
        assert_eq!(res.len(), 9);
        assert_eq!(res.all()[8], rec("after-snap"));
    }

    #[test]
    fn wal_backed_duplicate_not_journaled() {
        let dir = TempDir::new("uucs-store-dup");
        let cfg = WalConfig::default();
        {
            let (mut tcs, _) = TestcaseStore::open_wal(dir.path(), cfg).unwrap();
            tcs.add(tc("only")).unwrap();
            assert!(matches!(
                tcs.add(tc("only")),
                Err(StoreError::Duplicate(_))
            ));
        }
        let (tcs, recovery) = TestcaseStore::open_wal(dir.path(), cfg).unwrap();
        assert_eq!(recovery.records, 1, "rejected duplicate left no record");
        assert_eq!(tcs.len(), 1);
    }

    #[test]
    fn plain_store_compact_is_a_noop() {
        let mut s = TestcaseStore::new();
        s.add(tc("a")).unwrap();
        assert!(!s.compact().unwrap());
        assert!(!s.is_durable());
        let mut r = ResultStore::new();
        assert!(!r.compact().unwrap());
        let mut g = RegistryStore::new();
        assert!(!g.compact().unwrap());
        assert!(!g.is_durable());
    }

    #[test]
    fn append_batch_is_idempotent() {
        let mut r = ResultStore::new();
        let batch = vec![rec("u1"), rec("u2")];
        assert_eq!(
            r.append_batch("c1", 1, batch.clone()).unwrap(),
            BatchStatus::Applied(2)
        );
        // The retransmit (lost ACK) is recognized and re-acked, and the
        // store holds exactly one copy.
        assert_eq!(
            r.append_batch("c1", 1, batch.clone()).unwrap(),
            BatchStatus::Replayed(2)
        );
        assert_eq!(r.len(), 2);
        assert_eq!(r.applied_seq("c1"), 1);
        // A later batch applies; an earlier replay is still discarded.
        assert_eq!(
            r.append_batch("c1", 2, vec![rec("u3")]).unwrap(),
            BatchStatus::Applied(1)
        );
        assert_eq!(
            r.append_batch("c1", 1, batch).unwrap(),
            BatchStatus::Replayed(2)
        );
        assert_eq!(r.len(), 3);
        // Horizons are per client.
        assert_eq!(
            r.append_batch("c2", 1, vec![rec("u4")]).unwrap(),
            BatchStatus::Applied(1)
        );
        assert_eq!(r.applied_seq("c2"), 1);
        // seq 0 is the legacy always-apply path.
        assert_eq!(
            r.append_batch("c1", 0, vec![rec("u5")]).unwrap(),
            BatchStatus::Applied(1)
        );
        assert_eq!(r.len(), 5);
        assert_eq!(r.applied_seq("c1"), 2, "legacy path leaves the horizon alone");
    }

    #[test]
    fn batch_horizon_survives_reopen_and_compaction() {
        let dir = TempDir::new("uucs-rstore-seq");
        let cfg = WalConfig {
            segment_bytes: 512,
            sync: SyncPolicy::Always,
        };
        {
            let (mut r, _) = ResultStore::open_wal(dir.path(), cfg).unwrap();
            r.append_batch("c1", 1, vec![rec("u1"), rec("u2")]).unwrap();
            r.append_batch("c2", 5, vec![rec("u3")]).unwrap();
        }
        // Reopen: the horizon came back with the records, so the same
        // retransmit is still discarded — retry-after-lost-Ack is safe
        // across a server restart.
        {
            let (mut r, _) = ResultStore::open_wal(dir.path(), cfg).unwrap();
            assert_eq!(r.len(), 3);
            assert_eq!(r.applied_seq("c1"), 1);
            assert_eq!(r.applied_seq("c2"), 5);
            assert_eq!(
                r.append_batch("c1", 1, vec![rec("u1"), rec("u2")]).unwrap(),
                BatchStatus::Replayed(2)
            );
            assert_eq!(r.len(), 3);
            // Compaction folds the horizon into the snapshot.
            assert!(r.compact().unwrap());
            r.append_batch("c1", 2, vec![rec("u4")]).unwrap();
        }
        let (r, recovery) = ResultStore::open_wal(dir.path(), cfg).unwrap();
        assert!(recovery.snapshot.is_none(), "open_wal folds the snapshot");
        assert_eq!(r.len(), 4);
        assert_eq!(r.applied_seq("c1"), 2);
        assert_eq!(r.applied_seq("c2"), 5, "horizon survived compaction");
    }

    #[test]
    fn registry_store_survives_reopen_and_compaction() {
        let dir = TempDir::new("uucs-registry");
        let cfg = WalConfig {
            segment_bytes: 512,
            sync: SyncPolicy::Always,
        };
        let (a, b) = {
            let (mut g, _) = RegistryStore::open_wal(dir.path(), cfg).unwrap();
            assert!(g.is_durable());
            let a = g.register(MachineSnapshot::study_machine("h1"), "").unwrap();
            let b = g.register(MachineSnapshot::study_machine("h2"), "").unwrap();
            assert_ne!(a, b);
            (a, b)
        };
        {
            let (mut g, _) = RegistryStore::open_wal(dir.path(), cfg).unwrap();
            assert_eq!(g.len(), 2);
            assert_eq!(g.get(&a).unwrap().hostname, "h1");
            assert_eq!(g.get(&b).unwrap().hostname, "h2");
            // New ids keep advancing past recovered ones: no collision
            // with an id handed out before the restart.
            let c = g.register(MachineSnapshot::study_machine("h3"), "").unwrap();
            assert!(c != a && c != b);
            assert!(g.compact().unwrap());
            g.register(MachineSnapshot::study_machine("h4"), "").unwrap();
        }
        let (g, _) = RegistryStore::open_wal(dir.path(), cfg).unwrap();
        assert_eq!(g.len(), 4);
        assert_eq!(g.get(&a).unwrap().hostname, "h1");
        assert_eq!(g.all()[3].1.hostname, "h4");
    }

    /// A registration retried with the same token (lost `ID` reply) must
    /// resolve to the same id — in memory, across a WAL recovery, and
    /// across a compaction that folds the token into the snapshot.
    #[test]
    fn registration_token_is_idempotent() {
        let mut g = RegistryStore::new();
        let a = g
            .register(MachineSnapshot::study_machine("h"), "tok-a")
            .unwrap();
        let again = g
            .register(MachineSnapshot::study_machine("h"), "tok-a")
            .unwrap();
        assert_eq!(a, again, "same token must return the same id");
        assert_eq!(g.len(), 1, "retry must not add a second client");
        // Distinct tokens are distinct identities even from an identical
        // snapshot (the controlled study registers 33 identical machines).
        let b = g
            .register(MachineSnapshot::study_machine("h"), "tok-b")
            .unwrap();
        assert_ne!(a, b);
        // Legacy tokenless registrations never dedup.
        let c = g.register(MachineSnapshot::study_machine("h"), "").unwrap();
        let d = g.register(MachineSnapshot::study_machine("h"), "").unwrap();
        assert_ne!(c, d);
        assert_eq!(g.len(), 4);
    }

    #[test]
    fn registration_token_dedup_survives_recovery_and_compaction() {
        let dir = TempDir::new("uucs-registry-token");
        let cfg = WalConfig {
            segment_bytes: 512,
            sync: SyncPolicy::Always,
        };
        let a = {
            let (mut g, _) = RegistryStore::open_wal(dir.path(), cfg).unwrap();
            g.register(MachineSnapshot::study_machine("h"), "tok-a")
                .unwrap()
        };
        {
            // Recovery from the journal alone.
            let (mut g, _) = RegistryStore::open_wal(dir.path(), cfg).unwrap();
            let again = g
                .register(MachineSnapshot::study_machine("h"), "tok-a")
                .unwrap();
            assert_eq!(a, again, "token dedup lost in WAL recovery");
            assert_eq!(g.len(), 1);
            // Fold everything into a snapshot; the token must ride along.
            assert!(g.compact().unwrap());
        }
        let (mut g, _) = RegistryStore::open_wal(dir.path(), cfg).unwrap();
        let again = g
            .register(MachineSnapshot::study_machine("h"), "tok-a")
            .unwrap();
        assert_eq!(a, again, "token dedup lost in compaction snapshot");
        assert_eq!(g.len(), 1);
    }
}
