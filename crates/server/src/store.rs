//! Text-file-backed stores, as in the paper ("store testcases and
//! results on permanent storage in text files") — optionally journaled
//! through a write-ahead log (`uucs-wal`) so a server crash between
//! periodic checkpoints loses nothing that was acknowledged.
//!
//! Each store runs in one of two modes:
//!
//! * **Plain** ([`TestcaseStore::new`], [`ResultStore::new`], and the
//!   `load`/`save` text files): the paper's original design. Durability
//!   is whatever the last whole-file checkpoint captured.
//! * **Durable** ([`TestcaseStore::open_wal`],
//!   [`ResultStore::open_wal`]): every mutation is journaled as a
//!   [`WalEntry`] *before* it is applied in memory, and reopening the
//!   same directory replays the journal — snapshot first, then the
//!   records past it.
//!
//! Corruption policy: a WAL tolerates a torn final frame (crash
//! residue) but reports mid-log damage; the *text* loaders tolerate
//! nothing and point at the damaged line (`line 41: bad outcome ...`),
//! because a checkpoint file has no append-in-flight excuse.

use std::fmt;
use std::io;
use std::path::Path;
use uucs_protocol::{RunRecord, WalEntry};
use uucs_testcase::{format as tcformat, Testcase};
use uucs_wal::{Recovery, StdIo, Wal, WalConfig};

/// Why a store rejected a mutation.
#[derive(Debug)]
pub enum StoreError {
    /// The testcase id is already present; ids are globally unique.
    Duplicate(String),
    /// The write-ahead log could not journal the mutation; nothing was
    /// applied, so the caller must not acknowledge it.
    Io(io::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Duplicate(id) => write!(f, "duplicate testcase id {id}"),
            StoreError::Io(e) => write!(f, "journal write failed: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

fn invalid(msg: impl fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// The server's testcase library.
#[derive(Debug, Default)]
pub struct TestcaseStore {
    testcases: Vec<Testcase>,
    wal: Option<Wal<StdIo>>,
}

impl TestcaseStore {
    /// An empty, non-durable store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a non-durable store from testcases, rejecting duplicate
    /// ids.
    pub fn from_testcases(testcases: Vec<Testcase>) -> Result<Self, StoreError> {
        let mut s = Self::new();
        for tc in testcases {
            s.add(tc)?;
        }
        Ok(s)
    }

    /// Opens (creating if necessary) a WAL-backed store: replays the
    /// journal under `dir` and journals every subsequent [`add`]
    /// before applying it.
    ///
    /// [`add`]: TestcaseStore::add
    pub fn open_wal(dir: &Path, config: WalConfig) -> io::Result<(Self, Recovery)> {
        let (wal, mut recovery) = Wal::open(StdIo::new(), dir, config)?;
        let mut store = Self::new();
        if let Some(snap) = recovery.snapshot.take() {
            let text = std::str::from_utf8(&snap.state).map_err(invalid)?;
            for tc in tcformat::parse_many(text).map_err(invalid)? {
                store.add(tc).map_err(invalid)?;
            }
        }
        for item in wal.replay() {
            let (lsn, payload) = item?;
            match WalEntry::decode(&payload).map_err(invalid)? {
                WalEntry::Testcase(tc) => store.add(tc).map_err(invalid)?,
                WalEntry::Result(_) => {
                    return Err(invalid(format!(
                        "record {lsn}: result entry in a testcase journal"
                    )))
                }
            }
        }
        store.wal = Some(wal);
        Ok((store, recovery))
    }

    /// True when mutations are journaled through a WAL.
    pub fn is_durable(&self) -> bool {
        self.wal.is_some()
    }

    /// Adds a testcase ("new testcases can be added to the server at any
    /// time"). Rejects a duplicate id; in durable mode the addition is
    /// journaled before it is applied, so an `Ok` survives a crash.
    pub fn add(&mut self, tc: Testcase) -> Result<(), StoreError> {
        if self.get(tc.id.as_str()).is_some() {
            return Err(StoreError::Duplicate(tc.id.as_str().to_string()));
        }
        if let Some(wal) = &mut self.wal {
            wal.append(&WalEntry::Testcase(tc.clone()).encode())?;
        }
        self.testcases.push(tc);
        Ok(())
    }

    /// Folds the journal into a checkpoint and deletes the segments it
    /// covers. Returns `false` (doing nothing) in plain mode.
    pub fn compact(&mut self) -> io::Result<bool> {
        let Some(wal) = &mut self.wal else {
            return Ok(false);
        };
        wal.snapshot(tcformat::emit_many(&self.testcases).as_bytes())?;
        wal.compact()?;
        Ok(true)
    }

    /// All testcases in insertion order.
    pub fn all(&self) -> &[Testcase] {
        &self.testcases
    }

    /// Number of testcases.
    pub fn len(&self) -> usize {
        self.testcases.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.testcases.is_empty()
    }

    /// Finds by id.
    pub fn get(&self, id: &str) -> Option<&Testcase> {
        self.testcases.iter().find(|t| t.id.as_str() == id)
    }

    /// Saves the library to a text file.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, tcformat::emit_many(&self.testcases))
    }

    /// Loads a library from a text file. Any defect is an
    /// `InvalidData` error naming the file.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        let testcases = tcformat::parse_many(&text)
            .map_err(|e| invalid(format!("{}: {e}", path.display())))?;
        Self::from_testcases(testcases).map_err(|e| invalid(format!("{}: {e}", path.display())))
    }
}

/// The server's result store.
#[derive(Debug, Default)]
pub struct ResultStore {
    records: Vec<RunRecord>,
    wal: Option<Wal<StdIo>>,
}

impl ResultStore {
    /// An empty, non-durable store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens (creating if necessary) a WAL-backed store: replays the
    /// journal under `dir` and journals every subsequent upload before
    /// applying it.
    pub fn open_wal(dir: &Path, config: WalConfig) -> io::Result<(Self, Recovery)> {
        let (wal, mut recovery) = Wal::open(StdIo::new(), dir, config)?;
        let mut records = Vec::new();
        if let Some(snap) = recovery.snapshot.take() {
            let text = std::str::from_utf8(&snap.state).map_err(invalid)?;
            records = RunRecord::parse_many(text).map_err(invalid)?;
        }
        for item in wal.replay() {
            let (lsn, payload) = item?;
            match WalEntry::decode(&payload).map_err(invalid)? {
                WalEntry::Result(rec) => records.push(rec),
                WalEntry::Testcase(_) => {
                    return Err(invalid(format!(
                        "record {lsn}: testcase entry in a result journal"
                    )))
                }
            }
        }
        Ok((
            ResultStore {
                records,
                wal: Some(wal),
            },
            recovery,
        ))
    }

    /// True when mutations are journaled through a WAL.
    pub fn is_durable(&self) -> bool {
        self.wal.is_some()
    }

    /// Appends uploaded records, returning how many were accepted. In
    /// durable mode every record is journaled first — under
    /// `SyncPolicy::Always` an `Ok(n)` means all `n` survive a crash.
    /// On a journal error nothing is applied in memory and the upload
    /// must not be acknowledged.
    pub fn append(&mut self, records: Vec<RunRecord>) -> Result<usize, StoreError> {
        if let Some(wal) = &mut self.wal {
            for rec in &records {
                wal.append(&WalEntry::Result(rec.clone()).encode())?;
            }
        }
        let n = records.len();
        self.records.extend(records);
        Ok(n)
    }

    /// Folds the journal into a checkpoint and deletes the segments it
    /// covers. Returns `false` (doing nothing) in plain mode.
    pub fn compact(&mut self) -> io::Result<bool> {
        let Some(wal) = &mut self.wal else {
            return Ok(false);
        };
        wal.snapshot(RunRecord::emit_many(&self.records).as_bytes())?;
        wal.compact()?;
        Ok(true)
    }

    /// All records in upload order.
    pub fn all(&self) -> &[RunRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Saves all results to a text file.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, RunRecord::emit_many(&self.records))
    }

    /// Loads results from a text file.
    ///
    /// Any defect — a bad key, a truncated record, a garbled number —
    /// is an `InvalidData` error naming the file and the 1-based line,
    /// e.g. `results.txt: line 41: bad outcome "maybee"`. Contrast the
    /// WAL loaders above, which tolerate (and truncate) a torn final
    /// frame: a crash can interrupt a journal append, but nothing
    /// legitimately interrupts a whole-file text checkpoint.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        let records = RunRecord::parse_many(&text)
            .map_err(|e| invalid(format!("{}: {e}", path.display())))?;
        Ok(ResultStore {
            records,
            wal: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uucs_harness::TempDir;
    use uucs_protocol::{MonitorSummary, RunOutcome};
    use uucs_testcase::{ExerciseSpec, Resource};
    use uucs_wal::SyncPolicy;

    fn tc(id: &str) -> Testcase {
        Testcase::single(
            id,
            1.0,
            Resource::Cpu,
            ExerciseSpec::Ramp {
                level: 1.0,
                duration: 10.0,
            },
        )
    }

    fn rec(user: &str) -> RunRecord {
        RunRecord {
            client: "c".into(),
            user: user.into(),
            testcase: "t".into(),
            task: "IE".into(),
            outcome: RunOutcome::Exhausted,
            offset_secs: 10.0,
            last_levels: vec![],
            monitor: MonitorSummary::default(),
        }
    }

    #[test]
    fn testcase_store_roundtrips_through_disk() {
        let dir = TempDir::new("uucs-store");
        let path = dir.join("testcases.txt");
        let store = TestcaseStore::from_testcases(vec![tc("a"), tc("b")]).unwrap();
        store.save(&path).unwrap();
        let loaded = TestcaseStore::load(&path).unwrap();
        assert_eq!(loaded.all(), store.all());
        assert!(loaded.get("a").is_some());
        assert!(loaded.get("zzz").is_none());
    }

    #[test]
    fn duplicate_testcase_rejected() {
        let mut s = TestcaseStore::new();
        s.add(tc("x")).unwrap();
        let err = s.add(tc("x")).unwrap_err();
        assert!(matches!(&err, StoreError::Duplicate(id) if id == "x"));
        assert!(err.to_string().contains("duplicate testcase id x"));
        assert_eq!(s.len(), 1, "the duplicate was not applied");
        assert!(TestcaseStore::from_testcases(vec![tc("y"), tc("y")]).is_err());
    }

    #[test]
    fn result_store_roundtrips_through_disk() {
        let dir = TempDir::new("uucs-rstore");
        let path = dir.join("results.txt");
        let mut store = ResultStore::new();
        store.append(vec![rec("u1"), rec("u2")]).unwrap();
        store.append(vec![rec("u3")]).unwrap();
        assert_eq!(store.len(), 3);
        store.save(&path).unwrap();
        let loaded = ResultStore::load(&path).unwrap();
        assert_eq!(loaded.all(), store.all());
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(TestcaseStore::load(Path::new("/nonexistent/x.txt")).is_err());
        assert!(ResultStore::load(Path::new("/nonexistent/x.txt")).is_err());
    }

    #[test]
    fn result_load_error_names_file_and_line() {
        let dir = TempDir::new("uucs-rstore-corrupt");
        let path = dir.join("results.txt");
        let mut text = RunRecord::emit_many(&[rec("u1")]);
        let good_lines = text.lines().count();
        text.push_str("RESULT\nOUTCOME maybee\nEND\n");
        std::fs::write(&path, &text).unwrap();
        let err = ResultStore::load(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(msg.contains("results.txt"), "no file name in: {msg}");
        assert!(
            msg.contains(&format!("line {}", good_lines + 2)),
            "no line number in: {msg}"
        );
    }

    #[test]
    fn wal_backed_stores_survive_reopen() {
        let dir = TempDir::new("uucs-store-wal");
        let cfg = WalConfig {
            segment_bytes: 2048,
            sync: SyncPolicy::Always,
        };
        {
            let (mut tcs, recovery) = TestcaseStore::open_wal(&dir.join("tc"), cfg).unwrap();
            assert_eq!(recovery.records, 0);
            tcs.add(tc("a")).unwrap();
            tcs.add(tc("b")).unwrap();
            assert!(tcs.is_durable());
            let (mut res, _) = ResultStore::open_wal(&dir.join("res"), cfg).unwrap();
            assert_eq!(res.append(vec![rec("u1"), rec("u2")]).unwrap(), 2);
            // Both stores drop here without any explicit save: the WAL
            // already has everything.
        }
        let (tcs, recovery) = TestcaseStore::open_wal(&dir.join("tc"), cfg).unwrap();
        assert_eq!(recovery.records, 2);
        assert_eq!(tcs.len(), 2);
        assert!(tcs.get("a").is_some() && tcs.get("b").is_some());
        let (res, _) = ResultStore::open_wal(&dir.join("res"), cfg).unwrap();
        assert_eq!(res.len(), 2);
        assert_eq!(res.all()[0], rec("u1"));
    }

    #[test]
    fn wal_backed_store_compacts_and_still_recovers() {
        let dir = TempDir::new("uucs-store-compact");
        let cfg = WalConfig {
            segment_bytes: 512,
            sync: SyncPolicy::Always,
        };
        {
            let (mut res, _) = ResultStore::open_wal(dir.path(), cfg).unwrap();
            res.append((0..8).map(|i| rec(&format!("u{i}"))).collect())
                .unwrap();
            assert!(res.compact().unwrap());
            res.append(vec![rec("after-snap")]).unwrap();
        }
        let (res, recovery) = ResultStore::open_wal(dir.path(), cfg).unwrap();
        assert!(recovery.snapshot.is_none(), "open_wal folds the snapshot");
        assert_eq!(res.len(), 9);
        assert_eq!(res.all()[8], rec("after-snap"));
    }

    #[test]
    fn wal_backed_duplicate_not_journaled() {
        let dir = TempDir::new("uucs-store-dup");
        let cfg = WalConfig::default();
        {
            let (mut tcs, _) = TestcaseStore::open_wal(dir.path(), cfg).unwrap();
            tcs.add(tc("only")).unwrap();
            assert!(matches!(
                tcs.add(tc("only")),
                Err(StoreError::Duplicate(_))
            ));
        }
        let (tcs, recovery) = TestcaseStore::open_wal(dir.path(), cfg).unwrap();
        assert_eq!(recovery.records, 1, "rejected duplicate left no record");
        assert_eq!(tcs.len(), 1);
    }

    #[test]
    fn plain_store_compact_is_a_noop() {
        let mut s = TestcaseStore::new();
        s.add(tc("a")).unwrap();
        assert!(!s.compact().unwrap());
        assert!(!s.is_durable());
        let mut r = ResultStore::new();
        assert!(!r.compact().unwrap());
    }
}
