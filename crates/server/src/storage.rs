//! Storage-engine composition: per-flavor ARC page caches and the
//! shared disk-scheduler thread pool under every WAL-backed store.
//!
//! The seed engine opened each journal directly over [`uucs_wal::StdIo`]
//! — every recovery replay, reshard migration, backfill, and compaction
//! re-read its segment files from the filesystem, and segment-rotation
//! fsyncs rode the verb-handler threads. A [`StorageProfile`] instead
//! hands each store family a [`StoreIo`]: the `uucs-pagecache` ARC
//! cache wrapped around `StdIo`, write-through (durability is
//! byte-for-byte the plain backend's) and read-cached (warm replays hit
//! memory). Hits, misses, evictions and write-backs surface per flavor
//! as `server.cache.<flavor>.*` counters.
//!
//! The profile also owns the optional [`DiskScheduler`]: a bounded
//! request queue drained by dedicated I/O threads. The group committer
//! submits its per-shard fsyncs there (parallel across shards), and
//! with the scheduler on, the stores defer segment-rotation fsyncs to
//! the next committer pass — rotation no longer stalls the append path
//! (`server.wal.<flavor>.rotation_stall.ns` shows the residual).
//! Queue depth and dequeue stalls surface as `server.disk.*`.
//!
//! With `cache_pages == 0` and `io_threads == 0` (the default profile)
//! every store opens in strict passthrough — the exact syscall shape of
//! the seed engine.

use std::sync::Arc;
use uucs_pagecache::{
    CacheObserver, CachedIo, DiskScheduler, OpKind, SchedObserver, DEFAULT_PAGE_SIZE,
};
use uucs_telemetry::{metrics, Counter, Histogram};
use uucs_wal::StdIo;

/// The I/O backend every WAL-backed store journals through: the ARC
/// page cache over real files. [`plain_io`] (capacity 0) is a strict
/// passthrough, so plain opens cost nothing extra.
pub type StoreIo = CachedIo<StdIo>;

/// An uncached [`StoreIo`] — the seed engine's exact I/O shape.
pub fn plain_io() -> StoreIo {
    CachedIo::passthrough(StdIo::new())
}

/// Bridges one flavor's cache events into `server.cache.<flavor>.*`.
struct CacheTelemetry {
    hit: Counter,
    miss: Counter,
    evict: Counter,
    writeback: Counter,
}

impl CacheObserver for CacheTelemetry {
    fn on_hit(&mut self) {
        self.hit.inc();
    }
    fn on_miss(&mut self) {
        self.miss.inc();
    }
    fn on_evict(&mut self) {
        self.evict.inc();
    }
    fn on_writeback(&mut self) {
        self.writeback.inc();
    }
}

/// Bridges scheduler events into `server.disk.*`: queue depth at
/// enqueue, how long requests sat queued, and service time per op.
struct DiskTelemetry {
    queue_depth: Histogram,
    stall_ns: Histogram,
    service_ns: Histogram,
    ops: Counter,
}

impl SchedObserver for DiskTelemetry {
    fn on_enqueue(&self, _kind: OpKind, depth: usize) {
        self.queue_depth.record(depth as u64);
    }
    fn on_dequeue(&self, _kind: OpKind, stall_ns: u64, _depth: usize) {
        self.stall_ns.record(stall_ns);
    }
    fn on_complete(&self, _kind: OpKind, dur_ns: u64) {
        self.ops.inc();
        self.service_ns.record(dur_ns);
    }
}

/// How the server's storage engine is provisioned: cache capacity per
/// store flavor and the I/O thread pool. The [`Default`] profile (no
/// cache, no scheduler) reproduces the seed engine exactly.
#[derive(Debug, Clone)]
pub struct StorageProfile {
    /// ARC cache capacity in pages, **per store flavor** (the four
    /// flavors each get their own cache, shared by that family's
    /// shards). `0` disables caching entirely.
    pub cache_pages: usize,
    /// Cache page size in bytes.
    pub page_size: usize,
    /// Dedicated disk-scheduler threads. `0` disables the scheduler:
    /// fsyncs run on the committer thread and rotations sync inline,
    /// as in the seed engine.
    pub io_threads: usize,
}

impl Default for StorageProfile {
    fn default() -> Self {
        StorageProfile {
            cache_pages: 0,
            page_size: DEFAULT_PAGE_SIZE,
            io_threads: 0,
        }
    }
}

impl StorageProfile {
    /// A profile with `cache_pages` of cache per flavor and the default
    /// page size.
    pub fn with_cache_pages(cache_pages: usize) -> Self {
        StorageProfile {
            cache_pages,
            ..Self::default()
        }
    }

    /// Builds one flavor's [`StoreIo`], with its cache counters
    /// registered under `server.cache.<flavor>.*`. Capacity 0 is a
    /// strict passthrough (no observer, no overhead).
    pub fn store_io(&self, flavor: &str) -> StoreIo {
        if self.cache_pages == 0 {
            return plain_io();
        }
        let io = CachedIo::new(StdIo::new(), self.cache_pages, self.page_size);
        io.set_observer(Box::new(CacheTelemetry {
            hit: metrics::counter(&format!("server.cache.{flavor}.hit")),
            miss: metrics::counter(&format!("server.cache.{flavor}.miss")),
            evict: metrics::counter(&format!("server.cache.{flavor}.evict")),
            writeback: metrics::counter(&format!("server.cache.{flavor}.writeback")),
        }));
        io
    }

    /// Builds the disk scheduler when `io_threads > 0`, with its queue
    /// instrumented under `server.disk.*`.
    pub fn scheduler(&self) -> Option<Arc<DiskScheduler>> {
        if self.io_threads == 0 {
            return None;
        }
        let sched = DiskScheduler::new(self.io_threads, 256);
        sched.set_observer(Arc::new(DiskTelemetry {
            queue_depth: metrics::histogram("server.disk.queue_depth"),
            stall_ns: metrics::histogram("server.disk.stall_ns"),
            service_ns: metrics::histogram("server.disk.service_ns"),
            ops: metrics::counter("server.disk.ops"),
        }));
        Some(Arc::new(sched))
    }
}
