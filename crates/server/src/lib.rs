//! The UUCS server (paper §2, Figure 1).
//!
//! Holds the testcase store and the result store (text files on disk, as
//! in the paper), registers clients (assigning globally unique
//! identifiers against a hardware/software snapshot), and answers hot
//! syncs: "New testcases, which can be added to the server at any time,
//! are downloaded by the client, while new results are uploaded back to
//! the server."
//!
//! The *growing random sample* the paper describes is implemented with a
//! client-keyed deterministic permutation of the testcase library: each
//! client walks its own random order, so successive syncs extend its
//! sample without duplicates, and the collection of clients covers the
//! library uniformly.
//!
//! Both stores optionally journal through a write-ahead log
//! (`uucs-wal`, see [`store::TestcaseStore::open_wal`] and
//! [`store::ResultStore::open_wal`]): every accepted upload or testcase
//! addition is framed, checksummed and (policy permitting) fsynced
//! before the client sees an `Ack`, and restarting the server replays
//! the journal — so a crash between the paper's periodic whole-file
//! checkpoints no longer loses acknowledged results.
//!
//! The [`models`] module closes the borrowing loop (`uucs-modelsvc`):
//! every applied upload batch is folded into cohort-keyed discomfort
//! quantile sketches as one model epoch, journaled in its own WAL, and
//! served back through the `MODEL` and `ADVICE` verbs.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod commit;
pub mod models;
pub mod server;
pub mod shard;
pub mod storage;
pub mod store;
pub mod tcp;

pub use commit::{CommitTicket, GroupCommitter, StoreFlavor};
pub use models::ModelStore;
pub use server::{ReplicationSink, UucsServer};
pub use shard::{shard_of, Sharded, StoreSet};
pub use storage::{StorageProfile, StoreIo};
pub use store::{BatchStatus, RegistryStore, ResultStore, StoreError, TestcaseStore};
