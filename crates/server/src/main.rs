//! The `uucs-server` daemon: serves a testcase library over TCP and
//! appends uploaded results to a text store, exactly the Figure 1 server.
//!
//! ```text
//! uucs-server [--addr 127.0.0.1:4004] [--library FILE] [--data DIR]
//!             [--generate-library N-seed] [--wal] [--sync POLICY]
//! ```
//!
//! With `--library`, serves the testcases in the given text file; with
//! `--generate-library`, builds the Internet-sweep library from a seed.
//!
//! Without `--wal`, state is saved to `--data` (default
//! `uucs-server-data/`) on periodic whole-file checkpoints (every 30 s)
//! — the paper's design, which can lose up to 30 s of acknowledged
//! uploads on a crash. With `--wal`, the stores journal through a
//! write-ahead log under `--data` (`wal/testcases/`, `wal/results/`,
//! `wal/registry/`): every acknowledged mutation — including client
//! registrations and per-client upload dedup horizons — is recovered on
//! restart, and the 30 s tick compacts the journal instead of rewriting
//! the world. `--sync` picks the fsync policy: `always` (default),
//! `every=N`, or `never`.

use std::path::PathBuf;
use std::sync::Arc;
use uucs_server::{tcp, ModelStore, RegistryStore, ResultStore, TestcaseStore, UucsServer};
use uucs_wal::{SyncPolicy, WalConfig};

fn main() {
    let mut addr = "127.0.0.1:4004".to_string();
    let mut library: Option<PathBuf> = None;
    let mut data = PathBuf::from("uucs-server-data");
    let mut gen_seed: Option<u64> = None;
    let mut wal = false;
    let mut sync = SyncPolicy::Always;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                addr = args.get(i).cloned().unwrap_or(addr);
            }
            "--library" => {
                i += 1;
                library = args.get(i).map(PathBuf::from);
            }
            "--data" => {
                i += 1;
                data = args.get(i).map(PathBuf::from).unwrap_or(data);
            }
            "--generate-library" => {
                i += 1;
                gen_seed = args.get(i).and_then(|s| s.parse().ok()).or(Some(42));
            }
            "--wal" => {
                wal = true;
            }
            "--sync" => {
                i += 1;
                sync = args
                    .get(i)
                    .and_then(|s| SyncPolicy::parse(s))
                    .unwrap_or_else(|| {
                        eprintln!("bad --sync (want always, never, or every=N)");
                        std::process::exit(2);
                    });
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let seed_library = || -> Vec<uucs_testcase::Testcase> {
        if let Some(path) = &library {
            match TestcaseStore::load(path) {
                Ok(store) => store.all().to_vec(),
                Err(e) => {
                    eprintln!("cannot load library {path:?}: {e}");
                    std::process::exit(1);
                }
            }
        } else {
            let seed = gen_seed.unwrap_or(42);
            eprintln!("generating internet-sweep library (seed {seed}) ...");
            uucs_testcase::generate::Library::internet_sweep(seed)
                .testcases()
                .to_vec()
        }
    };

    let server = if wal {
        let config = WalConfig {
            sync,
            ..WalConfig::default()
        };
        eprintln!("recovering journals under {:?} ...", data.join("wal"));
        let (mut testcases, tc_rec) =
            TestcaseStore::open_wal(&data.join("wal/testcases"), config).unwrap_or_else(|e| {
                eprintln!("testcase journal is unrecoverable: {e}");
                std::process::exit(1);
            });
        let (results, res_rec) =
            ResultStore::open_wal(&data.join("wal/results"), config).unwrap_or_else(|e| {
                eprintln!("result journal is unrecoverable: {e}");
                std::process::exit(1);
            });
        let (registry, reg_rec) =
            RegistryStore::open_wal(&data.join("wal/registry"), config).unwrap_or_else(|e| {
                eprintln!("registry journal is unrecoverable: {e}");
                std::process::exit(1);
            });
        let (models, mdl_rec) =
            ModelStore::open_wal(&data.join("wal/models"), config).unwrap_or_else(|e| {
                eprintln!("model journal is unrecoverable: {e}");
                std::process::exit(1);
            });
        for r in [&tc_rec, &res_rec, &reg_rec, &mdl_rec] {
            if let Some(t) = &r.torn_tail {
                eprintln!(
                    "  truncated a torn append in {} ({} bytes, {})",
                    t.segment, t.lost_bytes, t.reason
                );
            }
        }
        if testcases.is_empty() {
            for tc in seed_library() {
                if let Err(e) = testcases.add(tc) {
                    eprintln!("cannot seed library: {e}");
                    std::process::exit(1);
                }
            }
        }
        let server = Arc::new(
            UucsServer::with_all_stores(testcases, results, registry, 0x5e17)
                .with_model_store(models),
        );
        eprintln!(
            "recovered {} testcases, {} results, {} clients, model epoch {} (sync policy {sync})",
            server.testcase_count(),
            server.result_count(),
            server.client_count(),
            server.model_epoch()
        );
        server
    } else {
        let store = TestcaseStore::from_testcases(seed_library()).unwrap_or_else(|e| {
            eprintln!("library has duplicate ids: {e}");
            std::process::exit(1);
        });
        Arc::new(UucsServer::new(store, 0x5e17))
    };

    eprintln!("serving {} testcases on {addr}", server.testcase_count());
    let handle = tcp::serve(server.clone(), &addr).unwrap_or_else(|e| {
        eprintln!("cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    eprintln!("listening on {} (data dir {data:?})", handle.addr());

    loop {
        std::thread::sleep(std::time::Duration::from_secs(30));
        let tick = if wal {
            // The journal already holds everything acknowledged; the
            // tick just folds it into a checkpoint and frees segments.
            server.compact().map(|_| "compacted journal")
        } else {
            server.save(&data).map(|_| "checkpointed text stores")
        };
        match tick {
            Ok(what) => eprintln!(
                "{what}: {} clients, {} results",
                server.client_count(),
                server.result_count()
            ),
            Err(e) => eprintln!("checkpoint failed: {e}"),
        }
    }
}
