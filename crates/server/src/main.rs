//! The `uucs-server` daemon: serves a testcase library over TCP and
//! appends uploaded results to a text store, exactly the Figure 1 server.
//!
//! ```text
//! uucs-server [--addr 127.0.0.1:4004] [--library FILE] [--data DIR]
//!             [--generate-library N-seed] [--wal] [--sync POLICY]
//!             [--shards N] [--commit-interval-us N]
//!             [--cache-pages N] [--io-threads N]
//!             [--max-conns N] [--workers N] [--engine pool|threads]
//! ```
//!
//! With `--library`, serves the testcases in the given text file; with
//! `--generate-library`, builds the Internet-sweep library from a seed.
//!
//! Without `--wal`, state is saved to `--data` (default
//! `uucs-server-data/`) on periodic whole-file checkpoints (every 30 s)
//! — the paper's design, which can lose up to 30 s of acknowledged
//! uploads on a crash. With `--wal`, the stores journal through a
//! write-ahead log under `--data` (`wal/testcases/`, `wal/results/`,
//! `wal/registry/`, `wal/models/`): every acknowledged mutation —
//! including client registrations and per-client upload dedup horizons —
//! is recovered on restart, and the 30 s tick compacts the journal
//! instead of rewriting the world. `--sync` picks the fsync policy:
//! `always` (default), `every=N`, or `never`.
//!
//! Engine knobs:
//!
//! * `--shards N` splits every store (and its journal) into N
//!   hash-routed shards, each behind its own lock and WAL segment
//!   stream. Restarting with a different N migrates the layout;
//!   state is preserved exactly.
//! * `--commit-interval-us N` turns on group commit: appends stop
//!   fsyncing individually and a dedicated commit thread batches all
//!   pending appends into one fsync per shard every N microseconds.
//!   Acks still wait for the fsync — same durability, amortized cost.
//! * `--cache-pages N` puts an ARC page cache (N pages per store
//!   flavor, `uucs-pagecache`) under every journal: write-through (no
//!   durability change), read-cached (recovery replays, reshard
//!   migrations and compaction scans hit memory when warm). 0 (the
//!   default) is a strict passthrough.
//! * `--io-threads N` starts the disk-scheduler thread pool: group
//!   commit fans its per-shard fsyncs out to it, and segment rotation
//!   defers its fsync to the next commit pass instead of stalling the
//!   append path. Needs `--commit-interval-us`.
//! * `--max-conns N`, `--workers N`, `--engine pool|threads` tune the
//!   TCP front end (worker pool over nonblocking sockets by default;
//!   `threads` restores one-thread-per-connection).
//!
//! All engine settings are surfaced in `STATS` as `server.config.*`
//! gauges.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use uucs_server::tcp::{EngineMode, ServeConfig};
use uucs_server::{tcp, StorageProfile, StoreSet, TestcaseStore, UucsServer};
use uucs_telemetry::metrics;
use uucs_wal::{SyncPolicy, WalConfig};

fn main() {
    let mut addr = "127.0.0.1:4004".to_string();
    let mut library: Option<PathBuf> = None;
    let mut data = PathBuf::from("uucs-server-data");
    let mut gen_seed: Option<u64> = None;
    let mut wal = false;
    let mut sync = SyncPolicy::Always;
    let mut shards: usize = 1;
    let mut commit_interval_us: u64 = 0;
    let mut storage = StorageProfile::default();
    let mut serve_config = ServeConfig::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                addr = args.get(i).cloned().unwrap_or(addr);
            }
            "--library" => {
                i += 1;
                library = args.get(i).map(PathBuf::from);
            }
            "--data" => {
                i += 1;
                data = args.get(i).map(PathBuf::from).unwrap_or(data);
            }
            "--generate-library" => {
                i += 1;
                gen_seed = args.get(i).and_then(|s| s.parse().ok()).or(Some(42));
            }
            "--wal" => {
                wal = true;
            }
            "--sync" => {
                i += 1;
                sync = args
                    .get(i)
                    .and_then(|s| SyncPolicy::parse(s))
                    .unwrap_or_else(|| {
                        eprintln!("bad --sync (want always, never, or every=N)");
                        std::process::exit(2);
                    });
            }
            "--shards" => {
                i += 1;
                shards = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("bad --shards (want an integer >= 1)");
                        std::process::exit(2);
                    });
            }
            "--commit-interval-us" => {
                i += 1;
                commit_interval_us = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("bad --commit-interval-us (want microseconds, 0 disables)");
                    std::process::exit(2);
                });
            }
            "--cache-pages" => {
                i += 1;
                storage.cache_pages = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("bad --cache-pages (want a page count, 0 disables)");
                    std::process::exit(2);
                });
            }
            "--io-threads" => {
                i += 1;
                storage.io_threads = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("bad --io-threads (want a thread count, 0 disables)");
                    std::process::exit(2);
                });
            }
            "--max-conns" => {
                i += 1;
                serve_config.max_connections = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("bad --max-conns (want an integer >= 1)");
                        std::process::exit(2);
                    });
            }
            "--workers" => {
                i += 1;
                serve_config.workers =
                    args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                        eprintln!("bad --workers (want an integer, 0 = auto)");
                        std::process::exit(2);
                    });
            }
            "--engine" => {
                i += 1;
                serve_config.engine = match args.get(i).map(String::as_str) {
                    Some("pool") => EngineMode::WorkerPool,
                    Some("threads") => EngineMode::ThreadPerConn,
                    _ => {
                        eprintln!("bad --engine (want pool or threads)");
                        std::process::exit(2);
                    }
                };
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if commit_interval_us > 0 && !wal {
        eprintln!("--commit-interval-us needs --wal (group commit batches journal fsyncs)");
        std::process::exit(2);
    }
    if storage.io_threads > 0 && commit_interval_us == 0 {
        eprintln!("--io-threads needs --commit-interval-us (the committer drives the scheduler)");
        std::process::exit(2);
    }
    if storage.cache_pages > 0 && !wal {
        eprintln!("--cache-pages needs --wal (the cache sits under the journals)");
        std::process::exit(2);
    }

    // Surface the engine configuration in STATS so fleet drivers can
    // confirm what they are actually talking to.
    metrics::gauge("server.config.shards").set(shards as i64);
    metrics::gauge("server.config.max_connections").set(serve_config.max_connections as i64);
    metrics::gauge("server.config.workers").set(serve_config.workers as i64);
    metrics::gauge("server.config.commit_interval_us").set(commit_interval_us as i64);
    metrics::gauge("server.config.cache_pages").set(storage.cache_pages as i64);
    metrics::gauge("server.config.io_threads").set(storage.io_threads as i64);
    metrics::gauge("server.config.engine_pool").set(i64::from(matches!(
        serve_config.engine,
        EngineMode::WorkerPool
    )));

    let seed_library = || -> Vec<uucs_testcase::Testcase> {
        if let Some(path) = &library {
            match TestcaseStore::load(path) {
                Ok(store) => store.all().to_vec(),
                Err(e) => {
                    eprintln!("cannot load library {path:?}: {e}");
                    std::process::exit(1);
                }
            }
        } else {
            let seed = gen_seed.unwrap_or(42);
            eprintln!("generating internet-sweep library (seed {seed}) ...");
            uucs_testcase::generate::Library::internet_sweep(seed)
                .testcases()
                .to_vec()
        }
    };

    let server = if wal {
        // Under group commit the per-append policy is Never: the commit
        // thread owns durability (one batched fsync per shard, acks wait
        // on the watermark).
        let config = WalConfig {
            sync: if commit_interval_us > 0 {
                SyncPolicy::Never
            } else {
                sync
            },
            ..WalConfig::default()
        };
        eprintln!("recovering journals under {:?} ({shards} shard(s)) ...", data.join("wal"));
        let (stores, recoveries) = StoreSet::open_with(&data.join("wal"), config, shards, &storage)
            .unwrap_or_else(|e| {
                eprintln!("journal is unrecoverable: {e}");
                std::process::exit(1);
            });
        for r in &recoveries {
            if let Some(t) = &r.torn_tail {
                eprintln!(
                    "  truncated a torn append in {} ({} bytes, {})",
                    t.segment, t.lost_bytes, t.reason
                );
            }
        }
        let mut server = UucsServer::with_store_set(stores, 0x5e17);
        if let Some(sched) = storage.scheduler() {
            server = server.with_io_scheduler(sched);
        }
        if commit_interval_us > 0 {
            server = server.with_group_commit(Duration::from_micros(commit_interval_us));
        }
        let server = Arc::new(server);
        if server.testcase_count() == 0 {
            for tc in seed_library() {
                if let Err(e) = server.add_testcase(tc) {
                    eprintln!("cannot seed library: {e}");
                    std::process::exit(1);
                }
            }
        }
        eprintln!(
            "recovered {} testcases, {} results, {} clients, model epoch {} (sync policy {sync})",
            server.testcase_count(),
            server.result_count(),
            server.client_count(),
            server.model_epoch()
        );
        server
    } else {
        let store = TestcaseStore::from_testcases(seed_library()).unwrap_or_else(|e| {
            eprintln!("library has duplicate ids: {e}");
            std::process::exit(1);
        });
        Arc::new(UucsServer::new(store, 0x5e17))
    };

    eprintln!("serving {} testcases on {addr}", server.testcase_count());
    let handle = tcp::serve_with(server.clone(), &addr, serve_config).unwrap_or_else(|e| {
        eprintln!("cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    eprintln!("listening on {} (data dir {data:?})", handle.addr());

    loop {
        std::thread::sleep(std::time::Duration::from_secs(30));
        let tick = if wal {
            // The journal already holds everything acknowledged; the
            // tick just folds it into a checkpoint and frees segments.
            server.compact().map(|_| "compacted journal")
        } else {
            server.save(&data).map(|_| "checkpointed text stores")
        };
        match tick {
            Ok(what) => eprintln!(
                "{what}: {} clients, {} results",
                server.client_count(),
                server.result_count()
            ),
            Err(e) => eprintln!("checkpoint failed: {e}"),
        }
    }
}
