//! The `uucs-server` daemon: serves a testcase library over TCP and
//! appends uploaded results to a text store, exactly the Figure 1 server.
//!
//! ```text
//! uucs-server [--addr 127.0.0.1:4004] [--library FILE] [--data DIR]
//!             [--generate-library N-seed]
//! ```
//!
//! With `--library`, serves the testcases in the given text file; with
//! `--generate-library`, builds the Internet-sweep library from a seed.
//! State is saved to `--data` (default `uucs-server-data/`) on Ctrl-C-free
//! periodic checkpoints (every 30 s).

use std::path::PathBuf;
use std::sync::Arc;
use uucs_server::{tcp, TestcaseStore, UucsServer};

fn main() {
    let mut addr = "127.0.0.1:4004".to_string();
    let mut library: Option<PathBuf> = None;
    let mut data = PathBuf::from("uucs-server-data");
    let mut gen_seed: Option<u64> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                addr = args.get(i).cloned().unwrap_or(addr);
            }
            "--library" => {
                i += 1;
                library = args.get(i).map(PathBuf::from);
            }
            "--data" => {
                i += 1;
                data = args.get(i).map(PathBuf::from).unwrap_or(data);
            }
            "--generate-library" => {
                i += 1;
                gen_seed = args.get(i).and_then(|s| s.parse().ok()).or(Some(42));
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let store = if let Some(path) = library {
        TestcaseStore::load(&path).unwrap_or_else(|e| {
            eprintln!("cannot load library {path:?}: {e}");
            std::process::exit(1);
        })
    } else if let Some(seed) = gen_seed {
        eprintln!("generating internet-sweep library (seed {seed}) ...");
        TestcaseStore::from_testcases(
            uucs_testcase::generate::Library::internet_sweep(seed)
                .testcases()
                .to_vec(),
        )
    } else {
        eprintln!("no --library given: generating the default internet-sweep library");
        TestcaseStore::from_testcases(
            uucs_testcase::generate::Library::internet_sweep(42)
                .testcases()
                .to_vec(),
        )
    };
    eprintln!("serving {} testcases on {addr}", store.len());
    let server = Arc::new(UucsServer::new(store, 0x5e17));
    let handle = tcp::serve(server.clone(), &addr).unwrap_or_else(|e| {
        eprintln!("cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    eprintln!("listening on {} (checkpointing to {data:?})", handle.addr());

    loop {
        std::thread::sleep(std::time::Duration::from_secs(30));
        if let Err(e) = server.save(&data) {
            eprintln!("checkpoint failed: {e}");
        } else {
            eprintln!(
                "checkpoint: {} clients, {} results",
                server.client_count(),
                server.result_count()
            );
        }
    }
}
