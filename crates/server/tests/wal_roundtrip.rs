//! Server-level crash-recovery round trip: results uploaded over TCP
//! and acknowledged must survive an abrupt server death (no checkpoint,
//! no save — only the write-ahead log), across multiple generations.

use std::io::BufReader;
use std::net::TcpStream;
use std::path::Path;
use std::sync::Arc;
use uucs_harness::TempDir;
use uucs_protocol::wire::{read_server_msg, write_client_msg};
use uucs_protocol::{ClientMsg, MachineSnapshot, MonitorSummary, RunOutcome, RunRecord, ServerMsg};
use uucs_server::{tcp, RegistryStore, ResultStore, TestcaseStore, UucsServer};
use uucs_testcase::{ExerciseSpec, Resource, Testcase};
use uucs_wal::{SyncPolicy, WalConfig};

const CFG: WalConfig = WalConfig {
    segment_bytes: 1024,
    sync: SyncPolicy::Always,
};

fn record(i: usize) -> RunRecord {
    RunRecord {
        client: "client-0001".into(),
        user: format!("u{i}"),
        testcase: format!("t{}", i % 3),
        task: "Word".into(),
        skill: "Typical".into(),
        outcome: if i.is_multiple_of(2) {
            RunOutcome::Discomfort
        } else {
            RunOutcome::Exhausted
        },
        offset_secs: 10.0 + i as f64,
        last_levels: vec![(Resource::Cpu, vec![1.0, 1.5, 2.0])],
        monitor: MonitorSummary::default(),
    }
}

/// Opens both stores from the WAL directories and builds a server,
/// seeding the library on first boot only — what `uucs-server --wal`
/// does on startup.
fn boot(dir: &Path) -> Arc<UucsServer> {
    let (mut testcases, _) = TestcaseStore::open_wal(&dir.join("testcases"), CFG).unwrap();
    let (results, _) = ResultStore::open_wal(&dir.join("results"), CFG).unwrap();
    let (registry, _) = RegistryStore::open_wal(&dir.join("registry"), CFG).unwrap();
    if testcases.is_empty() {
        for i in 0..3 {
            testcases
                .add(Testcase::single(
                    format!("t{i}"),
                    1.0,
                    Resource::Cpu,
                    ExerciseSpec::Ramp {
                        level: 1.0,
                        duration: 30.0,
                    },
                ))
                .unwrap();
        }
    }
    Arc::new(UucsServer::with_all_stores(testcases, results, registry, 11))
}

/// Registers over TCP and uploads `records` as batch `seq`, returning
/// the server's ack count.
fn upload_over_tcp(addr: std::net::SocketAddr, seq: u64, records: Vec<RunRecord>) -> usize {
    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    write_client_msg(
        &mut writer,
        &ClientMsg::register(MachineSnapshot::study_machine("wal-rt")),
    )
    .unwrap();
    let client = match read_server_msg(&mut reader).unwrap() {
        ServerMsg::Id { id, .. } => id,
        other => panic!("expected Id, got {other:?}"),
    };
    // A sync must see the recovered library.
    write_client_msg(
        &mut writer,
        &ClientMsg::Sync {
            client: client.clone(),
            have: 0,
            want: 10,
        },
    )
    .unwrap();
    match read_server_msg(&mut reader).unwrap() {
        ServerMsg::Testcases(tcs) => assert_eq!(tcs.len(), 3, "library lost across restart"),
        other => panic!("expected Testcases, got {other:?}"),
    }
    write_client_msg(&mut writer, &ClientMsg::Upload { client, seq, records }).unwrap();
    let n = match read_server_msg(&mut reader).unwrap() {
        ServerMsg::Ack(n) => n,
        other => panic!("expected Ack, got {other:?}"),
    };
    write_client_msg(&mut writer, &ClientMsg::Bye).unwrap();
    n
}

#[test]
fn acknowledged_uploads_survive_server_death() {
    let tmp = TempDir::new("uucs-wal-roundtrip");
    let dir = tmp.path().to_path_buf();

    // Generation 1: boot, upload 4 records over TCP, die without saving.
    {
        let server = boot(&dir);
        let handle = tcp::serve(server, "127.0.0.1:0").unwrap();
        assert_eq!(
            upload_over_tcp(handle.addr(), 1, (0..4).map(record).collect()),
            4
        );
        // The "kill": shut the socket down and drop all in-memory state.
        // Nothing calls save(); durability rests on the journal alone.
        handle.shutdown();
    }

    // Generation 2: recovery sees the 4 acknowledged records *and* the
    // generation-1 registration; a new client's sync sees the recovered
    // library; 3 more records arrive, and this generation also compacts
    // mid-life.
    {
        let server = boot(&dir);
        assert_eq!(server.result_count(), 4, "acknowledged uploads were lost");
        assert_eq!(server.testcase_count(), 3);
        assert_eq!(server.client_count(), 1, "registration lost across restart");
        let handle = tcp::serve(server.clone(), "127.0.0.1:0").unwrap();
        assert_eq!(
            upload_over_tcp(handle.addr(), 1, (4..7).map(record).collect()),
            3
        );
        assert!(server.compact().unwrap(), "wal-backed stores must compact");
        handle.shutdown();
    }

    // Generation 3: the snapshot + tail replay reconstruct all 7, in
    // upload order, byte-for-byte.
    {
        let server = boot(&dir);
        assert_eq!(server.result_count(), 7);
        assert_eq!(server.client_count(), 2);
        let all = server.results();
        for (i, rec) in all.iter().enumerate() {
            assert_eq!(rec, &record(i), "record {i} mutated across recovery");
        }
        assert_eq!(server.testcase_count(), 3);
    }
}

/// The lost-Ack retransmit is safe even across a server kill: the batch
/// horizon rides in the WAL, so the recovered server re-acks the replay
/// and stores nothing twice.
#[test]
fn retransmit_after_lost_ack_is_deduped_across_restart() {
    let tmp = TempDir::new("uucs-wal-retransmit");
    let dir = tmp.path().to_path_buf();
    let records: Vec<RunRecord> = (0..3).map(record).collect();

    // Generation 1: the batch is applied and journaled, but pretend the
    // Ack never reached the client (we simply ignore it), and the server
    // dies.
    let client = {
        let server = boot(&dir);
        let handle = tcp::serve(server.clone(), "127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        write_client_msg(
            &mut writer,
            &ClientMsg::register(MachineSnapshot::study_machine("retrans")),
        )
        .unwrap();
        let client = match read_server_msg(&mut reader).unwrap() {
            ServerMsg::Id { id, .. } => id,
            other => panic!("{other:?}"),
        };
        write_client_msg(
            &mut writer,
            &ClientMsg::Upload {
                client: client.clone(),
                seq: 1,
                records: records.clone(),
            },
        )
        .unwrap();
        assert!(matches!(
            read_server_msg(&mut reader).unwrap(),
            ServerMsg::Ack(3)
        ));
        handle.shutdown();
        client
    };

    // Generation 2: the client retries the identical batch. The
    // recovered server recognizes (client, seq) and re-acks without a
    // second copy.
    {
        let server = boot(&dir);
        assert_eq!(server.result_count(), 3);
        assert_eq!(server.applied_seq(&client), 1);
        let handle = tcp::serve(server.clone(), "127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        write_client_msg(
            &mut writer,
            &ClientMsg::Upload {
                client: client.clone(),
                seq: 1,
                records: records.clone(),
            },
        )
        .unwrap();
        assert!(matches!(
            read_server_msg(&mut reader).unwrap(),
            ServerMsg::Ack(3)
        ));
        assert_eq!(server.result_count(), 3, "replay stored a duplicate");
        // The records are byte-for-byte the originals.
        assert_eq!(server.results(), records);
        handle.shutdown();
    }
}
