//! The run engine: executes one testcase for one user in one context and
//! produces the [`RunRecord`] the UUCS client stores (§2.3).
//!
//! A run proceeds exactly as in the paper: the exercisers start playing
//! the testcase while the user performs the foreground task; the moment
//! the user expresses discomfort the exercisers are stopped and their
//! resources released; otherwise the run ends when every exercise
//! function is exhausted.
//!
//! The *discomfort decision* is made by the calibrated user model in
//! commanded-contention space (the paper's CDF axis is "the last five
//! contention values used in each exercise function at the point of user
//! feedback"). The *measurement machinery* around the decision runs at
//! one of two fidelities:
//!
//! * [`Fidelity::Full`] — the testcase actually plays on the simulated
//!   machine: exercisers contend with the foreground task model and the
//!   OS background, and the record carries real monitoring data (CPU
//!   utilization, peak memory, disk busy, faults, foreground latency).
//! * [`Fidelity::Fast`] — the decision and offsets are identical (same
//!   RNG stream, same crossing logic), but the machine is not simulated
//!   and the monitor summary is synthesized from the commanded levels.
//!   Used for the 1056-run controlled study and the Internet-scale
//!   study, where only the decision statistics matter.

use crate::calibration;
use crate::user::UserProfile;
use uucs_exercisers::playback::spawn_exercisers;
use uucs_protocol::{MonitorSummary, RunOutcome, RunRecord};
use uucs_sim::{secs, Machine, SimTime, SEC};
use uucs_stats::Pcg64;
use uucs_testcase::{Resource, Testcase};
use uucs_workloads::{OsBackground, Task};

/// How the measurement machinery runs (the decision is identical).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Decision-only; monitor summary synthesized from commanded levels.
    Fast,
    /// Simulate the machine and collect real monitoring data.
    Full,
}

/// The exposure style of a testcase, for the ramp-adaptation effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStyle {
    /// Gradual growth — the user adapts ("frog in the pot") and tolerates
    /// a higher level than under a step.
    Ramp,
    /// Abrupt exposure.
    Step,
    /// Anything else (periodic, queueing-model, trace) — treated as
    /// abrupt.
    Other,
}

impl RunStyle {
    /// Infers the style from a testcase id produced by the generators
    /// (ids contain `-ramp`/`-step`).
    pub fn infer(tc: &Testcase) -> RunStyle {
        let id = tc.id.as_str();
        if id.contains("ramp") {
            RunStyle::Ramp
        } else if id.contains("step") {
            RunStyle::Step
        } else {
            RunStyle::Other
        }
    }
}

/// Everything needed to execute one run.
#[derive(Debug, Clone)]
pub struct RunSetup<'a> {
    /// The subject.
    pub user: &'a UserProfile,
    /// The foreground context.
    pub task: Task,
    /// The testcase to play.
    pub testcase: &'a Testcase,
    /// Exposure style (usually [`RunStyle::infer`]).
    pub style: RunStyle,
    /// Run seed — derive from (study seed, user, task, testcase) so every
    /// run is an independent, reproducible stream.
    pub seed: u64,
    /// Measurement fidelity.
    pub fidelity: Fidelity,
    /// Client GUID recorded on the result.
    pub client_id: String,
}

/// Simulated warmup before the testcase starts, standing in for the
/// study's acclimatization phase.
const WARMUP: SimTime = 20 * SEC;

/// The user decision: returns the outcome and the offset (seconds into
/// the testcase) at which feedback or exhaustion happened.
fn decide(setup: &RunSetup<'_>, rng: &mut Pcg64) -> (RunOutcome, f64) {
    let tc = setup.testcase;
    let duration = tc.duration();
    let mut t_feedback = f64::INFINITY;

    // Threshold crossings on commanded levels.
    for f in &tc.functions {
        if f.is_blank() {
            continue;
        }
        let ceiling = calibration::cell(setup.task, f.resource).ramp_ceiling;
        let thr = match setup.style {
            // The thresholds are calibrated from the paper's ramp CDFs.
            RunStyle::Ramp => setup.user.threshold(setup.task, f.resource),
            // Abrupt exposure: no slow adaptation, lower tolerance.
            _ => setup.user.step_threshold(setup.task, f.resource, ceiling),
        };
        // Earliest sample whose commanded level reaches the threshold.
        if let Some(idx) = f.values.iter().position(|&v| v >= thr) {
            let t = idx as f64 / f.sample_rate_hz;
            t_feedback = t_feedback.min(t);
        }
    }
    if t_feedback.is_finite() {
        // Reaction delay between perception and the hot-key.
        t_feedback += setup.user.reaction_secs * rng.lognormal(0.0, 0.25);
    }

    // Noise floor: spurious discomfort on blank runs (Figure 9 shows this
    // only materializes in jitter-sensitive contexts).
    if tc.is_blank() {
        let p = (calibration::noise_floor(setup.task) * setup.user.noise_propensity).min(0.95);
        if rng.bernoulli(p) {
            let t_noise = rng.uniform(0.0, duration);
            t_feedback = t_feedback.min(t_noise);
        }
    }

    if t_feedback < duration {
        (RunOutcome::Discomfort, t_feedback)
    } else {
        (RunOutcome::Exhausted, duration)
    }
}

/// Executes a run, returning its result record.
pub fn execute_run(setup: &RunSetup<'_>) -> RunRecord {
    let mut rng = Pcg64::new(setup.seed).split_str("run");
    let (outcome, offset) = decide(setup, &mut rng);
    let monitor = match setup.fidelity {
        Fidelity::Fast => synthesize_monitor(setup.testcase, offset),
        Fidelity::Full => simulate_monitor(setup, offset),
    };
    let last_levels = setup
        .testcase
        .functions
        .iter()
        .map(|f| (f.resource, f.last_values_at(offset, 5)))
        .collect();
    RunRecord {
        client: setup.client_id.clone(),
        user: setup.user.id.clone(),
        testcase: setup.testcase.id.to_string(),
        task: setup.task.name().to_string(),
        skill: setup.user.skill_class(setup.task).name().to_string(),
        outcome,
        offset_secs: offset,
        last_levels,
        monitor,
    }
}

/// Fast-fidelity monitor: coarse utilization figures derived from the
/// commanded levels up to the feedback point.
fn synthesize_monitor(tc: &Testcase, offset: f64) -> MonitorSummary {
    let upto = |resource: Resource| -> (f64, f64) {
        match tc.function(resource) {
            Some(f) => {
                let n = ((offset * f.sample_rate_hz) as usize).clamp(1, f.values.len());
                let slice = &f.values[..n];
                let mean = slice.iter().sum::<f64>() / n as f64;
                let peak = slice.iter().cloned().fold(0.0, f64::max);
                (mean, peak)
            }
            None => (0.0, 0.0),
        }
    };
    let (cpu_mean, _) = upto(Resource::Cpu);
    let (_, mem_peak) = upto(Resource::Memory);
    let (disk_mean, _) = upto(Resource::Disk);
    MonitorSummary {
        cpu_util: (cpu_mean / (cpu_mean + 1.0) + 0.05).min(1.0),
        peak_mem_fraction: mem_peak.min(1.0),
        disk_busy: (disk_mean / (disk_mean + 0.2)).min(1.0),
        faults: 0,
        mean_latency_us: None,
    }
}

/// Full-fidelity monitor: plays the run on the simulated machine.
fn simulate_monitor(setup: &RunSetup<'_>, offset: f64) -> MonitorSummary {
    let mut m = Machine::study_machine(setup.seed);
    m.spawn("os", Box::new(OsBackground::new()));
    let fg = m.spawn(setup.task.name(), setup.task.model());
    m.run_until(WARMUP);

    let start = m.now();
    let set = spawn_exercisers(&mut m, setup.testcase);
    let cpu0 = m.metrics().cpu_busy_us;
    let disk0 = m.disk_stats().busy_us;
    let faults0 = m.mem_stats().faults;
    let lat0 = m.thread_stats(fg).latencies.len();

    // Step second by second, tracking peak memory, up to the feedback
    // point (or exhaustion).
    let end = start + secs(offset);
    let mut peak_mem = m.mem_resident();
    let mut t = start;
    while t < end {
        t = (t + SEC).min(end);
        m.run_until(t);
        peak_mem = peak_mem.max(m.mem_resident());
    }
    // The user pressed the hot-key (or the functions exhausted): stop the
    // exercisers immediately and release their resources.
    set.stop(&mut m);

    let elapsed = (m.now() - start).max(1);
    let class = setup.task.latency_class();
    let fg_stats = m.thread_stats(fg);
    let lat: Vec<u64> = fg_stats
        .latencies
        .iter()
        .skip(lat0)
        .filter(|s| s.class == class)
        .map(|s| s.latency_us)
        .collect();
    MonitorSummary {
        cpu_util: (m.metrics().cpu_busy_us - cpu0) as f64 / elapsed as f64,
        peak_mem_fraction: peak_mem as f64 / m.config().mem_pages as f64,
        disk_busy: (m.disk_stats().busy_us - disk0) as f64 / elapsed as f64,
        faults: m.mem_stats().faults - faults0,
        mean_latency_us: if lat.is_empty() {
            None
        } else {
            Some(lat.iter().sum::<u64>() as f64 / lat.len() as f64)
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::UserPopulation;
    use crate::user::{SelfRatings, SkillLevel};
    use std::collections::HashMap;
    use uucs_testcase::ExerciseSpec;

    fn fixed_user(thr: f64) -> UserProfile {
        let mut thresholds = HashMap::new();
        for c in &calibration::CELLS {
            thresholds.insert((c.task, c.resource), thr);
        }
        UserProfile {
            id: "t1".into(),
            ratings: SelfRatings::uniform(SkillLevel::Typical),
            thresholds,
            noise_propensity: 1.0,
            ramp_bonus_frac: 0.11,
            reaction_secs: 0.5,
        }
    }

    fn cpu_ramp(level: f64) -> Testcase {
        Testcase::single(
            "test-cpu-ramp",
            1.0,
            Resource::Cpu,
            ExerciseSpec::Ramp {
                level,
                duration: 120.0,
            },
        )
    }

    fn setup<'a>(
        user: &'a UserProfile,
        tc: &'a Testcase,
        fidelity: Fidelity,
        seed: u64,
    ) -> RunSetup<'a> {
        RunSetup {
            user,
            task: Task::Powerpoint,
            testcase: tc,
            style: RunStyle::infer(tc),
            seed,
            fidelity,
            client_id: "test-client".into(),
        }
    }

    #[test]
    fn low_threshold_discomforts_mid_ramp() {
        let user = fixed_user(1.0);
        let tc = cpu_ramp(2.0);
        let rec = execute_run(&setup(&user, &tc, Fidelity::Fast, 1));
        assert_eq!(rec.outcome, RunOutcome::Discomfort);
        // Ramp threshold = 1.0 -> crossing at ~60 s, plus a sub-second
        // reaction.
        assert!(
            rec.offset_secs > 58.0 && rec.offset_secs < 72.0,
            "offset {}",
            rec.offset_secs
        );
        assert_eq!(rec.task, "Powerpoint");
        assert_eq!(rec.user, "t1");
        let levels = &rec.last_levels[0].1;
        assert_eq!(levels.len(), 5);
        // The level at feedback is near the effective threshold.
        let at_feedback = rec.level_at_feedback(Resource::Cpu).unwrap();
        assert!(
            (0.98..1.3).contains(&at_feedback),
            "level {at_feedback}"
        );
    }

    #[test]
    fn high_threshold_exhausts() {
        let user = fixed_user(100.0);
        let tc = cpu_ramp(2.0);
        let rec = execute_run(&setup(&user, &tc, Fidelity::Fast, 2));
        assert_eq!(rec.outcome, RunOutcome::Exhausted);
        assert_eq!(rec.offset_secs, 120.0);
    }

    #[test]
    fn ramp_tolerates_more_than_step() {
        // The frog in the pot: identical user and peak level, but abrupt
        // exposure (step) objects below the ramp threshold.
        let user = fixed_user(2.1);
        let ramp = cpu_ramp(2.0);
        let step = Testcase::single(
            "test-cpu-step",
            1.0,
            Resource::Cpu,
            ExerciseSpec::Step {
                level: 2.0,
                duration: 120.0,
                start: 40.0,
            },
        );
        let r_ramp = execute_run(&setup(&user, &ramp, Fidelity::Fast, 3));
        let r_step = execute_run(&setup(&user, &step, Fidelity::Fast, 3));
        // Step threshold = 2.1 - 0.22 = 1.88 < 2.0 -> discomfort at ~40 s;
        // ramp threshold 2.1 > 2.0 peak -> never crossed.
        assert_eq!(r_step.outcome, RunOutcome::Discomfort);
        assert_eq!(r_ramp.outcome, RunOutcome::Exhausted);
    }

    #[test]
    fn blank_runs_noise_only_in_sensitive_tasks() {
        let pop = UserPopulation::generate(200, 77);
        let blank = Testcase::blank("test-blank", 1.0, 120.0);
        let mut quake_df = 0;
        let mut word_df = 0;
        for (i, u) in pop.users().iter().enumerate() {
            let mut s = setup(u, &blank, Fidelity::Fast, 1000 + i as u64);
            s.task = Task::Quake;
            if execute_run(&s).outcome == RunOutcome::Discomfort {
                quake_df += 1;
            }
            s.task = Task::Word;
            if execute_run(&s).outcome == RunOutcome::Discomfort {
                word_df += 1;
            }
        }
        assert_eq!(word_df, 0, "Word blank runs never discomfort");
        let frac = quake_df as f64 / 200.0;
        assert!(
            (frac - 0.30).abs() < 0.12,
            "Quake noise floor {frac} (expected ~0.30)"
        );
    }

    #[test]
    fn fast_and_full_agree_on_the_decision() {
        let user = fixed_user(1.0);
        let tc = cpu_ramp(2.0);
        let fast = execute_run(&setup(&user, &tc, Fidelity::Fast, 5));
        let full = execute_run(&setup(&user, &tc, Fidelity::Full, 5));
        assert_eq!(fast.outcome, full.outcome);
        assert_eq!(fast.offset_secs, full.offset_secs);
        assert_eq!(fast.last_levels, full.last_levels);
    }

    #[test]
    fn full_fidelity_records_real_monitoring() {
        let user = fixed_user(100.0); // exhaust: full 120 s of borrowing
        let tc = cpu_ramp(2.0);
        let rec = execute_run(&setup(&user, &tc, Fidelity::Full, 6));
        // A CPU ramp to 2.0 over 2 minutes keeps the machine busy well
        // above the foreground's own demand.
        assert!(rec.monitor.cpu_util > 0.5, "cpu {}", rec.monitor.cpu_util);
        // The foreground task (Powerpoint) recorded latencies.
        assert!(rec.monitor.mean_latency_us.is_some());
        // OS + Powerpoint working sets are resident.
        assert!(rec.monitor.peak_mem_fraction > 0.3);
    }

    #[test]
    fn full_fidelity_memory_run_faults_foreground() {
        let user = fixed_user(100.0);
        let tc = Testcase::single(
            "test-memory-ramp",
            1.0,
            Resource::Memory,
            ExerciseSpec::Ramp {
                level: 1.0,
                duration: 120.0,
            },
        );
        let mut s = setup(&user, &tc, Fidelity::Full, 7);
        s.task = Task::Quake;
        let rec = execute_run(&s);
        // Borrowing toward 100% of memory must evict and refault.
        assert!(rec.monitor.faults > 100, "faults {}", rec.monitor.faults);
        assert!(rec.monitor.peak_mem_fraction > 0.95);
    }

    #[test]
    fn multi_resource_testcase_crosses_on_the_earliest_resource() {
        // A combined CPU+disk testcase: feedback fires at the first
        // function to reach its threshold (the paper's run ends on any
        // discomfort, whatever resource caused it).
        let mut user = fixed_user(100.0);
        user.thresholds.insert((Task::Powerpoint, Resource::Cpu), 1.5);
        user.thresholds.insert((Task::Powerpoint, Resource::Disk), 2.0);
        let tc = Testcase::from_specs(
            "multi-both-ramp",
            1.0,
            &[
                (
                    Resource::Cpu,
                    ExerciseSpec::Ramp {
                        level: 2.0,
                        duration: 120.0,
                    },
                ),
                (
                    Resource::Disk,
                    ExerciseSpec::Ramp {
                        level: 8.0,
                        duration: 120.0,
                    },
                ),
            ],
        );
        let rec = execute_run(&setup(&user, &tc, Fidelity::Fast, 12));
        assert_eq!(rec.outcome, RunOutcome::Discomfort);
        // Disk ramps 4x faster: crossing 2.0 at 30 s beats CPU's 1.5 at
        // 90 s.
        assert!(
            rec.offset_secs > 29.0 && rec.offset_secs < 40.0,
            "offset {}",
            rec.offset_secs
        );
        // Both resources' last levels are recorded (§2.3: "each exercise
        // function").
        assert_eq!(rec.last_levels.len(), 2);
        assert!(rec.level_at_feedback(Resource::Disk).unwrap() >= 2.0);
    }

    #[test]
    fn determinism_across_calls() {
        let user = fixed_user(1.3);
        let tc = cpu_ramp(2.0);
        let a = execute_run(&setup(&user, &tc, Fidelity::Fast, 9));
        let b = execute_run(&setup(&user, &tc, Fidelity::Fast, 9));
        assert_eq!(a, b);
    }

    #[test]
    fn style_inference() {
        assert_eq!(RunStyle::infer(&cpu_ramp(1.0)), RunStyle::Ramp);
        let step = Testcase::single(
            "x-step",
            1.0,
            Resource::Cpu,
            ExerciseSpec::Step {
                level: 1.0,
                duration: 10.0,
                start: 0.0,
            },
        );
        assert_eq!(RunStyle::infer(&step), RunStyle::Step);
        let blank = Testcase::blank("b", 1.0, 10.0);
        assert_eq!(RunStyle::infer(&blank), RunStyle::Other);
    }
}
