//! Throttles — §5's "Advice to implementors" made executable.
//!
//! * [`ThrottleAdvisor`]: "Exploit our CDFs to set the throttle according
//!   to the percentage of users you are willing to affect" and "Know what
//!   the user is doing. Their context greatly affects the right throttle
//!   setting."
//! * [`FeedbackThrottle`]: "Consider using user feedback directly in your
//!   application" — the paper's closing future-work direction ("we are
//!   currently exploring how to use user feedback directly in the
//!   scheduling of these frameworks"). An AIMD controller that backs off
//!   multiplicatively on a discomfort click and creeps back up
//!   additively.

use std::collections::HashMap;
use uucs_stats::Ecdf;
use uucs_testcase::Resource;
use uucs_workloads::Task;

/// A CDF-driven throttle advisor.
///
/// ```
/// use uucs_comfort::ThrottleAdvisor;
/// use uucs_stats::Ecdf;
/// use uucs_testcase::Resource;
/// let mut advisor = ThrottleAdvisor::new();
/// // 20 observed discomfort levels 0.1..2.0 plus 30 exhausted runs.
/// let obs: Vec<f64> = (1..=20).map(|i| i as f64 * 0.1).collect();
/// advisor.set_aggregate(Resource::Cpu, Ecdf::new(obs, 30));
/// // Borrow while discomforting at most 10% of users:
/// let level = advisor.recommend(Resource::Cpu, 0.10).unwrap();
/// assert!((level - 0.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ThrottleAdvisor {
    /// Aggregated per-resource CDFs (Figures 10–12).
    aggregate: HashMap<Resource, Ecdf>,
    /// Context-specific CDFs (Figure 18) — used when the borrower knows
    /// what the user is doing.
    by_context: HashMap<(Task, Resource), Ecdf>,
}

impl ThrottleAdvisor {
    /// Creates an empty advisor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs the aggregate CDF for a resource.
    pub fn set_aggregate(&mut self, resource: Resource, ecdf: Ecdf) {
        self.aggregate.insert(resource, ecdf);
    }

    /// Installs a context-specific CDF.
    pub fn set_context(&mut self, task: Task, resource: Resource, ecdf: Ecdf) {
        self.by_context.insert((task, resource), ecdf);
    }

    /// The borrowing level that discomforts at most `acceptable` of
    /// users, aggregated over contexts. Returns `None` if no CDF is
    /// installed; returns the highest *explored* level when even it
    /// discomforts fewer than `acceptable` (borrow at least that much).
    pub fn recommend(&self, resource: Resource, acceptable: f64) -> Option<f64> {
        let e = self.aggregate.get(&resource)?;
        Some(Self::level_from(e, acceptable))
    }

    /// Context-aware recommendation; falls back to the aggregate if the
    /// context was never measured.
    pub fn recommend_for(&self, task: Task, resource: Resource, acceptable: f64) -> Option<f64> {
        match self.by_context.get(&(task, resource)) {
            Some(e) => Some(Self::level_from(e, acceptable)),
            None => self.recommend(resource, acceptable),
        }
    }

    fn level_from(e: &Ecdf, acceptable: f64) -> f64 {
        match e.quantile(acceptable) {
            // The level just below the one that tips past `acceptable`.
            Some(level) => level,
            // Even the deepest explored level discomforts < acceptable.
            None => e
                .observed()
                .last()
                .copied()
                .unwrap_or(0.0)
                .max(0.0),
        }
    }
}

/// An AIMD feedback throttle: borrow at `level`; on a discomfort click,
/// cut multiplicatively and hold off; otherwise creep up additively
/// toward `ceiling`.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedbackThrottle {
    level: f64,
    ceiling: f64,
    increase_per_step: f64,
    backoff: f64,
    /// Steps remaining in the post-click holdoff.
    holdoff: u32,
    holdoff_steps: u32,
    clicks: u64,
}

impl FeedbackThrottle {
    /// Creates a throttle starting at `start`, never exceeding `ceiling`,
    /// creeping up by `increase_per_step`, and multiplying by `backoff`
    /// (< 1) on each discomfort click followed by `holdoff_steps` frozen
    /// steps.
    pub fn new(
        start: f64,
        ceiling: f64,
        increase_per_step: f64,
        backoff: f64,
        holdoff_steps: u32,
    ) -> Self {
        assert!(start >= 0.0 && ceiling >= start);
        assert!(increase_per_step >= 0.0);
        assert!((0.0..1.0).contains(&backoff));
        FeedbackThrottle {
            level: start,
            ceiling,
            increase_per_step,
            backoff,
            holdoff: 0,
            holdoff_steps,
            clicks: 0,
        }
    }

    /// The current borrowing level.
    pub fn level(&self) -> f64 {
        self.level
    }

    /// Number of discomfort clicks absorbed.
    pub fn clicks(&self) -> u64 {
        self.clicks
    }

    /// Advances one control step without feedback: creep up (unless in
    /// holdoff).
    pub fn step(&mut self) -> f64 {
        if self.holdoff > 0 {
            self.holdoff -= 1;
        } else {
            self.level = (self.level + self.increase_per_step).min(self.ceiling);
        }
        self.level
    }

    /// Registers a discomfort click: multiplicative backoff + holdoff.
    pub fn on_discomfort(&mut self) -> f64 {
        self.clicks += 1;
        self.level *= self.backoff;
        self.holdoff = self.holdoff_steps;
        self.level
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cdf() -> Ecdf {
        // Observed discomfort levels 0.2..2.0, plus heavy censoring —
        // like a CPU CDF.
        let obs: Vec<f64> = (1..=20).map(|i| i as f64 * 0.1).collect();
        Ecdf::new(obs, 30)
    }

    #[test]
    fn recommend_reads_the_quantile() {
        let mut a = ThrottleAdvisor::new();
        a.set_aggregate(Resource::Cpu, cdf());
        // 50 runs total; 5% = ceil(2.5) = 3 observations -> 0.3.
        assert!((a.recommend(Resource::Cpu, 0.05).unwrap() - 0.3).abs() < 1e-9);
        // 20% = 10 observations -> 1.0.
        assert!((a.recommend(Resource::Cpu, 0.2).unwrap() - 1.0).abs() < 1e-9);
        assert_eq!(a.recommend(Resource::Disk, 0.05), None);
    }

    #[test]
    fn recommend_saturated_cdf_returns_max_explored() {
        let mut a = ThrottleAdvisor::new();
        // Only 2/50 ever discomforted: even the deepest level is fine for
        // a 10% budget.
        a.set_aggregate(Resource::Memory, Ecdf::new(vec![0.8, 0.9], 48));
        assert_eq!(a.recommend(Resource::Memory, 0.10), Some(0.9));
    }

    #[test]
    fn context_beats_aggregate() {
        let mut a = ThrottleAdvisor::new();
        a.set_aggregate(Resource::Cpu, cdf());
        a.set_context(
            Task::Quake,
            Resource::Cpu,
            Ecdf::new(vec![0.05, 0.1, 0.15, 0.2], 0),
        );
        // Quake players are far touchier than the aggregate.
        let q = a.recommend_for(Task::Quake, Resource::Cpu, 0.25).unwrap();
        let agg = a.recommend(Resource::Cpu, 0.25).unwrap();
        assert!(q < agg, "{q} vs {agg}");
        // Unmeasured context falls back.
        assert_eq!(
            a.recommend_for(Task::Word, Resource::Cpu, 0.25),
            Some(agg)
        );
    }

    #[test]
    fn feedback_throttle_aimd_dynamics() {
        let mut t = FeedbackThrottle::new(0.2, 2.0, 0.1, 0.5, 3);
        t.step();
        t.step();
        assert!((t.level() - 0.4).abs() < 1e-12);
        t.on_discomfort();
        assert!((t.level() - 0.2).abs() < 1e-12);
        // Holdoff: three frozen steps.
        t.step();
        t.step();
        t.step();
        assert!((t.level() - 0.2).abs() < 1e-12);
        t.step();
        assert!((t.level() - 0.3).abs() < 1e-12);
        assert_eq!(t.clicks(), 1);
    }

    #[test]
    fn feedback_throttle_respects_ceiling() {
        let mut t = FeedbackThrottle::new(0.0, 0.5, 0.2, 0.5, 0);
        for _ in 0..10 {
            t.step();
        }
        assert!((t.level() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn feedback_throttle_converges_below_user_threshold() {
        // Simulated user with threshold 1.0: clicks whenever the level
        // exceeds it. The throttle should hover near (and mostly below)
        // the threshold.
        let mut t = FeedbackThrottle::new(0.1, 5.0, 0.05, 0.6, 5);
        let mut above_time = 0;
        for step in 0..2000 {
            let level = t.step();
            if level > 1.0 {
                t.on_discomfort();
                above_time += 1;
            }
            let _ = step;
        }
        assert!(t.clicks() > 0);
        // The throttle spent almost all its time below the threshold.
        assert!(above_time < 200, "above {above_time} of 2000 steps");
        assert!(t.level() <= 1.1);
    }
}
