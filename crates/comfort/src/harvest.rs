//! Cycle stealing with comfort awareness — the application the paper's
//! introduction motivates.
//!
//! Grid systems face a choice the paper lays out in §1: run "only when
//! they are quite sure the user is away, when the screen saver has been
//! activated" (Condor, SETI@Home defaults), "run at a very low
//! priority", or borrow while the user works, throttled by comfort data.
//! This module implements all of them against the simulated machine so
//! the trade-off — cycles harvested versus foreground impact versus
//! discomfort clicks — can be measured (see `examples/cycle_stealing.rs`
//! and the `ablations` bench).

use crate::throttle::FeedbackThrottle;
use crate::user::UserProfile;
use std::cell::Cell;
use std::rc::Rc;
use uucs_sim::{Action, Ctx, Machine, Priority, SimTime, ThreadId, Workload, SEC};
use uucs_testcase::Resource;
use uucs_workloads::Task;

/// How the background job schedules itself.
#[derive(Debug, Clone)]
pub enum HarvestStrategy {
    /// Run only when the screensaver is on. During an active user session
    /// that means: not at all. (Condor / SETI@Home default, §1.)
    ScreensaverOnly,
    /// Run continuously at strictly low priority: consume only idle
    /// cycles, preempted instantly by the user's threads.
    LowPriority,
    /// Run at equal priority, throttled to a fixed borrowing level —
    /// the level a [`crate::throttle::ThrottleAdvisor`] recommends from
    /// the comfort CDFs.
    Throttled {
        /// The fixed CPU borrowing level (thread-equivalents).
        level: f64,
    },
    /// Equal priority with the feedback throttle: creep up, back off on
    /// every discomfort click (the paper's future-work direction).
    Feedback {
        /// The AIMD controller.
        throttle: FeedbackThrottle,
    },
}

/// What a harvesting session achieved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HarvestOutcome {
    /// Background CPU seconds harvested.
    pub harvested_cpu_secs: f64,
    /// Foreground latency during harvesting relative to the unloaded
    /// baseline (1.0 = unaffected). Note a large ratio of a tiny base
    /// can still be imperceptible — check `fg_latency_ms` too.
    pub fg_latency_ratio: f64,
    /// Mean absolute foreground latency during the session, milliseconds.
    pub fg_latency_ms: f64,
    /// Discomfort clicks the user made during the session.
    pub clicks: u64,
    /// Session length, seconds.
    pub session_secs: f64,
}

impl HarvestOutcome {
    /// Harvest rate: CPU-seconds gathered per wall second.
    pub fn harvest_rate(&self) -> f64 {
        self.harvested_cpu_secs / self.session_secs
    }
}

/// A background worker whose borrowing level is steered externally
/// through a shared cell (the stochastic-subinterval scheme of the CPU
/// exerciser, with a live level).
struct SteeredWorker {
    level: Rc<Cell<f64>>,
    index: u32,
    subinterval: SimTime,
}

impl Workload for SteeredWorker {
    fn name(&self) -> &str {
        "harvester"
    }

    fn next_action(&mut self, ctx: &mut Ctx<'_>) -> Action {
        let boundary = (ctx.now / self.subinterval + 1) * self.subinterval;
        let p = (self.level.get() - self.index as f64).clamp(0.0, 1.0);
        if ctx.rng.bernoulli(p) {
            Action::BusyUntil { until: boundary }
        } else {
            Action::SleepUntil { until: boundary }
        }
    }
}

/// A plain always-busy low-priority worker.
struct IdleSoaker;

impl Workload for IdleSoaker {
    fn name(&self) -> &str {
        "idle-soaker"
    }

    fn next_action(&mut self, _ctx: &mut Ctx<'_>) -> Action {
        Action::Compute { us: 1_000 }
    }
}

/// Maximum worker threads (borrowing levels beyond this are clamped).
const MAX_WORKERS: u32 = 4;

/// Runs one harvesting session: the user performs `task` while the
/// background job harvests under `strategy`. The user is the calibrated
/// `user` profile: a discomfort click fires when the commanded borrowing
/// level exceeds their step threshold (abrupt-exposure tolerance), with
/// a post-click truce before they can be annoyed again.
pub fn run_harvest(
    user: &UserProfile,
    task: Task,
    mut strategy: HarvestStrategy,
    session_secs: u64,
    seed: u64,
) -> HarvestOutcome {
    const WARMUP: SimTime = 30 * SEC;
    let mut machine = Machine::study_machine(seed);
    machine.spawn("os", Box::new(uucs_workloads::OsBackground::new()));
    let fg = machine.spawn(task.name(), task.model());
    machine.run_until(WARMUP);
    let class = task.latency_class();
    let baseline = machine.thread_stats(fg).mean_latency(class);
    let lat0 = machine.thread_stats(fg).latencies.len();

    // Stand up the workers.
    let level = Rc::new(Cell::new(0.0f64));
    let mut workers: Vec<ThreadId> = Vec::new();
    match &strategy {
        HarvestStrategy::ScreensaverOnly => {}
        HarvestStrategy::LowPriority => {
            workers.push(machine.spawn_with_priority(
                "soaker",
                Box::new(IdleSoaker),
                Priority::Low,
            ));
        }
        HarvestStrategy::Throttled { level: l } => {
            level.set(*l);
            for i in 0..(l.ceil() as u32).clamp(1, MAX_WORKERS) {
                workers.push(machine.spawn(
                    format!("worker{i}"),
                    Box::new(SteeredWorker {
                        level: level.clone(),
                        index: i,
                        subinterval: 100_000,
                    }),
                ));
            }
        }
        HarvestStrategy::Feedback { throttle } => {
            level.set(throttle.level());
            for i in 0..MAX_WORKERS {
                workers.push(machine.spawn(
                    format!("worker{i}"),
                    Box::new(SteeredWorker {
                        level: level.clone(),
                        index: i,
                        subinterval: 100_000,
                    }),
                ));
            }
        }
    }

    let cpu0: SimTime = workers
        .iter()
        .map(|&w| machine.thread_stats(w).cpu_us)
        .sum();
    let start = machine.now();
    let threshold = {
        let ceiling = crate::calibration::cell(task, Resource::Cpu).ramp_ceiling;
        user.step_threshold(task, Resource::Cpu, ceiling)
    };
    let mut clicks = 0u64;
    let mut truce_until: SimTime = 0;

    let mut t = start;
    while t < start + session_secs * SEC {
        t += SEC;
        machine.run_until(t);
        // The user clicks when the borrowing level exceeds their
        // abrupt-exposure tolerance (and they are not in the post-click
        // truce where the system just backed off).
        if level.get() > threshold && t >= truce_until {
            clicks += 1;
            truce_until = t + 20 * SEC;
            if let HarvestStrategy::Feedback { throttle } = &mut strategy {
                level.set(throttle.on_discomfort());
            }
        } else if let HarvestStrategy::Feedback { throttle } = &mut strategy {
            level.set(throttle.step());
        }
    }
    for &w in &workers {
        machine.kill(w);
    }

    let harvested: SimTime = workers
        .iter()
        .map(|&w| machine.thread_stats(w).cpu_us)
        .sum::<SimTime>()
        - cpu0;
    let session_lat: Vec<u64> = machine.thread_stats(fg).latencies[lat0..]
        .iter()
        .filter(|s| s.class == class)
        .map(|s| s.latency_us)
        .collect();
    let session_mean = if session_lat.is_empty() {
        0.0
    } else {
        session_lat.iter().sum::<u64>() as f64 / session_lat.len() as f64
    };
    let fg_latency_ratio = match baseline {
        Some(base) if base > 0.0 && session_mean > 0.0 => session_mean / base,
        _ => 1.0,
    };
    HarvestOutcome {
        harvested_cpu_secs: harvested as f64 / SEC as f64,
        fg_latency_ratio,
        fg_latency_ms: session_mean / 1_000.0,
        clicks,
        session_secs: session_secs as f64,
    }
}

/// What a fixed-level, single-resource harvesting session achieved —
/// §5's "borrow disk and memory aggressively, CPU less so", measurable.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceHarvestOutcome {
    /// The borrowed resource.
    pub resource: Resource,
    /// The commanded borrowing level.
    pub level: f64,
    /// Amount harvested, in `unit`s.
    pub harvested: f64,
    /// Unit of `harvested` (`"cpu-s"`, `"MiB written"`, `"MiB-s held"`).
    pub unit: &'static str,
    /// Fraction of the resource's standalone capacity actually captured.
    pub capacity_fraction: f64,
    /// Foreground latency vs baseline.
    pub fg_latency_ratio: f64,
    /// Whether the user's step threshold for this cell was exceeded (a
    /// click).
    pub clicked: bool,
}

/// A steered disk worker: per subinterval, I/O-busy with probability
/// given by the shared level (64 KiB synced writes back to back).
struct SteeredIoWorker {
    level: Rc<Cell<f64>>,
    index: u32,
    busy_until: Option<SimTime>,
}

impl Workload for SteeredIoWorker {
    fn name(&self) -> &str {
        "disk-harvester"
    }

    fn next_action(&mut self, ctx: &mut Ctx<'_>) -> Action {
        const SUB: SimTime = 100_000;
        if let Some(until) = self.busy_until {
            if ctx.now < until {
                return Action::DiskIo {
                    ops: 1,
                    bytes_per_op: 65_536,
                };
            }
            self.busy_until = None;
        }
        let boundary = (ctx.now / SUB + 1) * SUB;
        let p = (self.level.get() - self.index as f64).clamp(0.0, 1.0);
        if ctx.rng.bernoulli(p) {
            self.busy_until = Some(boundary);
            Action::DiskIo {
                ops: 1,
                bytes_per_op: 65_536,
            }
        } else {
            Action::SleepUntil { until: boundary }
        }
    }
}

/// A steered memory worker: holds the fraction of physical memory the
/// shared level commands, refreshed periodically.
struct SteeredMemWorker {
    level: Rc<Cell<f64>>,
    pool: u32,
    region: Option<uucs_sim::RegionId>,
    sleep_next: bool,
}

impl Workload for SteeredMemWorker {
    fn name(&self) -> &str {
        "memory-harvester"
    }

    fn next_action(&mut self, ctx: &mut Ctx<'_>) -> Action {
        const REFRESH: SimTime = 250_000;
        if self.sleep_next {
            self.sleep_next = false;
            return Action::SleepUntil {
                until: (ctx.now / REFRESH + 1) * REFRESH,
            };
        }
        let region = *self
            .region
            .get_or_insert_with(|| ctx.alloc_region(self.pool, false));
        let target = (self.level.get().clamp(0.0, 1.0) * self.pool as f64) as u32;
        self.sleep_next = true;
        if target == 0 {
            return Action::SleepUntil {
                until: (ctx.now / REFRESH + 1) * REFRESH,
            };
        }
        Action::Touch {
            region,
            count: target,
            pattern: uucs_sim::TouchPattern::Prefix,
        }
    }
}

/// Runs a fixed-level single-resource harvesting session (the §5 table's
/// machinery): borrow `resource` at `level` while the user does `task`,
/// and measure what was captured versus the foreground impact.
pub fn run_resource_harvest(
    user: &UserProfile,
    task: Task,
    resource: Resource,
    level: f64,
    session_secs: u64,
    seed: u64,
) -> ResourceHarvestOutcome {
    const WARMUP: SimTime = 30 * SEC;
    let mut machine = Machine::study_machine(seed);
    machine.spawn("os", Box::new(uucs_workloads::OsBackground::new()));
    let fg = machine.spawn(task.name(), task.model());
    machine.run_until(WARMUP);
    let class = task.latency_class();
    let baseline = machine.thread_stats(fg).mean_latency(class);
    let lat0 = machine.thread_stats(fg).latencies.len();
    let mem_pages = machine.config().mem_pages;

    let shared = Rc::new(Cell::new(level));
    let mut workers: Vec<ThreadId> = Vec::new();
    match resource {
        Resource::Cpu => {
            for i in 0..(level.ceil() as u32).clamp(1, MAX_WORKERS) {
                workers.push(machine.spawn(
                    format!("cpu-w{i}"),
                    Box::new(SteeredWorker {
                        level: shared.clone(),
                        index: i,
                        subinterval: 100_000,
                    }),
                ));
            }
        }
        Resource::Disk => {
            for i in 0..(level.ceil() as u32).clamp(1, MAX_WORKERS) {
                workers.push(machine.spawn(
                    format!("disk-w{i}"),
                    Box::new(SteeredIoWorker {
                        level: shared.clone(),
                        index: i,
                        busy_until: None,
                    }),
                ));
            }
        }
        Resource::Memory => {
            workers.push(machine.spawn(
                "mem-w",
                Box::new(SteeredMemWorker {
                    level: shared.clone(),
                    pool: mem_pages,
                    region: None,
                    sleep_next: false,
                }),
            ));
        }
        Resource::Network => panic!("network harvesting is unstudied, as in the paper"),
    }

    let start = machine.now();
    let cpu0: SimTime = workers.iter().map(|&w| machine.thread_stats(w).cpu_us).sum();
    let bytes0: u64 = workers
        .iter()
        .map(|&w| machine.thread_stats(w).disk_bytes)
        .sum();
    // Memory harvest integrates resident pages over time.
    let mut mem_page_secs = 0.0f64;
    let mut t = start;
    while t < start + session_secs * SEC {
        t += SEC;
        machine.run_until(t);
        if resource == Resource::Memory {
            if let Some(&w) = workers.first() {
                let _ = w;
                // Worker residency = machine resident minus the baseline
                // (OS + fg) — approximate via total minus what warmup held.
                mem_page_secs += machine.mem_resident() as f64;
            }
        }
    }
    let elapsed_secs = session_secs as f64;
    let ceiling = crate::calibration::cell(task, resource).ramp_ceiling;
    let clicked = level > user.step_threshold(task, resource, ceiling);
    for &w in &workers {
        machine.kill(w);
    }

    let (harvested, unit, capacity_fraction) = match resource {
        Resource::Cpu => {
            let cpu: SimTime = workers
                .iter()
                .map(|&w| machine.thread_stats(w).cpu_us)
                .sum::<SimTime>()
                - cpu0;
            let secs = cpu as f64 / SEC as f64;
            (secs, "cpu-s", secs / elapsed_secs)
        }
        Resource::Disk => {
            let bytes: u64 = workers
                .iter()
                .map(|&w| machine.thread_stats(w).disk_bytes)
                .sum::<u64>()
                - bytes0;
            let mib = bytes as f64 / (1 << 20) as f64;
            // Standalone capacity: one 64 KiB synced write per ~14.1 ms.
            let per_op = machine.config().disk.service_us(1, 65_536, true) as f64;
            let max_mib = elapsed_secs * 1e6 / per_op * 65_536.0 / (1 << 20) as f64;
            (mib, "MiB written", mib / max_mib)
        }
        Resource::Memory => {
            let page_mib = machine.config().page_size as f64 / (1 << 20) as f64;
            let mib_secs = mem_page_secs * page_mib;
            let max = mem_pages as f64 * page_mib * elapsed_secs;
            (mib_secs, "MiB-s held", mib_secs / max)
        }
        Resource::Network => unreachable!(),
    };
    let session_lat: Vec<u64> = machine.thread_stats(fg).latencies[lat0..]
        .iter()
        .filter(|s| s.class == class)
        .map(|s| s.latency_us)
        .collect();
    let fg_latency_ratio = match (baseline, session_lat.is_empty()) {
        (Some(base), false) if base > 0.0 => {
            (session_lat.iter().sum::<u64>() as f64 / session_lat.len() as f64) / base
        }
        _ => 1.0,
    };
    ResourceHarvestOutcome {
        resource,
        level,
        harvested,
        unit,
        capacity_fraction,
        fg_latency_ratio,
        clicked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::UserPopulation;

    fn user() -> UserProfile {
        UserPopulation::generate(1, 70).users()[0].clone()
    }

    #[test]
    fn screensaver_strategy_harvests_nothing() {
        let o = run_harvest(&user(), Task::Word, HarvestStrategy::ScreensaverOnly, 60, 1);
        assert_eq!(o.harvested_cpu_secs, 0.0);
        assert_eq!(o.clicks, 0);
        assert!((o.fg_latency_ratio - 1.0).abs() < 0.25);
    }

    #[test]
    fn low_priority_harvests_idle_without_impact() {
        let o = run_harvest(&user(), Task::Word, HarvestStrategy::LowPriority, 120, 2);
        // Word leaves most of the CPU idle: the soaker gets nearly all of
        // it, the typist none the wiser.
        assert!(o.harvest_rate() > 0.85, "rate {}", o.harvest_rate());
        // The soaker cannot delay the typist (strict priority); any
        // drift from exactly 1.0 is warmup-vs-session sampling noise in
        // the keystroke mix.
        assert!(o.fg_latency_ratio < 1.35, "ratio {}", o.fg_latency_ratio);
        assert_eq!(o.clicks, 0);
    }

    #[test]
    fn low_priority_yields_to_quake() {
        let o = run_harvest(&user(), Task::Quake, HarvestStrategy::LowPriority, 60, 3);
        // Quake consumes every spare cycle itself: almost nothing left.
        assert!(o.harvest_rate() < 0.05, "rate {}", o.harvest_rate());
        assert!(o.fg_latency_ratio < 1.05, "ratio {}", o.fg_latency_ratio);
    }

    #[test]
    fn throttled_borrowing_slows_foreground_proportionally() {
        let o = run_harvest(
            &user(),
            Task::Powerpoint,
            HarvestStrategy::Throttled { level: 1.0 },
            120,
            4,
        );
        // Contention 1.0: draw operations roughly double.
        assert!(o.harvest_rate() > 0.4, "rate {}", o.harvest_rate());
        assert!(
            o.fg_latency_ratio > 1.5 && o.fg_latency_ratio < 3.0,
            "ratio {}",
            o.fg_latency_ratio
        );
    }

    #[test]
    fn feedback_throttle_limits_clicks_and_still_harvests() {
        let mut u = user();
        // Give the user a known moderate tolerance.
        u.thresholds.insert((Task::Word, Resource::Cpu), 2.0);
        u.ramp_bonus_frac = 0.0;
        let o = run_harvest(
            &u,
            Task::Word,
            HarvestStrategy::Feedback {
                // Gentle controller: creep 0.02/s, halve on a click, then
                // hold 40 s — one probe of the limit every ~90 s.
                throttle: FeedbackThrottle::new(0.1, 6.0, 0.02, 0.5, 40),
            },
            600,
            5,
        );
        assert!(o.clicks >= 1, "the throttle must probe the limit once");
        assert!(o.clicks <= 12, "clicks {}", o.clicks);
        // It still harvests a meaningful fraction.
        assert!(o.harvest_rate() > 0.3, "rate {}", o.harvest_rate());
    }

    #[test]
    fn disk_harvest_writes_at_the_commanded_share() {
        let o = run_resource_harvest(&user(), Task::Word, Resource::Disk, 1.0, 120, 6);
        assert_eq!(o.unit, "MiB written");
        // Level 1.0 against a near-idle disk: most of the standalone
        // bandwidth is captured.
        assert!(
            o.capacity_fraction > 0.6,
            "fraction {}",
            o.capacity_fraction
        );
        assert!(o.harvested > 100.0, "MiB {}", o.harvested);
    }

    #[test]
    fn memory_harvest_holds_the_fraction() {
        let o = run_resource_harvest(&user(), Task::Word, Resource::Memory, 0.3, 60, 7);
        assert_eq!(o.unit, "MiB-s held");
        // The integral includes OS + Word residency, so the fraction sits
        // above the commanded 0.3 but well below 1.
        assert!(
            o.capacity_fraction > 0.3 && o.capacity_fraction < 0.95,
            "fraction {}",
            o.capacity_fraction
        );
    }

    #[test]
    fn cpu_resource_harvest_matches_generic_path() {
        let o = run_resource_harvest(&user(), Task::Word, Resource::Cpu, 0.5, 60, 8);
        assert_eq!(o.unit, "cpu-s");
        assert!(
            (o.capacity_fraction - 0.5).abs() < 0.1,
            "fraction {}",
            o.capacity_fraction
        );
    }

    #[test]
    fn click_detection_uses_step_threshold() {
        let mut u = user();
        u.thresholds.insert((Task::Word, Resource::Cpu), 1.0);
        u.ramp_bonus_frac = 0.0;
        let quiet = run_resource_harvest(&u, Task::Word, Resource::Cpu, 0.5, 30, 9);
        let loud = run_resource_harvest(&u, Task::Word, Resource::Cpu, 1.5, 30, 9);
        assert!(!quiet.clicked);
        assert!(loud.clicked);
    }

    #[test]
    fn outcome_rate_arithmetic() {
        let o = HarvestOutcome {
            harvested_cpu_secs: 30.0,
            fg_latency_ratio: 1.2,
            fg_latency_ms: 5.0,
            clicks: 1,
            session_secs: 60.0,
        };
        assert!((o.harvest_rate() - 0.5).abs() < 1e-12);
    }
}
