//! User profiles — the synthetic stand-ins for the study's 33 subjects.

use std::collections::HashMap;
use std::fmt;
use uucs_testcase::Resource;
use uucs_workloads::Task;

/// A self-rated skill level (§3.3.4: users rated themselves "Power User",
/// "Typical User", or "Beginner" in each dimension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SkillLevel {
    /// Beginner.
    Beginner,
    /// Typical user.
    Typical,
    /// Power user.
    Power,
}

impl SkillLevel {
    /// All levels, ascending.
    pub const ALL: [SkillLevel; 3] = [SkillLevel::Beginner, SkillLevel::Typical, SkillLevel::Power];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            SkillLevel::Beginner => "Beginner",
            SkillLevel::Typical => "Typical",
            SkillLevel::Power => "Power",
        }
    }
}

impl fmt::Display for SkillLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The questionnaire dimensions (§3.1: PC use, Windows, Word, Powerpoint,
/// Internet Explorer, and Quake).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RatingDim {
    /// General PC usage.
    Pc,
    /// Windows.
    Windows,
    /// Microsoft Word.
    Word,
    /// Microsoft Powerpoint.
    Powerpoint,
    /// Internet Explorer.
    Ie,
    /// Quake.
    Quake,
}

impl RatingDim {
    /// All six dimensions.
    pub const ALL: [RatingDim; 6] = [
        RatingDim::Pc,
        RatingDim::Windows,
        RatingDim::Word,
        RatingDim::Powerpoint,
        RatingDim::Ie,
        RatingDim::Quake,
    ];

    /// The rating dimension that describes skill *at a task* — the
    /// cohort axis the model service aggregates on (§4.4 correlates
    /// discomfort with the task-specific self-rating, not the general
    /// PC/Windows ones).
    pub fn for_task(task: Task) -> RatingDim {
        match task {
            Task::Word => RatingDim::Word,
            Task::Powerpoint => RatingDim::Powerpoint,
            Task::Ie => RatingDim::Ie,
            Task::Quake => RatingDim::Quake,
        }
    }

    /// Display name matching the paper's Figure 17 ("PC", "Windows",
    /// "Word", "Powerpoint", "IE", "Quake").
    pub fn name(self) -> &'static str {
        match self {
            RatingDim::Pc => "PC",
            RatingDim::Windows => "Windows",
            RatingDim::Word => "Word",
            RatingDim::Powerpoint => "Powerpoint",
            RatingDim::Ie => "IE",
            RatingDim::Quake => "Quake",
        }
    }
}

impl fmt::Display for RatingDim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A user's six self-ratings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelfRatings {
    ratings: [SkillLevel; 6],
}

impl SelfRatings {
    /// Builds ratings in [`RatingDim::ALL`] order.
    pub fn new(ratings: [SkillLevel; 6]) -> Self {
        SelfRatings { ratings }
    }

    /// Uniform ratings (useful for tests).
    pub fn uniform(level: SkillLevel) -> Self {
        SelfRatings {
            ratings: [level; 6],
        }
    }

    /// The rating in one dimension.
    pub fn get(&self, dim: RatingDim) -> SkillLevel {
        let idx = RatingDim::ALL.iter().position(|d| *d == dim).unwrap();
        self.ratings[idx]
    }
}

/// A synthetic user: everything the study's questionnaire plus observed
/// behavior determines.
#[derive(Debug, Clone)]
pub struct UserProfile {
    /// Subject identifier (e.g. `u07`).
    pub id: String,
    /// Self-rated skill levels.
    pub ratings: SelfRatings,
    /// Discomfort thresholds in *commanded contention* space, per
    /// (task, resource) cell, for ramp-style exposure (the paper's CDFs —
    /// the calibration source — come from ramp testcases).
    pub thresholds: HashMap<(Task, Resource), f64>,
    /// Multiplier on the task noise floor (how trigger-happy this user is
    /// on blank runs).
    pub noise_propensity: f64,
    /// Additive ramp-adaptation bonus as a fraction of the cell's ramp
    /// ceiling (the "frog in the pot" effect, §3.3.5): under a slow ramp
    /// the user tolerates `threshold + bonus_frac * ceiling`.
    pub ramp_bonus_frac: f64,
    /// Mean reaction delay between perceiving discomfort and pressing the
    /// hot-key, seconds.
    pub reaction_secs: f64,
}

impl UserProfile {
    /// The ramp-exposure threshold for a cell. Cells never calibrated
    /// (e.g. a task/resource pair the study did not run) default to
    /// infinity — never discomforted.
    pub fn threshold(&self, task: Task, resource: Resource) -> f64 {
        self.thresholds
            .get(&(task, resource))
            .copied()
            .unwrap_or(f64::INFINITY)
    }

    /// The effective threshold under abrupt (step) exposure: without the
    /// slow adaptation of a ramp, the user objects at a lower level —
    /// the "frog in the pot" effect, inverted from the calibrated ramp
    /// thresholds.
    pub fn step_threshold(&self, task: Task, resource: Resource, ceiling: f64) -> f64 {
        (self.threshold(task, resource) - self.ramp_bonus_frac * ceiling).max(1e-6)
    }

    /// The user's self-rated skill class for a task — the cohort key the
    /// model service aggregates discomfort models on, stamped into every
    /// run record this user produces.
    pub fn skill_class(&self, task: Task) -> SkillLevel {
        self.ratings.get(RatingDim::for_task(task))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratings_lookup() {
        let r = SelfRatings::new([
            SkillLevel::Power,    // Pc
            SkillLevel::Typical,  // Windows
            SkillLevel::Beginner, // Word
            SkillLevel::Typical,  // Powerpoint
            SkillLevel::Power,    // Ie
            SkillLevel::Beginner, // Quake
        ]);
        assert_eq!(r.get(RatingDim::Pc), SkillLevel::Power);
        assert_eq!(r.get(RatingDim::Word), SkillLevel::Beginner);
        assert_eq!(r.get(RatingDim::Quake), SkillLevel::Beginner);
    }

    #[test]
    fn task_skill_class_uses_the_task_dimension() {
        let u = UserProfile {
            id: "u1".into(),
            ratings: SelfRatings::new([
                SkillLevel::Power,    // Pc
                SkillLevel::Power,    // Windows
                SkillLevel::Beginner, // Word
                SkillLevel::Typical,  // Powerpoint
                SkillLevel::Power,    // Ie
                SkillLevel::Beginner, // Quake
            ]),
            thresholds: HashMap::new(),
            noise_propensity: 1.0,
            ramp_bonus_frac: 0.0,
            reaction_secs: 1.0,
        };
        assert_eq!(u.skill_class(Task::Word), SkillLevel::Beginner);
        assert_eq!(u.skill_class(Task::Ie), SkillLevel::Power);
        assert_eq!(RatingDim::for_task(Task::Quake), RatingDim::Quake);
    }

    #[test]
    fn missing_threshold_is_infinite() {
        let u = UserProfile {
            id: "u1".into(),
            ratings: SelfRatings::uniform(SkillLevel::Typical),
            thresholds: HashMap::new(),
            noise_propensity: 1.0,
            ramp_bonus_frac: 0.1,
            reaction_secs: 1.0,
        };
        assert!(u.threshold(Task::Word, Resource::Cpu).is_infinite());
    }

    #[test]
    fn step_threshold_subtracts_bonus() {
        let mut thresholds = HashMap::new();
        thresholds.insert((Task::Powerpoint, Resource::Cpu), 1.0);
        let u = UserProfile {
            id: "u2".into(),
            ratings: SelfRatings::uniform(SkillLevel::Typical),
            thresholds,
            noise_propensity: 1.0,
            ramp_bonus_frac: 0.11,
            reaction_secs: 1.0,
        };
        let ramp = u.threshold(Task::Powerpoint, Resource::Cpu);
        let step = u.step_threshold(Task::Powerpoint, Resource::Cpu, 2.0);
        assert!((ramp - step - 0.22).abs() < 1e-12);
        // The floor keeps step thresholds positive.
        let tiny = UserProfile {
            ramp_bonus_frac: 10.0,
            ..u.clone()
        };
        assert!(tiny.step_threshold(Task::Powerpoint, Resource::Cpu, 2.0) > 0.0);
    }

    #[test]
    fn skill_level_ordering() {
        assert!(SkillLevel::Beginner < SkillLevel::Typical);
        assert!(SkillLevel::Typical < SkillLevel::Power);
    }
}
