//! Run traces: the per-second load measurements the UUCS client stores
//! with every run (§2.3: "CPU, memory and Disk load measurements for
//! entire duration of the testcase").
//!
//! [`execute_run_traced`] is [`crate::run::execute_run`] at full
//! fidelity plus a one-sample-per-second time series of commanded
//! contention, achieved utilization, memory residency, disk business,
//! faults, and foreground latency — enough to redraw Figure 4 with
//! *measured* curves next to the commanded ones.

use crate::run::RunSetup;
use std::fmt::Write as _;
use uucs_exercisers::playback::spawn_exercisers;
use uucs_protocol::{MonitorSummary, RunRecord};
use uucs_sim::{secs, Machine, SimTime, SEC};
use uucs_testcase::Resource;
use uucs_workloads::OsBackground;

/// One second of monitoring data.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSample {
    /// Seconds into the testcase.
    pub t_secs: f64,
    /// Commanded contention per exercised resource at this instant.
    pub commanded: Vec<(Resource, f64)>,
    /// CPU utilization over the second.
    pub cpu_util: f64,
    /// Resident memory fraction at the sample instant.
    pub mem_fraction: f64,
    /// Disk busy fraction over the second.
    pub disk_busy: f64,
    /// Page faults during the second.
    pub faults: u64,
    /// Mean foreground latency over the second (µs), if any events
    /// completed.
    pub fg_latency_us: Option<f64>,
}

/// The full time series of one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunTrace {
    /// One sample per second, in order.
    pub samples: Vec<TraceSample>,
}

impl RunTrace {
    /// Serializes the trace as CSV (long form, one row per second).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "t_secs,cmd_cpu,cmd_memory,cmd_disk,cpu_util,mem_fraction,disk_busy,faults,fg_latency_us\n",
        );
        for s in &self.samples {
            let cmd = |r: Resource| {
                s.commanded
                    .iter()
                    .find(|(res, _)| *res == r)
                    .map(|(_, v)| format!("{v:.4}"))
                    .unwrap_or_default()
            };
            writeln!(
                out,
                "{:.1},{},{},{},{:.4},{:.4},{:.4},{},{}",
                s.t_secs,
                cmd(Resource::Cpu),
                cmd(Resource::Memory),
                cmd(Resource::Disk),
                s.cpu_util,
                s.mem_fraction,
                s.disk_busy,
                s.faults,
                s.fg_latency_us
                    .map(|l| format!("{l:.0}"))
                    .unwrap_or_default()
            )
            .unwrap();
        }
        out
    }

    /// A Figure 4-style ASCII chart of one series: commanded level for
    /// `resource` (`*`) against achieved CPU utilization (`#`), per
    /// second, scaled to the chart height.
    pub fn render_ascii(&self, resource: Resource, height: usize) -> String {
        if self.samples.is_empty() {
            return "(empty trace)\n".to_string();
        }
        let width = self.samples.len();
        let max_cmd = self
            .samples
            .iter()
            .flat_map(|s| s.commanded.iter().filter(|(r, _)| *r == resource))
            .map(|(_, v)| *v)
            .fold(0.0f64, f64::max)
            .max(1.0);
        let mut grid = vec![vec![b' '; width]; height];
        for (col, s) in self.samples.iter().enumerate() {
            let cmd = s
                .commanded
                .iter()
                .find(|(r, _)| *r == resource)
                .map(|(_, v)| *v)
                .unwrap_or(0.0);
            let cmd_row = (((1.0 - cmd / max_cmd) * (height - 1) as f64).round() as usize)
                .min(height - 1);
            let util_row = (((1.0 - s.cpu_util.min(1.0)) * (height - 1) as f64).round() as usize)
                .min(height - 1);
            grid[util_row][col] = b'#';
            grid[cmd_row][col] = if cmd_row == util_row { b'@' } else { b'*' };
        }
        let mut out = format!(
            "commanded {resource} (*, scale 0..{max_cmd:.1}) vs achieved CPU utilization (#, scale 0..1); @ = both\n"
        );
        for row in grid {
            out.push('|');
            out.push_str(std::str::from_utf8(&row).unwrap());
            out.push('\n');
        }
        out.push('+');
        out.push_str(&"-".repeat(width));
        out.push('\n');
        out
    }
}

/// Executes a run at full fidelity, returning the record *and* the
/// per-second monitoring trace.
pub fn execute_run_traced(setup: &RunSetup<'_>) -> (RunRecord, RunTrace) {
    // Decide exactly as `execute_run` would (same RNG stream).
    let base = crate::run::execute_run(&RunSetup {
        fidelity: crate::run::Fidelity::Fast,
        ..setup.clone()
    });
    let offset = base.offset_secs;

    const WARMUP: SimTime = 20 * SEC;
    let mut m = Machine::study_machine(setup.seed);
    m.spawn("os", Box::new(OsBackground::new()));
    let fg = m.spawn(setup.task.name(), setup.task.model());
    m.run_until(WARMUP);

    let start = m.now();
    let set = spawn_exercisers(&mut m, setup.testcase);
    let end = start + secs(offset);
    let mut trace = RunTrace::default();
    let mut prev_cpu = m.metrics().cpu_busy_us;
    let mut prev_disk = m.disk_stats().busy_us;
    let mut prev_faults = m.mem_stats().faults;
    let mut prev_lat_idx = m.thread_stats(fg).latencies.len();
    let mut peak_mem = m.mem_resident();
    let class = setup.task.latency_class();

    let mut t = start;
    while t < end {
        t = (t + SEC).min(end);
        m.run_until(t);
        peak_mem = peak_mem.max(m.mem_resident());
        let t_off = (t - start) as f64 / SEC as f64;
        let commanded: Vec<(Resource, f64)> = setup
            .testcase
            .functions
            .iter()
            .map(|f| (f.resource, setup.testcase.contention_at(f.resource, t_off)))
            .collect();
        let lat_all = &m.thread_stats(fg).latencies;
        let recent: Vec<u64> = lat_all[prev_lat_idx..]
            .iter()
            .filter(|s| s.class == class)
            .map(|s| s.latency_us)
            .collect();
        prev_lat_idx = lat_all.len();
        trace.samples.push(TraceSample {
            t_secs: t_off,
            commanded,
            cpu_util: (m.metrics().cpu_busy_us - prev_cpu) as f64 / SEC as f64,
            mem_fraction: m.mem_resident() as f64 / m.config().mem_pages as f64,
            disk_busy: (m.disk_stats().busy_us - prev_disk) as f64 / SEC as f64,
            faults: m.mem_stats().faults - prev_faults,
            fg_latency_us: if recent.is_empty() {
                None
            } else {
                Some(recent.iter().sum::<u64>() as f64 / recent.len() as f64)
            },
        });
        prev_cpu = m.metrics().cpu_busy_us;
        prev_disk = m.disk_stats().busy_us;
        prev_faults = m.mem_stats().faults;
    }
    set.stop(&mut m);

    // Aggregate the trace into the stored monitor summary so record and
    // trace agree by construction.
    let n = trace.samples.len().max(1) as f64;
    let lat: Vec<f64> = trace
        .samples
        .iter()
        .filter_map(|s| s.fg_latency_us)
        .collect();
    let monitor = MonitorSummary {
        cpu_util: trace.samples.iter().map(|s| s.cpu_util).sum::<f64>() / n,
        peak_mem_fraction: peak_mem as f64 / m.config().mem_pages as f64,
        disk_busy: trace.samples.iter().map(|s| s.disk_busy).sum::<f64>() / n,
        faults: trace.samples.iter().map(|s| s.faults).sum(),
        mean_latency_us: if lat.is_empty() {
            None
        } else {
            Some(lat.iter().sum::<f64>() / lat.len() as f64)
        },
    };
    (RunRecord { monitor, ..base }, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::UserPopulation;
    use crate::run::{Fidelity, RunStyle};
    use uucs_testcase::{ExerciseSpec, Testcase};
    use uucs_workloads::Task;

    fn traced(level: f64, thr_user_seed: u64) -> (RunRecord, RunTrace) {
        let pop = UserPopulation::generate(1, thr_user_seed);
        let tc = Testcase::single(
            "trace-cpu-ramp",
            1.0,
            Resource::Cpu,
            ExerciseSpec::Ramp {
                level,
                duration: 60.0,
            },
        );
        execute_run_traced(&RunSetup {
            user: &pop.users()[0],
            task: Task::Powerpoint,
            testcase: &tc,
            style: RunStyle::Ramp,
            seed: 77,
            fidelity: Fidelity::Full,
            client_id: "trace".into(),
        })
    }

    #[test]
    fn trace_covers_the_run_second_by_second() {
        let (record, trace) = traced(2.0, 80);
        assert_eq!(trace.samples.len(), record.offset_secs.ceil() as usize);
        // Time is strictly increasing and ends at the offset.
        for w in trace.samples.windows(2) {
            assert!(w[1].t_secs > w[0].t_secs);
        }
        assert!((trace.samples.last().unwrap().t_secs - record.offset_secs).abs() < 1.0);
    }

    #[test]
    fn commanded_series_follows_the_ramp() {
        let (_, trace) = traced(2.0, 81);
        let cmd_at = |i: usize| {
            trace.samples[i]
                .commanded
                .iter()
                .find(|(r, _)| *r == Resource::Cpu)
                .unwrap()
                .1
        };
        // The ramp rises monotonically.
        let early = cmd_at(3);
        let later = cmd_at(trace.samples.len() - 2);
        assert!(later > early, "{early} -> {later}");
    }

    #[test]
    fn achieved_utilization_tracks_commanded_cpu() {
        let (_, trace) = traced(2.0, 82);
        // Late in the ramp (contention > 1) the machine is saturated.
        let late = &trace.samples[trace.samples.len() - 3];
        assert!(late.cpu_util > 0.9, "util {}", late.cpu_util);
    }

    #[test]
    fn summary_agrees_with_trace() {
        let (record, trace) = traced(1.5, 83);
        let mean_util =
            trace.samples.iter().map(|s| s.cpu_util).sum::<f64>() / trace.samples.len() as f64;
        assert!((record.monitor.cpu_util - mean_util).abs() < 1e-9);
        let total_faults: u64 = trace.samples.iter().map(|s| s.faults).sum();
        assert_eq!(record.monitor.faults, total_faults);
    }

    #[test]
    fn csv_is_rectangular() {
        let (_, trace) = traced(1.0, 84);
        let csv = trace.to_csv();
        let mut lines = csv.lines();
        let cols = lines.next().unwrap().split(',').count();
        for line in lines {
            assert_eq!(line.split(',').count(), cols);
        }
    }

    #[test]
    fn ascii_render_shows_both_series() {
        let (_, trace) = traced(2.0, 85);
        let s = trace.render_ascii(Resource::Cpu, 10);
        assert!(s.contains('*'));
        assert!(s.contains('#'));
        assert!(s.lines().count() >= 12);
        // Empty trace is handled.
        assert_eq!(RunTrace::default().render_ascii(Resource::Cpu, 5), "(empty trace)\n");
    }
}
