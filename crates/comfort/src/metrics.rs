//! Comfort metrics (§3.3): discomfort CDFs and the three derived
//! metrics — `f_d`, `c_p` (percentile levels like `c_0.05`), and `c_a`
//! (mean discomfort level with a 95 % confidence interval) — plus the
//! Figure 13 sensitivity classification.

use std::fmt;
use uucs_protocol::{RunOutcome, RunRecord};
use uucs_stats::{Ecdf, Summary};
use uucs_testcase::Resource;

/// Builds the discomfort ECDF for a set of runs over one resource:
/// discomforted runs contribute the commanded contention level at the
/// feedback point; exhausted runs are right-censored.
pub fn discomfort_ecdf<'a>(
    runs: impl IntoIterator<Item = &'a RunRecord>,
    resource: Resource,
) -> Ecdf {
    let mut observed = Vec::new();
    let mut censored = 0;
    for r in runs {
        match r.outcome {
            RunOutcome::Discomfort => {
                if let Some(level) = r.level_at_feedback(resource) {
                    observed.push(level);
                }
            }
            RunOutcome::Exhausted => censored += 1,
        }
    }
    Ecdf::new(observed, censored)
}

/// The per-cell metric bundle of Figures 14–16.
#[derive(Debug, Clone, PartialEq)]
pub struct CellMetrics {
    /// The discomfort CDF.
    pub ecdf: Ecdf,
    /// Fraction of runs ending in discomfort (Figure 14).
    pub f_d: Option<f64>,
    /// `c_0.05` (Figure 15); `None` when fewer than 5 % of runs ever
    /// became discomforted (the paper's `*`).
    pub c_05: Option<f64>,
    /// Mean discomfort level (Figure 16); `None` with no observations.
    pub c_a: Option<f64>,
    /// 95 % confidence interval on `c_a`; `None` with fewer than two
    /// observations.
    pub c_a_ci: Option<(f64, f64)>,
}

impl CellMetrics {
    /// Computes the bundle from runs.
    pub fn from_runs<'a>(
        runs: impl IntoIterator<Item = &'a RunRecord>,
        resource: Resource,
    ) -> CellMetrics {
        let ecdf = discomfort_ecdf(runs, resource);
        let f_d = ecdf.f_d();
        let c_05 = ecdf.quantile(0.05);
        let c_a = ecdf.mean_discomfort_level();
        let c_a_ci = if ecdf.discomfort_count() >= 2 {
            Summary::from_slice(ecdf.observed()).confidence_interval(0.95)
        } else {
            None
        };
        CellMetrics {
            ecdf,
            f_d,
            c_05,
            c_a,
            c_a_ci,
        }
    }
}

/// Figure 13's qualitative sensitivity classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sensitivity {
    /// Low.
    Low,
    /// Medium.
    Medium,
    /// High.
    High,
}

impl Sensitivity {
    /// One-letter code as printed in Figure 13.
    pub fn code(self) -> &'static str {
        match self {
            Sensitivity::Low => "L",
            Sensitivity::Medium => "M",
            Sensitivity::High => "H",
        }
    }
}

impl fmt::Display for Sensitivity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// Classifies a cell's sensitivity from `f_d` and `c_a`, per resource.
///
/// The paper describes Figure 13 as "overall judgements from the study of
/// the CDFs"; this heuristic encodes those judgements — it reproduces the
/// published table exactly when fed the published Figures 14/16 values:
///
/// * **CPU** — what matters is how *high* contention can go before
///   discomfort: `c_a > 3` (or almost no discomfort) is Low, `c_a < 1`
///   is High.
/// * **Memory** — discomfort frequency dominates: `f_d < 0.15` is Low,
///   and only a majority-discomfort cell (or near-zero `c_a`) is High.
/// * **Disk** — frequency again: `f_d ≥ 0.5` is High, `f_d < 0.25` Low.
pub fn sensitivity_class(resource: Resource, f_d: Option<f64>, c_a: Option<f64>) -> Sensitivity {
    let f_d = f_d.unwrap_or(0.0);
    match resource {
        Resource::Cpu => {
            let ca = c_a.unwrap_or(f64::INFINITY);
            if ca > 3.0 || f_d < 0.15 {
                Sensitivity::Low
            } else if ca < 1.0 {
                Sensitivity::High
            } else {
                Sensitivity::Medium
            }
        }
        Resource::Memory => {
            let ca = c_a.unwrap_or(f64::INFINITY);
            if f_d < 0.15 {
                Sensitivity::Low
            } else if f_d >= 0.7 || ca < 0.15 {
                Sensitivity::High
            } else {
                Sensitivity::Medium
            }
        }
        Resource::Disk | Resource::Network => {
            if f_d >= 0.5 {
                Sensitivity::High
            } else if f_d < 0.23 {
                Sensitivity::Low
            } else {
                Sensitivity::Medium
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::CELLS;
    use uucs_protocol::MonitorSummary;

    fn rec(outcome: RunOutcome, level: f64, resource: Resource) -> RunRecord {
        RunRecord {
            client: "c".into(),
            user: "u".into(),
            testcase: "t".into(),
            task: "Word".into(),
            skill: "Typical".into(),
            outcome,
            offset_secs: 10.0,
            last_levels: vec![(resource, vec![level - 0.1, level])],
            monitor: MonitorSummary::default(),
        }
    }

    #[test]
    fn ecdf_from_runs() {
        let runs = vec![
            rec(RunOutcome::Discomfort, 1.0, Resource::Cpu),
            rec(RunOutcome::Discomfort, 2.0, Resource::Cpu),
            rec(RunOutcome::Exhausted, 7.0, Resource::Cpu),
            rec(RunOutcome::Exhausted, 7.0, Resource::Cpu),
        ];
        let e = discomfort_ecdf(&runs, Resource::Cpu);
        assert_eq!(e.discomfort_count(), 2);
        assert_eq!(e.exhausted_count(), 2);
        assert_eq!(e.f_d(), Some(0.5));
    }

    #[test]
    fn cell_metrics_bundle() {
        let mut runs: Vec<RunRecord> = (1..=20)
            .map(|i| rec(RunOutcome::Discomfort, i as f64 * 0.1, Resource::Disk))
            .collect();
        runs.push(rec(RunOutcome::Exhausted, 7.0, Resource::Disk));
        let m = CellMetrics::from_runs(&runs, Resource::Disk);
        assert!((m.f_d.unwrap() - 20.0 / 21.0).abs() < 1e-12);
        // 5% of 21 runs = ceil(1.05) = 2 observations -> 0.2.
        assert_eq!(m.c_05, Some(0.2));
        assert!((m.c_a.unwrap() - 1.05).abs() < 1e-9);
        let (lo, hi) = m.c_a_ci.unwrap();
        assert!(lo < 1.05 && 1.05 < hi);
    }

    #[test]
    fn classification_reproduces_figure_13_exactly() {
        // Feed the published Fig 14 f_d and Fig 16 c_a values; expect the
        // published Fig 13 letters.
        let expected = [
            ("Word", "L", "L", "L"),
            ("Powerpoint", "M", "L", "L"),
            ("IE", "M", "M", "H"),
            ("Quake", "H", "M", "M"),
        ];
        for (i, cell3) in CELLS.chunks(3).enumerate() {
            let (task, cpu, mem, disk) = expected[i];
            assert_eq!(cell3[0].task.name(), task);
            let got_cpu =
                sensitivity_class(Resource::Cpu, Some(cell3[0].f_d), cell3[0].c_a.map(|c| c.0));
            let got_mem = sensitivity_class(
                Resource::Memory,
                Some(cell3[1].f_d),
                cell3[1].c_a.map(|c| c.0),
            );
            let got_disk =
                sensitivity_class(Resource::Disk, Some(cell3[2].f_d), cell3[2].c_a.map(|c| c.0));
            assert_eq!(got_cpu.code(), cpu, "{task} CPU");
            assert_eq!(got_mem.code(), mem, "{task} Memory");
            assert_eq!(got_disk.code(), disk, "{task} Disk");
        }
    }

    #[test]
    fn classification_totals_match_figure_13() {
        // Totals row: CPU M, Memory L, Disk L (from the Total rows of
        // Figs 14/16: CPU (0.86, 1.47), Mem (0.21, 0.58), Disk (0.33, 2.97)).
        // Memory total f_d = 0.21 > 0.15 would be Medium by the cell rule;
        // the paper judges the total Low. The totals are judgements over
        // the aggregated CDFs; we classify totals with the same rule and
        // note the memory total is borderline L/M (see EXPERIMENTS.md).
        assert_eq!(
            sensitivity_class(Resource::Cpu, Some(0.86), Some(1.47)),
            Sensitivity::Medium
        );
        assert_eq!(
            sensitivity_class(Resource::Disk, Some(0.33), Some(2.97)),
            Sensitivity::Medium
        );
    }

    #[test]
    fn empty_cell_metrics() {
        let m = CellMetrics::from_runs(&[], Resource::Cpu);
        assert_eq!(m.f_d, None);
        assert_eq!(m.c_05, None);
        assert_eq!(m.c_a, None);
        assert_eq!(m.c_a_ci, None);
    }
}
