//! Deterministic synthetic user populations.
//!
//! [`UserPopulation::generate`] draws `n` users whose per-cell thresholds
//! follow the calibrated lognormal fits, adjusted by skill effects whose
//! population expectation is normalized back to 1 so skill structure does
//! not shift the aggregate CDFs away from the published fit targets.

use crate::calibration::{self, SKILL_EFFECTS};
use crate::user::{RatingDim, SelfRatings, SkillLevel, UserProfile};
use std::collections::HashMap;
use uucs_stats::Pcg64;
use uucs_testcase::Resource;
use uucs_workloads::Task;

/// Probabilities of (Beginner, Typical, Power) for general computing
/// dimensions — the sample was "primarily graduate students and
/// undergraduates from the engineering departments" (§3.1).
const GENERAL_DIST: [f64; 3] = [0.10, 0.55, 0.35];

/// Quake skill is more spread out among engineering students.
const QUAKE_DIST: [f64; 3] = [0.40, 0.35, 0.25];

fn draw_level(rng: &mut Pcg64, dist: [f64; 3]) -> SkillLevel {
    let x = rng.f64();
    if x < dist[0] {
        SkillLevel::Beginner
    } else if x < dist[0] + dist[1] {
        SkillLevel::Typical
    } else {
        SkillLevel::Power
    }
}

fn dist_for(dim: RatingDim) -> [f64; 3] {
    if dim == RatingDim::Quake {
        QUAKE_DIST
    } else {
        GENERAL_DIST
    }
}

/// The combined skill multiplier a user's ratings impose on one cell.
fn skill_multiplier(ratings: &SelfRatings, task: Task, resource: Resource) -> f64 {
    SKILL_EFFECTS
        .iter()
        .filter(|e| e.task == task && e.resource == resource)
        .map(|e| match ratings.get(e.dimension) {
            SkillLevel::Power => e.power_mult,
            SkillLevel::Typical => 1.0,
            SkillLevel::Beginner => e.beginner_mult,
        })
        .product()
}

/// The population's multiplier groups for a cell: every combination of
/// ratings that affects it, with its probability weight and combined
/// multiplier.
fn multiplier_groups(task: Task, resource: Resource) -> Vec<(f64, f64)> {
    let effects: Vec<_> = SKILL_EFFECTS
        .iter()
        .filter(|e| e.task == task && e.resource == resource)
        .collect();
    let mut groups = vec![(1.0f64, 1.0f64)];
    for e in effects {
        let d = dist_for(e.dimension);
        let options = [
            (d[0], e.beginner_mult),
            (d[1], 1.0),
            (d[2], e.power_mult),
        ];
        let mut next = Vec::with_capacity(groups.len() * 3);
        for &(w, m) in &groups {
            for &(wo, mo) in &options {
                next.push((w * wo, m * mo));
            }
        }
        groups = next;
    }
    groups
}

/// Solves for the *base* lognormal `(mu, sigma)` such that the skill-
/// multiplied mixture `sum_g w_g * LogN(mu + ln m_g, sigma)` passes
/// through the cell's two published quantile points. Without skill
/// effects this reduces to the plain calibrated fit. Falls back to the
/// plain fit if the cell has no usable quantile targets.
fn mixture_base_fit(c: &calibration::CellStats) -> uucs_stats::fit::Lognormal {
    let plain = calibration::threshold_fit(c);
    let (Some(c05), true) = (c.c_05, c.f_d > 0.051) else {
        return plain;
    };
    let groups = multiplier_groups(c.task, c.resource);
    if groups.len() == 1 {
        return plain;
    }
    let mixture_cdf = |mu: f64, sigma: f64, x: f64| -> f64 {
        groups
            .iter()
            .map(|&(w, m)| w * uucs_stats::special::normal_cdf((x.ln() - m.ln() - mu) / sigma))
            .sum()
    };
    // Nested bisection: for each sigma, pin mu so F(c05) = 0.05 (F is
    // decreasing in mu); then adjust sigma so F(ceiling) = f_d (with the
    // low quantile pinned, F(ceiling) decreases as sigma grows).
    let solve_mu = |sigma: f64| -> f64 {
        let (mut lo, mut hi) = (c05.ln() - 20.0 * sigma - 10.0, c05.ln() + 20.0 * sigma + 10.0);
        for _ in 0..100 {
            let mid = 0.5 * (lo + hi);
            if mixture_cdf(mid, sigma, c05) > 0.05 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    };
    let (mut slo, mut shi) = (1e-3, 8.0);
    for _ in 0..100 {
        let mid = 0.5 * (slo + shi);
        let mu = solve_mu(mid);
        if mixture_cdf(mu, mid, c.ramp_ceiling) > c.f_d {
            slo = mid;
        } else {
            shi = mid;
        }
    }
    let sigma = 0.5 * (slo + shi);
    uucs_stats::fit::Lognormal {
        mu: solve_mu(sigma),
        sigma,
    }
}

/// A deterministic population of synthetic users.
#[derive(Debug, Clone)]
pub struct UserPopulation {
    users: Vec<UserProfile>,
}

impl UserPopulation {
    /// Generates `n` users from a seed. The same `(n, seed)` always yields
    /// the same population; individual users are independent (adding a
    /// user never perturbs the others).
    pub fn generate(n: usize, seed: u64) -> Self {
        let root = Pcg64::new(seed).split_str("population");
        // Per-cell base fits solved against the skill-multiplied mixture,
        // so the *population* CDF passes through the published points.
        let base_fits: Vec<uucs_stats::fit::Lognormal> =
            calibration::CELLS.iter().map(mixture_base_fit).collect();
        let users = (0..n)
            .map(|i| {
                let mut rng = root.split(i as u64);
                let ratings = SelfRatings::new([
                    draw_level(&mut rng, dist_for(RatingDim::Pc)),
                    draw_level(&mut rng, dist_for(RatingDim::Windows)),
                    draw_level(&mut rng, dist_for(RatingDim::Word)),
                    draw_level(&mut rng, dist_for(RatingDim::Powerpoint)),
                    draw_level(&mut rng, dist_for(RatingDim::Ie)),
                    draw_level(&mut rng, dist_for(RatingDim::Quake)),
                ]);
                let mut thresholds = HashMap::new();
                for (c, fit) in calibration::CELLS.iter().zip(&base_fits) {
                    let base = fit.sample(&mut rng);
                    let mult = skill_multiplier(&ratings, c.task, c.resource);
                    thresholds.insert((c.task, c.resource), base * mult);
                }
                UserProfile {
                    id: format!("u{i:02}"),
                    ratings,
                    thresholds,
                    noise_propensity: rng.lognormal(0.0, 0.5),
                    ramp_bonus_frac: rng
                        .normal(calibration::RAMP_BONUS_FRAC_MEAN, 0.035)
                        .max(0.0),
                    reaction_secs: rng.lognormal(0.18, 0.45),
                }
            })
            .collect();
        UserPopulation { users }
    }

    /// The study's population: 33 subjects (§3.1).
    pub fn study_population(seed: u64) -> Self {
        Self::generate(33, seed)
    }

    /// The users.
    pub fn users(&self) -> &[UserProfile] {
        &self.users
    }

    /// Number of users.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// Users whose rating in `dim` equals `level`.
    pub fn with_rating(&self, dim: RatingDim, level: SkillLevel) -> Vec<&UserProfile> {
        self.users
            .iter()
            .filter(|u| u.ratings.get(dim) == level)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_independent() {
        let a = UserPopulation::generate(10, 42);
        let b = UserPopulation::generate(10, 42);
        for (x, y) in a.users().iter().zip(b.users()) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.thresholds, y.thresholds);
            assert_eq!(x.ratings, y.ratings);
        }
        // Growing the population preserves existing users.
        let c = UserPopulation::generate(20, 42);
        for (x, y) in a.users().iter().zip(c.users()) {
            assert_eq!(x.thresholds, y.thresholds);
        }
    }

    #[test]
    fn study_population_is_33() {
        assert_eq!(UserPopulation::study_population(1).len(), 33);
    }

    #[test]
    fn thresholds_follow_calibrated_cdf() {
        // With many users, the fraction below the published c_05 is ~5%
        // and below the ceiling is ~f_d, per cell.
        let pop = UserPopulation::generate(4000, 7);
        for c in &calibration::CELLS {
            let Some(c05) = c.c_05 else { continue };
            if c.f_d <= 0.051 {
                continue;
            }
            let thresholds: Vec<f64> = pop
                .users()
                .iter()
                .map(|u| u.threshold(c.task, c.resource))
                .collect();
            let below_c05 =
                thresholds.iter().filter(|&&t| t <= c05).count() as f64 / thresholds.len() as f64;
            let below_ceiling = thresholds.iter().filter(|&&t| t <= c.ramp_ceiling).count() as f64
                / thresholds.len() as f64;
            assert!(
                (below_c05 - 0.05).abs() < 0.025,
                "{}-{}: P(T<=c05) = {below_c05}",
                c.task,
                c.resource
            );
            assert!(
                (below_ceiling - c.f_d).abs() < 0.05,
                "{}-{}: P(T<=cap) = {below_ceiling} vs f_d {}",
                c.task,
                c.resource,
                c.f_d
            );
        }
    }

    #[test]
    fn word_memory_never_discomforts() {
        let pop = UserPopulation::generate(2000, 8);
        let below = pop
            .users()
            .iter()
            .filter(|u| u.threshold(Task::Word, Resource::Memory) <= 1.0)
            .count();
        assert!(below <= 4, "{below} of 2000 below the ceiling");
    }

    #[test]
    fn power_quake_users_are_less_tolerant() {
        let pop = UserPopulation::generate(3000, 9);
        let mean = |us: &[&UserProfile]| {
            us.iter()
                .map(|u| u.threshold(Task::Quake, Resource::Cpu))
                .sum::<f64>()
                / us.len() as f64
        };
        let power = mean(&pop.with_rating(RatingDim::Quake, SkillLevel::Power));
        let typical = mean(&pop.with_rating(RatingDim::Quake, SkillLevel::Typical));
        let beginner = mean(&pop.with_rating(RatingDim::Quake, SkillLevel::Beginner));
        assert!(power < typical, "power {power} vs typical {typical}");
        assert!(typical < beginner, "typical {typical} vs beginner {beginner}");
    }

    #[test]
    fn skill_normalization_keeps_aggregate_centered() {
        // The skill structure must not shift the aggregate: the overall
        // fraction below the ceiling still matches f_d for Quake/CPU.
        let pop = UserPopulation::generate(4000, 10);
        let c = calibration::cell(Task::Quake, Resource::Cpu);
        let below = pop
            .users()
            .iter()
            .filter(|u| u.threshold(Task::Quake, Resource::Cpu) <= c.ramp_ceiling)
            .count() as f64
            / pop.len() as f64;
        assert!((below - c.f_d).abs() < 0.05, "below {below}");
    }

    #[test]
    fn ramp_bonus_and_reaction_are_positive() {
        let pop = UserPopulation::generate(100, 11);
        for u in pop.users() {
            assert!(u.ramp_bonus_frac >= 0.0);
            assert!(u.reaction_secs > 0.0 && u.reaction_secs < 30.0);
            assert!(u.noise_propensity > 0.0);
        }
    }
}
