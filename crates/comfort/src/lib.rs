//! The core contribution: measuring and understanding user comfort with
//! resource borrowing.
//!
//! This crate ties the substrates together into the paper's measurement
//! pipeline and provides the pieces human subjects played in the original
//! study:
//!
//! * [`user`] — user profiles: per-(task, resource) discomfort
//!   thresholds, self-rated skill levels, reaction delays, the blank-run
//!   noise propensity, and the ramp-adaptation ("frog in the pot") bonus.
//! * [`calibration`] — the paper's published per-cell statistics
//!   (Figures 8, 9, 14, 15, 16, 17) as the fit targets, and the lognormal
//!   threshold fits derived from them. Human responses cannot be
//!   regenerated from code; the calibrated population preserves the
//!   shapes the paper reports, which is the reproducible content.
//! * [`population`] — deterministic synthetic user populations.
//! * [`run`] — the run engine: executes (user × task × testcase) on the
//!   simulated machine with real exercisers and monitoring, producing the
//!   [`uucs_protocol::RunRecord`]s the client uploads.
//! * [`metrics`] — the paper's comfort metrics: discomfort CDFs, `f_d`,
//!   `c_p` (e.g. `c_0.05`), `c_a` with confidence intervals, and the
//!   Figure 13 sensitivity classification.
//! * [`harvest`] — comfort-aware cycle stealing: the screensaver-only,
//!   low-priority, CDF-throttled, and feedback-throttled strategies of
//!   §1/§5, measurable against each other on the simulated machine.
//! * [`perception`] — a perception-driven user model that reacts to
//!   *measured* latency and jitter instead of commanded contention,
//!   validating the calibrated model from interactivity physics alone.
//! * [`throttle`] — §5's advice made executable: a CDF-driven throttle
//!   advisor, plus the feedback-driven throttle controller the paper
//!   lists as future work.
//! * [`trace`] — per-second load traces of full-fidelity runs, the §2.3
//!   monitoring series the client stores with each result.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod calibration;
pub mod harvest;
pub mod metrics;
pub mod perception;
pub mod population;
pub mod run;
pub mod throttle;
pub mod trace;
pub mod user;

pub use calibration::CellStats;
pub use harvest::{
    run_harvest, run_resource_harvest, HarvestOutcome, HarvestStrategy, ResourceHarvestOutcome,
};
pub use perception::{
    execute_perception_run, execute_perception_run_at_speed, execute_perception_run_configured,
    PerceptionProfile,
};
pub use metrics::{CellMetrics, Sensitivity};
pub use population::UserPopulation;
pub use run::{execute_run, Fidelity, RunSetup, RunStyle};
pub use throttle::{FeedbackThrottle, ThrottleAdvisor};
pub use trace::{execute_run_traced, RunTrace, TraceSample};
pub use user::{RatingDim, SelfRatings, SkillLevel, UserProfile};
