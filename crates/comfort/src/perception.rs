//! A perception-based user model — the paper's missing link, built on
//! the simulator.
//!
//! §1 notes that "a mapping between resource borrowing and interactivity
//! metrics like system latency or jitter is difficult to obtain", which
//! is why the paper measures the end-to-end relationship directly. With
//! a simulated machine we *can* build the mapping: this module models a
//! user who reacts to what they actually experience — the foreground
//! task's latency stretching past a personal tolerance (and, for frame-
//! rate tasks, jitter) — rather than to the commanded contention level.
//!
//! This model serves as a *validation* of the calibrated threshold
//! model: running the study with perception-driven users regenerates the
//! paper's CPU and disk structure (Quake most CPU-sensitive, Word
//! tolerant everywhere, IE disk-sensitive) from pure interactivity
//! physics, with no per-cell calibration at all. The `ablations` bench
//! prints the comparison.
//!
//! **Memory column**: under the default region-recency eviction the
//! per-task memory ordering does not emerge sharply. Switching the
//! machine to page-granular second-chance eviction
//! ([`uucs_sim::mem::EvictionPolicy::SecondChance`], via
//! [`execute_perception_run_configured`]) restores the paper's Figure 14
//! memory ordering from pure physics: Quake perceives a memory ramp
//! first, then IE, then Word — see the `ablation/eviction` bench.

use crate::run::{RunSetup, RunStyle};
use uucs_exercisers::playback::spawn_exercisers;
use uucs_protocol::{MonitorSummary, RunOutcome, RunRecord};
use uucs_sim::{secs, Machine, SimTime, ThreadId, SEC};
use uucs_stats::Pcg64;
use uucs_workloads::Task;

/// How a perception-driven user tolerates interactivity degradation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerceptionProfile {
    /// Click when recent latency exceeds `tolerance_ratio` × the
    /// unloaded baseline ...
    pub tolerance_ratio: f64,
    /// ... but never while recent latency is still below this absolute
    /// floor (µs) — imperceptibly fast is imperceptibly fast, however
    /// large the ratio.
    pub latency_floor_us: f64,
    /// For frame-rate tasks: also click when frame jitter exceeds this
    /// multiple of baseline jitter (plus a small absolute floor).
    pub jitter_ratio: f64,
    /// Degradation must persist this many consecutive seconds before the
    /// user reaches for the hot-key.
    pub patience_secs: u32,
}

impl PerceptionProfile {
    /// Draws a profile from a user-specific RNG stream: tolerance around
    /// 2× (lognormal), floors around common HCI perceptibility limits.
    pub fn sample(rng: &mut Pcg64) -> Self {
        PerceptionProfile {
            tolerance_ratio: rng.lognormal(0.8, 0.35).max(1.2),
            latency_floor_us: rng.uniform(80_000.0, 160_000.0),
            jitter_ratio: rng.lognormal(1.3, 0.4).max(1.5),
            patience_secs: rng.range_inclusive(2, 6) as u32,
        }
    }
}

/// Latency baseline measured during the warmup (acclimatization) phase.
#[derive(Debug, Clone, Copy)]
struct Baseline {
    mean_us: f64,
    jitter_us: f64,
}

fn window_stats(
    machine: &Machine,
    fg: ThreadId,
    class: &str,
    from: SimTime,
) -> Option<(f64, f64, usize)> {
    let lat: Vec<f64> = machine
        .thread_stats(fg)
        .latencies
        .iter()
        .filter(|s| s.class == class && s.at >= from)
        .map(|s| s.latency_us as f64)
        .collect();
    if lat.is_empty() {
        return None;
    }
    let n = lat.len();
    let mean = lat.iter().sum::<f64>() / n as f64;
    let var = lat.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
    Some((mean, var.sqrt(), n))
}

/// Executes a run with a perception-driven user: the testcase plays on
/// the simulated machine and the user clicks when the foreground task's
/// *measured* latency (or jitter, for Quake) degrades beyond their
/// tolerance for longer than their patience.
///
/// The `setup.user`'s calibrated thresholds are ignored; only its id and
/// seed matter, plus the [`PerceptionProfile`].
pub fn execute_perception_run(
    setup: &RunSetup<'_>,
    profile: &PerceptionProfile,
) -> RunRecord {
    execute_perception_run_at_speed(setup, profile, 1.0)
}

/// As [`execute_perception_run`], on a host `speed` times the study
/// machine — the paper's question 6 ("How does the level depend on the
/// raw power of the host?"), which its Internet study was collecting
/// data for. See `examples/host_power.rs` for the predicted answer.
pub fn execute_perception_run_at_speed(
    setup: &RunSetup<'_>,
    profile: &PerceptionProfile,
    speed: f64,
) -> RunRecord {
    execute_perception_run_configured(
        setup,
        profile,
        uucs_sim::MachineConfig {
            speed,
            seed: setup.seed,
            ..uucs_sim::MachineConfig::default()
        },
    )
}

/// As [`execute_perception_run`] on a machine with an explicit
/// configuration (seed is overridden by the setup's seed) — used by the
/// eviction-policy ablation.
pub fn execute_perception_run_configured(
    setup: &RunSetup<'_>,
    profile: &PerceptionProfile,
    config: uucs_sim::MachineConfig,
) -> RunRecord {
    const WARMUP: SimTime = 40 * SEC;
    const WINDOW: SimTime = 5 * SEC;

    let mut machine = Machine::new(uucs_sim::MachineConfig {
        seed: setup.seed,
        ..config
    });
    machine.spawn("os", Box::new(uucs_workloads::OsBackground::new()));
    let fg = machine.spawn(setup.task.name(), setup.task.model());
    machine.run_until(WARMUP);

    let class = setup.task.latency_class();
    let baseline = window_stats(&machine, fg, class, 0).map(|(mean, jitter, _)| Baseline {
        mean_us: mean,
        jitter_us: jitter.max(500.0),
    });

    let start = machine.now();
    let set = spawn_exercisers(&mut machine, setup.testcase);
    let duration = secs(setup.testcase.duration());
    let cpu0 = machine.metrics().cpu_busy_us;
    let disk0 = machine.disk_stats().busy_us;
    let faults0 = machine.mem_stats().faults;

    let mut consecutive_bad = 0u32;
    let mut peak_mem = machine.mem_resident();
    let mut outcome = RunOutcome::Exhausted;
    let mut offset_us = duration;

    let mut t = start;
    while t < start + duration {
        t += SEC;
        machine.run_until(t);
        peak_mem = peak_mem.max(machine.mem_resident());
        let Some(base) = baseline else { continue };
        let Some((mean, jitter, n)) = window_stats(&machine, fg, class, t.saturating_sub(WINDOW))
        else {
            // The task produced no interactive events in the window —
            // for a frame loop that itself means a severe stall, but the
            // sparse-event tasks (IE page loads) are simply between
            // events. Treat as severe only for Quake.
            if setup.task == Task::Quake {
                consecutive_bad += 1;
            }
            if setup.task == Task::Quake && consecutive_bad >= profile.patience_secs {
                outcome = RunOutcome::Discomfort;
                offset_us = t - start;
                break;
            }
            continue;
        };
        let latency_bad =
            mean > base.mean_us * profile.tolerance_ratio && mean > profile.latency_floor_us;
        // Jitter alone does not trigger: a lone 100 ms stall in an
        // otherwise fluid window spikes the deviation without the player
        // perceiving sustained degradation. Require the mean frame time
        // to be visibly elevated as well.
        let jitter_bad = setup.task == Task::Quake
            && n >= 5
            && mean > base.mean_us * 1.25
            && jitter > base.jitter_us * profile.jitter_ratio
            && jitter > 4_000.0;
        if latency_bad || jitter_bad {
            consecutive_bad += 1;
        } else {
            consecutive_bad = 0;
        }
        if consecutive_bad >= profile.patience_secs {
            outcome = RunOutcome::Discomfort;
            offset_us = t - start;
            break;
        }
    }
    set.stop(&mut machine);

    let elapsed = (machine.now() - start).max(1);
    let offset = offset_us as f64 / SEC as f64;
    let last_levels = setup
        .testcase
        .functions
        .iter()
        .map(|f| (f.resource, f.last_values_at(offset, 5)))
        .collect();
    let lat: Vec<u64> = machine
        .thread_stats(fg)
        .latencies
        .iter()
        .filter(|s| s.class == class && s.at >= start)
        .map(|s| s.latency_us)
        .collect();
    RunRecord {
        client: setup.client_id.clone(),
        user: setup.user.id.clone(),
        testcase: setup.testcase.id.to_string(),
        task: setup.task.name().to_string(),
        skill: setup.user.skill_class(setup.task).name().to_string(),
        outcome,
        offset_secs: offset,
        last_levels,
        monitor: MonitorSummary {
            cpu_util: (machine.metrics().cpu_busy_us - cpu0) as f64 / elapsed as f64,
            peak_mem_fraction: peak_mem as f64 / machine.config().mem_pages as f64,
            disk_busy: (machine.disk_stats().busy_us - disk0) as f64 / elapsed as f64,
            faults: machine.mem_stats().faults - faults0,
            mean_latency_us: if lat.is_empty() {
                None
            } else {
                Some(lat.iter().sum::<u64>() as f64 / lat.len() as f64)
            },
        },
    }
}

/// Convenience: a [`RunSetup`]-shaped perception run over a ramp of the
/// given cell, for validation sweeps.
pub fn perception_ramp_run(
    user: &crate::user::UserProfile,
    profile: &PerceptionProfile,
    task: Task,
    resource: uucs_testcase::Resource,
    seed: u64,
) -> RunRecord {
    let cell = crate::calibration::cell(task, resource);
    let tc = uucs_testcase::Testcase::single(
        format!("percept-{}-{}-ramp", task.name().to_lowercase(), resource),
        1.0,
        resource,
        uucs_testcase::ExerciseSpec::Ramp {
            level: cell.ramp_ceiling,
            duration: 120.0,
        },
    );
    execute_perception_run(
        &RunSetup {
            user,
            task,
            testcase: &tc,
            style: RunStyle::Ramp,
            seed,
            fidelity: crate::run::Fidelity::Full,
            client_id: "perception".into(),
        },
        profile,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::UserPopulation;
    use uucs_testcase::{ExerciseSpec, Resource, Testcase};

    fn profile(tolerance: f64, patience: u32) -> PerceptionProfile {
        PerceptionProfile {
            tolerance_ratio: tolerance,
            latency_floor_us: 100_000.0,
            jitter_ratio: 3.0,
            patience_secs: patience,
        }
    }

    fn setup<'a>(
        user: &'a crate::user::UserProfile,
        tc: &'a Testcase,
        task: Task,
        seed: u64,
    ) -> RunSetup<'a> {
        RunSetup {
            user,
            task,
            testcase: tc,
            style: RunStyle::Ramp,
            seed,
            fidelity: crate::run::Fidelity::Full,
            client_id: "ptest".into(),
        }
    }

    #[test]
    fn quake_cpu_ramp_discomforts_by_perception() {
        let pop = UserPopulation::generate(1, 60);
        let tc = Testcase::single(
            "p-cpu-ramp",
            1.0,
            Resource::Cpu,
            ExerciseSpec::Ramp {
                level: 1.3,
                duration: 120.0,
            },
        );
        let rec = execute_perception_run(
            &setup(&pop.users()[0], &tc, Task::Quake, 1),
            &profile(1.6, 3),
        );
        // A ramp to 1.3 eventually halves the frame rate: the perception
        // user objects well before exhaustion.
        assert_eq!(rec.outcome, RunOutcome::Discomfort);
        assert!(rec.offset_secs < 119.0, "offset {}", rec.offset_secs);
        // The level at feedback sits in a plausible mid-ramp region.
        let level = rec.level_at_feedback(Resource::Cpu).unwrap();
        assert!(level > 0.2 && level < 1.3, "level {level}");
    }

    #[test]
    fn word_tolerates_what_quake_cannot() {
        // The identical CPU ramp and identical perception profile leave a
        // Word typist comfortable (keystroke echo stays under the
        // absolute floor) while the Quake player objects — the paper's
        // central context effect, now emerging from physics rather than
        // calibration.
        let pop = UserPopulation::generate(1, 61);
        let tc = Testcase::single(
            "p-cpu-ramp2",
            1.0,
            Resource::Cpu,
            ExerciseSpec::Ramp {
                level: 1.3,
                duration: 120.0,
            },
        );
        let p = profile(1.6, 3);
        let word = execute_perception_run(&setup(&pop.users()[0], &tc, Task::Word, 2), &p);
        let quake = execute_perception_run(&setup(&pop.users()[0], &tc, Task::Quake, 2), &p);
        assert_eq!(word.outcome, RunOutcome::Exhausted, "word clicked at {}", word.offset_secs);
        assert_eq!(quake.outcome, RunOutcome::Discomfort);
    }

    #[test]
    fn memory_ramp_to_full_is_universally_perceived() {
        // "contention levels greater than one ... immediately results in
        // thrashing which is not only very irritating to all users"
        // (§2.2): a ramp all the way to 1.0 ends in perceived paging for
        // both the typist and the gamer.
        let pop = UserPopulation::generate(1, 62);
        let tc = Testcase::single(
            "p-mem-ramp",
            1.0,
            Resource::Memory,
            ExerciseSpec::Ramp {
                level: 1.0,
                duration: 120.0,
            },
        );
        let p = profile(1.8, 3);
        let word = execute_perception_run(&setup(&pop.users()[0], &tc, Task::Word, 3), &p);
        let quake = execute_perception_run(&setup(&pop.users()[0], &tc, Task::Quake, 3), &p);
        assert_eq!(word.outcome, RunOutcome::Discomfort);
        assert_eq!(quake.outcome, RunOutcome::Discomfort);
        // Neither perceives anything during the first half of the ramp
        // (plenty of idle memory to give back before paging starts).
        assert!(word.offset_secs > 50.0, "word {}", word.offset_secs);
        assert!(quake.offset_secs > 50.0, "quake {}", quake.offset_secs);
    }

    #[test]
    fn second_chance_eviction_restores_papers_memory_ordering() {
        // With page-granular second-chance eviction, the paper's Figure
        // 14 memory column emerges from physics alone: the frame loop
        // (touching thousands of pages a second over a huge working set)
        // perceives the memory ramp first, the browser next, the typist
        // last.
        use uucs_sim::mem::EvictionPolicy;
        use uucs_sim::MachineConfig;
        let pop = UserPopulation::generate(1, 62);
        let tc = Testcase::single(
            "p-mem-ramp2",
            1.0,
            Resource::Memory,
            ExerciseSpec::Ramp {
                level: 1.0,
                duration: 120.0,
            },
        );
        let p = profile(1.8, 3);
        let offset = |task: Task| {
            let rec = super::execute_perception_run_configured(
                &setup(&pop.users()[0], &tc, task, 3),
                &p,
                MachineConfig {
                    eviction: EvictionPolicy::SecondChance,
                    ..MachineConfig::default()
                },
            );
            if rec.outcome == RunOutcome::Discomfort {
                rec.offset_secs
            } else {
                f64::INFINITY
            }
        };
        let quake = offset(Task::Quake);
        let ie = offset(Task::Ie);
        let word = offset(Task::Word);
        assert!(
            quake < ie && ie < word,
            "expected Quake < IE < Word, got {quake} / {ie} / {word}"
        );
    }

    #[test]
    fn more_tolerant_profile_clicks_later_or_never() {
        let pop = UserPopulation::generate(1, 63);
        let tc = Testcase::single(
            "p-cpu-ramp3",
            1.0,
            Resource::Cpu,
            ExerciseSpec::Ramp {
                level: 2.0,
                duration: 120.0,
            },
        );
        let touchy = execute_perception_run(
            &setup(&pop.users()[0], &tc, Task::Powerpoint, 4),
            &profile(1.4, 2),
        );
        let tolerant = execute_perception_run(
            &setup(&pop.users()[0], &tc, Task::Powerpoint, 4),
            &profile(3.5, 6),
        );
        let t_touchy = touchy.offset_secs;
        let t_tolerant = tolerant.offset_secs;
        assert!(
            t_tolerant >= t_touchy,
            "tolerant clicked earlier: {t_tolerant} vs {t_touchy}"
        );
    }

    #[test]
    fn sampled_profiles_are_sane() {
        let mut rng = Pcg64::new(64);
        for _ in 0..100 {
            let p = PerceptionProfile::sample(&mut rng);
            assert!(p.tolerance_ratio >= 1.2);
            assert!(p.latency_floor_us >= 80_000.0);
            assert!(p.jitter_ratio >= 1.5);
            assert!((2..=6).contains(&p.patience_secs));
        }
    }
}
