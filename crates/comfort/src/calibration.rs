//! Calibration targets: the paper's published statistics, and threshold
//! distributions fitted to them.
//!
//! Human subjects cannot be regenerated from code, so the synthetic
//! population is *calibrated* to the paper's published per-cell numbers:
//! the controlled-study testcase table (Figure 8), the blank-run noise
//! floors (Figure 9), `f_d` (Figure 14), `c_0.05` (Figure 15), and `c_a`
//! with 95 % confidence intervals (Figure 16). A lognormal threshold
//! distribution is pinned per cell through the two published quantile
//! points `(c_0.05, 0.05)` and `(ramp ceiling, f_d)`, so the regenerated
//! CDFs pass through the paper's reported values by construction, while
//! everything between them follows the lognormal shape.

use uucs_stats::fit::{fit_from_median_and_spread, fit_from_quantiles, Lognormal};
use uucs_testcase::{ExerciseSpec, Resource, Testcase};
use uucs_workloads::Task;

use crate::user::RatingDim;

/// The paper's published statistics for one (task, resource) cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellStats {
    /// The task.
    pub task: Task,
    /// The resource.
    pub resource: Resource,
    /// Ramp ceiling `x` of `ramp(x, 120)` (Figure 8).
    pub ramp_ceiling: f64,
    /// Step level `x` of `step(x, 120, 40)` (Figure 8).
    pub step_level: f64,
    /// Fraction of ramp runs ending in discomfort (Figure 14).
    pub f_d: f64,
    /// 5th-percentile discomfort level (Figure 15); `None` where the paper
    /// prints `*` (insufficient information).
    pub c_05: Option<f64>,
    /// Mean discomfort level with its 95 % CI (Figure 16); `None` for `*`.
    pub c_a: Option<(f64, f64, f64)>,
}

/// All twelve cells of the controlled study, exactly as published.
pub const CELLS: [CellStats; 12] = [
    CellStats { task: Task::Word, resource: Resource::Cpu, ramp_ceiling: 7.0, step_level: 5.5, f_d: 0.71, c_05: Some(3.06), c_a: Some((4.35, 3.97, 4.72)) },
    CellStats { task: Task::Word, resource: Resource::Memory, ramp_ceiling: 1.0, step_level: 1.0, f_d: 0.00, c_05: None, c_a: None },
    CellStats { task: Task::Word, resource: Resource::Disk, ramp_ceiling: 7.0, step_level: 5.0, f_d: 0.10, c_05: Some(3.28), c_a: Some((4.20, 1.89, 6.51)) },
    CellStats { task: Task::Powerpoint, resource: Resource::Cpu, ramp_ceiling: 2.0, step_level: 0.98, f_d: 0.95, c_05: Some(1.00), c_a: Some((1.17, 1.11, 1.24)) },
    CellStats { task: Task::Powerpoint, resource: Resource::Memory, ramp_ceiling: 1.0, step_level: 1.0, f_d: 0.07, c_05: Some(0.64), c_a: Some((0.64, 0.21, 1.06)) },
    CellStats { task: Task::Powerpoint, resource: Resource::Disk, ramp_ceiling: 8.0, step_level: 6.0, f_d: 0.17, c_05: Some(3.84), c_a: Some((4.65, 3.67, 5.63)) },
    CellStats { task: Task::Ie, resource: Resource::Cpu, ramp_ceiling: 2.0, step_level: 1.0, f_d: 0.75, c_05: Some(0.61), c_a: Some((1.20, 1.07, 1.33)) },
    CellStats { task: Task::Ie, resource: Resource::Memory, ramp_ceiling: 1.0, step_level: 1.0, f_d: 0.30, c_05: Some(0.31), c_a: Some((0.55, 0.39, 0.71)) },
    CellStats { task: Task::Ie, resource: Resource::Disk, ramp_ceiling: 5.0, step_level: 4.0, f_d: 0.61, c_05: Some(2.02), c_a: Some((3.11, 2.69, 3.52)) },
    CellStats { task: Task::Quake, resource: Resource::Cpu, ramp_ceiling: 1.3, step_level: 0.5, f_d: 0.95, c_05: Some(0.18), c_a: Some((0.64, 0.58, 0.69)) },
    CellStats { task: Task::Quake, resource: Resource::Memory, ramp_ceiling: 1.0, step_level: 1.0, f_d: 0.45, c_05: Some(0.08), c_a: Some((0.55, 0.37, 0.74)) },
    CellStats { task: Task::Quake, resource: Resource::Disk, ramp_ceiling: 5.0, step_level: 5.0, f_d: 0.29, c_05: Some(0.69), c_a: Some((1.19, 0.86, 1.52)) },
];

/// An aggregate (Total) row of Figures 14–16:
/// `(resource, f_d, c_0.05, (c_a, ci_lo, ci_hi))`.
pub type TotalRow = (Resource, f64, f64, (f64, f64, f64));

/// The paper's aggregate (Total) rows for Figures 14–16.
pub const TOTALS: [TotalRow; 3] = [
    (Resource::Cpu, 0.86, 0.35, (1.47, 1.31, 1.64)),
    (Resource::Memory, 0.21, 0.33, (0.58, 0.46, 0.71)),
    (Resource::Disk, 0.33, 1.11, (2.97, 2.54, 3.41)),
];

/// Blank-testcase discomfort probabilities per task (Figure 9's "Prob of
/// discomfort from blank testcase").
pub fn noise_floor(task: Task) -> f64 {
    match task {
        Task::Word => 0.0,
        Task::Powerpoint => 0.0,
        Task::Ie => 0.22,
        Task::Quake => 0.30,
    }
}

/// Looks up the published statistics for one cell.
pub fn cell(task: Task, resource: Resource) -> &'static CellStats {
    CELLS
        .iter()
        .find(|c| c.task == task && c.resource == resource)
        .expect("network cells are not part of the study")
}

/// The lognormal threshold fit for one cell.
///
/// Where both `c_0.05` and a nontrivial `f_d` exist, the fit passes
/// exactly through `(c_0.05, 0.05)` and `(ceiling, f_d)`. The Word/Memory
/// cell recorded no discomfort at all (`f_d = 0`), so its thresholds sit
/// far above the explored range.
pub fn threshold_fit(stats: &CellStats) -> Lognormal {
    if let (Some(c05), true) = (stats.c_05, stats.f_d > 0.051) {
        if let Some(fit) = fit_from_quantiles(c05, 0.05, stats.ramp_ceiling, stats.f_d) {
            return fit;
        }
    }
    // Degenerate cells: thresholds above the ceiling. A median of 10x the
    // ceiling with moderate spread puts ~1e-4 of mass below the ceiling —
    // effectively the paper's "no discomfort recorded".
    fit_from_median_and_spread(stats.ramp_ceiling * 10.0, 0.62)
}

/// The §3.3.5 "frog in the pot" effect, as published: in Powerpoint/CPU,
/// 96 % of users tolerated a higher level in the ramp than the step, with
/// a mean contention difference of 0.22 at p = 0.0001.
pub const FROG_RAMP_MINUS_STEP: f64 = 0.22;

/// The mean ramp bonus as a fraction of the cell ceiling implied by the
/// published Powerpoint/CPU difference (0.22 on a 2.0 ceiling).
pub const RAMP_BONUS_FRAC_MEAN: f64 = FROG_RAMP_MINUS_STEP / 2.0;

/// One skill effect: a rating dimension shifting thresholds in a cell
/// (Figure 17). `power_mult`/`beginner_mult` multiply the cell threshold
/// for users with that rating (Typical is the 1.0 reference).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkillEffect {
    /// The affected cell.
    pub task: Task,
    /// The affected resource.
    pub resource: Resource,
    /// Which self-rating drives the effect.
    pub dimension: RatingDim,
    /// Threshold multiplier for Power users (< 1: less tolerant).
    pub power_mult: f64,
    /// Threshold multiplier for Beginners (> 1: more tolerant).
    pub beginner_mult: f64,
}

/// Skill effects sized to regenerate the significant rows of Figure 17
/// ("Experienced or power users have higher expectations").
pub const SKILL_EFFECTS: [SkillEffect; 5] = [
    SkillEffect { task: Task::Quake, resource: Resource::Cpu, dimension: RatingDim::Quake, power_mult: 0.52, beginner_mult: 1.35 },
    SkillEffect { task: Task::Quake, resource: Resource::Cpu, dimension: RatingDim::Pc, power_mult: 0.70, beginner_mult: 1.15 },
    SkillEffect { task: Task::Quake, resource: Resource::Cpu, dimension: RatingDim::Windows, power_mult: 0.76, beginner_mult: 1.10 },
    SkillEffect { task: Task::Ie, resource: Resource::Disk, dimension: RatingDim::Windows, power_mult: 0.58, beginner_mult: 1.12 },
    SkillEffect { task: Task::Ie, resource: Resource::Memory, dimension: RatingDim::Windows, power_mult: 0.42, beginner_mult: 1.12 },
];

/// The eight testcases of one task's 16-minute session (Figure 8): CPU,
/// disk, and memory ramps and steps, plus two blanks, each 2 minutes at
/// 1 Hz, run in random order.
pub fn controlled_testcases(task: Task) -> Vec<Testcase> {
    let c = |r| cell(task, r);
    let dur = 120.0;
    let mut out = Vec::with_capacity(8);
    // Numbering follows Figure 8's rows.
    out.push(Testcase::single(
        format!("{}-cpu-ramp", task.name().to_lowercase()),
        1.0,
        Resource::Cpu,
        ExerciseSpec::Ramp { level: c(Resource::Cpu).ramp_ceiling, duration: dur },
    ));
    out.push(Testcase::blank(
        format!("{}-blank-1", task.name().to_lowercase()),
        1.0,
        dur,
    ));
    out.push(Testcase::single(
        format!("{}-disk-ramp", task.name().to_lowercase()),
        1.0,
        Resource::Disk,
        ExerciseSpec::Ramp { level: c(Resource::Disk).ramp_ceiling, duration: dur },
    ));
    out.push(Testcase::single(
        format!("{}-memory-ramp", task.name().to_lowercase()),
        1.0,
        Resource::Memory,
        ExerciseSpec::Ramp { level: c(Resource::Memory).ramp_ceiling, duration: dur },
    ));
    out.push(Testcase::single(
        format!("{}-cpu-step", task.name().to_lowercase()),
        1.0,
        Resource::Cpu,
        ExerciseSpec::Step { level: c(Resource::Cpu).step_level, duration: dur, start: 40.0 },
    ));
    out.push(Testcase::single(
        format!("{}-disk-step", task.name().to_lowercase()),
        1.0,
        Resource::Disk,
        ExerciseSpec::Step { level: c(Resource::Disk).step_level, duration: dur, start: 40.0 },
    ));
    out.push(Testcase::blank(
        format!("{}-blank-2", task.name().to_lowercase()),
        1.0,
        dur,
    ));
    out.push(Testcase::single(
        format!("{}-memory-step", task.name().to_lowercase()),
        1.0,
        Resource::Memory,
        ExerciseSpec::Step { level: c(Resource::Memory).step_level, duration: dur, start: 40.0 },
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_cells_cover_the_grid() {
        for task in Task::ALL {
            for resource in Resource::STUDIED {
                let c = cell(task, resource);
                assert_eq!((c.task, c.resource), (task, resource));
            }
        }
    }

    #[test]
    fn fits_pass_through_published_quantiles() {
        for c in &CELLS {
            let fit = threshold_fit(c);
            if let (Some(c05), true) = (c.c_05, c.f_d > 0.051) {
                assert!(
                    (fit.cdf(c05) - 0.05).abs() < 1e-9,
                    "{}-{}: cdf(c05) = {}",
                    c.task,
                    c.resource,
                    fit.cdf(c05)
                );
                assert!(
                    (fit.cdf(c.ramp_ceiling) - c.f_d).abs() < 1e-9,
                    "{}-{}: cdf(ceiling) = {}",
                    c.task,
                    c.resource,
                    fit.cdf(c.ramp_ceiling)
                );
            } else {
                // Degenerate: essentially no mass below the ceiling.
                assert!(fit.cdf(c.ramp_ceiling) < 0.01);
            }
        }
    }

    #[test]
    fn fitted_truncated_means_near_published_ca() {
        // The lognormal is an assumption; its censored mean should still
        // land inside (a slightly widened) published CI for every cell.
        for c in &CELLS {
            let Some((_ca, lo, hi)) = c.c_a else { continue };
            let fit = threshold_fit(c);
            let predicted = fit.truncated_mean(c.ramp_ceiling);
            // The lognormal's censored mean cannot match c_a exactly (the
            // fit is pinned by c_05 and f_d); allow the CI widened by 15%
            // of the ramp ceiling. EXPERIMENTS.md reports the per-cell
            // paper-vs-regenerated values.
            let slack = 0.15 * c.ramp_ceiling;
            assert!(
                predicted > lo - slack && predicted < hi + slack,
                "{}-{}: predicted c_a {predicted} outside ({lo}, {hi})",
                c.task,
                c.resource
            );
        }
    }

    #[test]
    fn noise_floors_match_figure_9() {
        assert_eq!(noise_floor(Task::Word), 0.0);
        assert_eq!(noise_floor(Task::Powerpoint), 0.0);
        assert!((noise_floor(Task::Ie) - 0.22).abs() < 1e-12);
        assert!((noise_floor(Task::Quake) - 0.30).abs() < 1e-12);
    }

    #[test]
    fn controlled_testcases_match_figure_8() {
        for task in Task::ALL {
            let tcs = controlled_testcases(task);
            assert_eq!(tcs.len(), 8);
            let blanks = tcs.iter().filter(|t| t.is_blank()).count();
            assert_eq!(blanks, 2);
            for tc in &tcs {
                assert!((tc.duration() - 120.0).abs() < 1e-9);
            }
        }
        // Spot-check Figure 8 parameters.
        let word = controlled_testcases(Task::Word);
        let cpu_ramp = word.iter().find(|t| t.id.as_str() == "word-cpu-ramp").unwrap();
        assert!((cpu_ramp.function(Resource::Cpu).unwrap().peak() - 7.0).abs() < 0.1);
        let quake = controlled_testcases(Task::Quake);
        let cpu_step = quake.iter().find(|t| t.id.as_str() == "quake-cpu-step").unwrap();
        assert!((cpu_step.function(Resource::Cpu).unwrap().peak() - 0.5).abs() < 1e-9);
        assert_eq!(cpu_step.contention_at(Resource::Cpu, 39.0), 0.0);
        assert_eq!(cpu_step.contention_at(Resource::Cpu, 40.0), 0.5);
    }

    #[test]
    fn skill_effects_cover_figure_17_cells() {
        // Figure 17's significant rows: Quake/CPU (x3 dims beyond the
        // within-Quake one) and IE/Disk + IE/Mem via Windows rating.
        assert!(SKILL_EFFECTS
            .iter()
            .any(|e| e.task == Task::Quake && e.dimension == RatingDim::Quake));
        assert!(SKILL_EFFECTS
            .iter()
            .any(|e| e.task == Task::Ie && e.resource == Resource::Disk));
        assert!(SKILL_EFFECTS
            .iter()
            .any(|e| e.task == Task::Ie && e.resource == Resource::Memory));
        for e in &SKILL_EFFECTS {
            assert!(e.power_mult < 1.0 && e.beginner_mult >= 1.0);
        }
    }
}
