//! A fault-injection TCP proxy for torturing the UUCS wire protocol.
//!
//! Sits between a client and a server on loopback, forwarding bytes in
//! both directions, and injects faults drawn from a seeded schedule:
//! dropped connections, delays, mid-frame truncations, black holes
//! (bytes swallowed, connection held open), abrupt resets, and byte
//! corruption. The chaos integration suite points a
//! `ResilientTransport` through this proxy at a real server and asserts
//! exactly-once delivery regardless of what the proxy does.
//!
//! Everything is std-only and in-process: `ChaosProxy::start` spawns an
//! accept thread; each proxied connection gets one pump thread per
//! direction. Fault decisions come from a [`uucs_stats::Pcg64`] split
//! per connection and direction, so a fixed seed replays the same
//! torture (modulo OS chunk boundaries).
//!
//! Set `UUCS_CHAOS_TRACE=1` to print every chunk the proxy sees —
//! direction, size, injection decision and a payload prefix — which is
//! usually enough to reconstruct a failing schedule byte by byte.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use uucs_stats::Pcg64;
use uucs_telemetry::{metrics, trace};

/// One kind of injectable network fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Close both directions cleanly without forwarding the chunk.
    Drop,
    /// Sleep before forwarding the chunk.
    Delay,
    /// Forward only a prefix of the chunk, then close — a torn frame.
    Truncate,
    /// Swallow this and every later chunk in this direction, holding the
    /// connection open — the peer sees silence, not EOF.
    BlackHole,
    /// Tear the connection down immediately, mid-whatever.
    Reset,
    /// Flip one byte of the chunk and forward it.
    Corrupt,
}

impl FaultKind {
    /// Every fault kind, for building full-menu policies.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::Drop,
        FaultKind::Delay,
        FaultKind::Truncate,
        FaultKind::BlackHole,
        FaultKind::Reset,
        FaultKind::Corrupt,
    ];

    /// Stable lowercase name, used in telemetry counter names
    /// (`chaos.<label>.fault.<name>`) and flight-recorder events.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Delay => "delay",
            FaultKind::Truncate => "truncate",
            FaultKind::BlackHole => "black_hole",
            FaultKind::Reset => "reset",
            FaultKind::Corrupt => "corrupt",
        }
    }
}

/// What the proxy injects, how often, and under which seed.
#[derive(Debug, Clone)]
pub struct ChaosPolicy {
    /// Per-chunk probability of injecting a fault (0.0 = transparent).
    pub rate: f64,
    /// The menu of faults to draw from; must be non-empty if `rate > 0`.
    pub faults: Vec<FaultKind>,
    /// Seed for the fault schedule; same seed, same decisions.
    pub seed: u64,
    /// How long a [`FaultKind::Delay`] stalls the chunk.
    pub delay: Duration,
    /// Optional cap on total faults injected across the proxy's life.
    /// Once spent, the proxy forwards cleanly — this is what lets
    /// convergence tests terminate.
    pub budget: Option<u64>,
    /// Label used to namespace this proxy's telemetry counters
    /// (`chaos.<label>.fault.<kind>`), so concurrent proxies in one
    /// process stay distinguishable in a STATS snapshot.
    pub label: String,
}

impl ChaosPolicy {
    /// A transparent proxy: no faults at all.
    pub fn transparent() -> Self {
        ChaosPolicy {
            rate: 0.0,
            faults: Vec::new(),
            seed: 0,
            delay: Duration::from_millis(20),
            budget: None,
            label: "chaos".to_string(),
        }
    }

    /// Injects `kind` on every chunk at the given probability.
    pub fn only(kind: FaultKind, rate: f64, seed: u64) -> Self {
        ChaosPolicy {
            rate,
            faults: vec![kind],
            seed,
            delay: Duration::from_millis(20),
            budget: None,
            label: "chaos".to_string(),
        }
    }

    /// The full menu at the given probability.
    pub fn all(rate: f64, seed: u64) -> Self {
        ChaosPolicy {
            rate,
            faults: FaultKind::ALL.to_vec(),
            seed,
            delay: Duration::from_millis(20),
            budget: None,
            label: "chaos".to_string(),
        }
    }

    /// Caps the total number of injected faults.
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Renames the telemetry namespace for this proxy's fault counters.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

/// Counters the proxy keeps while running.
#[derive(Debug, Default)]
struct Counters {
    connections: AtomicUsize,
    faults: AtomicU64,
    bytes_forwarded: AtomicU64,
}

/// A point-in-time copy of the proxy's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosStats {
    /// Connections accepted.
    pub connections: usize,
    /// Faults injected (all kinds).
    pub faults: u64,
    /// Payload bytes forwarded (both directions).
    pub bytes_forwarded: u64,
}

struct Shared {
    policy: ChaosPolicy,
    counters: Counters,
    stop: AtomicBool,
    /// Clones of every live socket (both sides), so shutdown can cut
    /// them and unblock the pump threads.
    socks: Mutex<Vec<TcpStream>>,
}

impl Shared {
    /// Tries to spend one unit of fault budget; false means the budget
    /// is exhausted and the chunk must forward cleanly.
    fn spend_budget(&self) -> bool {
        match self.policy.budget {
            None => true,
            Some(cap) => self
                .counters
                .faults
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                    (n < cap).then_some(n + 1)
                })
                .is_ok(),
        }
    }
}

/// A running fault-injection proxy. Dropping it does *not* stop the
/// threads — call [`shutdown`](Self::shutdown).
pub struct ChaosProxy {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    pumps: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ChaosProxy {
    /// Binds a loopback listener and starts proxying every accepted
    /// connection to `upstream` under `policy`.
    pub fn start(upstream: SocketAddr, policy: ChaosPolicy) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            policy,
            counters: Counters::default(),
            stop: AtomicBool::new(false),
            socks: Mutex::new(Vec::new()),
        });
        let pumps: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let shared2 = shared.clone();
        let pumps2 = pumps.clone();
        let accept_thread = std::thread::spawn(move || {
            for incoming in listener.incoming() {
                if shared2.stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(down) = incoming else { continue };
                let Ok(up) = TcpStream::connect(upstream) else {
                    let _ = down.shutdown(Shutdown::Both);
                    continue;
                };
                // The proxy adds a hop; don't let Nagle add 40 ms too.
                let _ = down.set_nodelay(true);
                let _ = up.set_nodelay(true);
                let conn = shared2.counters.connections.fetch_add(1, Ordering::SeqCst) as u64;
                if std::env::var("UUCS_CHAOS_TRACE").is_ok() {
                    eprintln!("[chaos] conn {conn} accepted");
                }
                let rng = Pcg64::new(shared2.policy.seed).split(conn);
                if let (Ok(d2), Ok(u2)) = (down.try_clone(), up.try_clone()) {
                    let mut socks = shared2.socks.lock().unwrap();
                    socks.push(d2);
                    socks.push(u2);
                }
                let (Ok(down2), Ok(up2)) = (down.try_clone(), up.try_clone()) else {
                    continue;
                };
                let s_a = shared2.clone();
                let s_b = shared2.clone();
                let rng_a = rng.clone().split_str("c2s");
                let rng_b = rng.clone().split_str("s2c");
                let mut handles = pumps2.lock().unwrap();
                handles.push(std::thread::spawn(move || {
                    pump(down, up, s_a, rng_a, &format!("{conn}:c2s"))
                }));
                handles.push(std::thread::spawn(move || {
                    pump(up2, down2, s_b, rng_b, &format!("{conn}:s2c"))
                }));
            }
        });
        Ok(ChaosProxy {
            addr,
            shared,
            accept_thread: Some(accept_thread),
            pumps,
        })
    }

    /// The loopback address clients should dial.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the proxy's counters.
    pub fn stats(&self) -> ChaosStats {
        ChaosStats {
            connections: self.shared.counters.connections.load(Ordering::SeqCst),
            faults: self.shared.counters.faults.load(Ordering::SeqCst),
            bytes_forwarded: self.shared.counters.bytes_forwarded.load(Ordering::SeqCst),
        }
    }

    /// Stops accepting, cuts every proxied connection, and joins all
    /// threads. Returns the final counters — read *after* the join, so
    /// the tally is exact, with no pump thread racing it.
    pub fn shutdown(mut self) -> ChaosStats {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for s in self.shared.socks.lock().unwrap().drain(..) {
            let _ = s.shutdown(Shutdown::Both);
        }
        for t in self.pumps.lock().unwrap().drain(..) {
            let _ = t.join();
        }
        self.stats()
    }
}

/// Forwards `src` to `dst` chunk by chunk, rolling the fault dice on
/// each chunk.
fn pump(mut src: TcpStream, mut dst: TcpStream, shared: Arc<Shared>, mut rng: Pcg64, tag: &str) {
    let trace = std::env::var("UUCS_CHAOS_TRACE").is_ok();
    let mut buf = [0u8; 4096];
    let mut black_holed = false;
    loop {
        let n = match src.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        if black_holed {
            continue;
        }
        let policy = &shared.policy;
        let inject = policy.rate > 0.0
            && !policy.faults.is_empty()
            && rng.bernoulli(policy.rate)
            && shared.spend_budget();
        if trace {
            eprintln!(
                "[chaos] {tag} read {n} bytes, inject={inject}: {:?}",
                String::from_utf8_lossy(&buf[..n.min(40)])
            );
        }
        if !inject {
            if dst.write_all(&buf[..n]).is_err() {
                break;
            }
            shared
                .counters
                .bytes_forwarded
                .fetch_add(n as u64, Ordering::SeqCst);
            continue;
        }
        // spend_budget already counted the fault when a budget is set;
        // count it here otherwise.
        if policy.budget.is_none() {
            shared.counters.faults.fetch_add(1, Ordering::SeqCst);
        }
        let kind = *rng.choose(&policy.faults);
        metrics::counter(&format!("chaos.{}.fault.{}", policy.label, kind.name())).inc();
        trace::event(
            "chaos.fault",
            &[("label", &policy.label), ("kind", kind.name()), ("tag", tag)],
        );
        match kind {
            FaultKind::Drop => {
                let _ = src.shutdown(Shutdown::Both);
                let _ = dst.shutdown(Shutdown::Both);
                break;
            }
            FaultKind::Delay => {
                std::thread::sleep(policy.delay);
                if dst.write_all(&buf[..n]).is_err() {
                    break;
                }
                shared
                    .counters
                    .bytes_forwarded
                    .fetch_add(n as u64, Ordering::SeqCst);
            }
            FaultKind::Truncate => {
                let keep = n / 2;
                let _ = dst.write_all(&buf[..keep]);
                shared
                    .counters
                    .bytes_forwarded
                    .fetch_add(keep as u64, Ordering::SeqCst);
                let _ = src.shutdown(Shutdown::Both);
                let _ = dst.shutdown(Shutdown::Both);
                break;
            }
            FaultKind::BlackHole => {
                // Swallow from here on; the connection stays open and
                // the peer's deadline — not an EOF — must save it.
                black_holed = true;
            }
            FaultKind::Reset => {
                let _ = src.shutdown(Shutdown::Both);
                let _ = dst.shutdown(Shutdown::Both);
                break;
            }
            FaultKind::Corrupt => {
                let i = rng.below(n as u64) as usize;
                buf[i] ^= 0x20;
                if dst.write_all(&buf[..n]).is_err() {
                    break;
                }
                shared
                    .counters
                    .bytes_forwarded
                    .fetch_add(n as u64, Ordering::SeqCst);
            }
        }
    }
    // Tear the whole proxied connection down when either direction ends.
    // The clones held in `shared.socks` keep the fds alive, so merely
    // dropping `src`/`dst` would leave the peer half-open: it would see
    // read timeouts instead of an immediate EOF after the far side died.
    let _ = src.shutdown(Shutdown::Both);
    let _ = dst.shutdown(Shutdown::Both);
    if trace {
        eprintln!("[chaos] {tag} pump exits");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    /// An upstream that echoes lines back, uppercased.
    fn echo_server() -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { break };
                std::thread::spawn(move || {
                    let mut w = stream.try_clone().unwrap();
                    let r = std::io::BufReader::new(stream);
                    for line in r.lines() {
                        let Ok(line) = line else { break };
                        if line == "QUIT" {
                            break;
                        }
                        if w.write_all(format!("{}\n", line.to_uppercase()).as_bytes())
                            .is_err()
                        {
                            break;
                        }
                    }
                });
            }
        });
        (addr, t)
    }

    fn roundtrip(addr: SocketAddr, line: &str) -> std::io::Result<String> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_millis(500)))?;
        let mut w = stream.try_clone()?;
        let mut r = std::io::BufReader::new(stream);
        w.write_all(format!("{line}\n").as_bytes())?;
        let mut reply = String::new();
        r.read_line(&mut reply)?;
        if reply.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "peer closed",
            ));
        }
        Ok(reply.trim_end().to_string())
    }

    #[test]
    fn transparent_proxy_forwards_faithfully() {
        let (up, _t) = echo_server();
        let proxy = ChaosProxy::start(up, ChaosPolicy::transparent()).unwrap();
        for i in 0..5 {
            let msg = format!("hello-{i}");
            assert_eq!(roundtrip(proxy.addr(), &msg).unwrap(), msg.to_uppercase());
        }
        let stats = proxy.stats();
        assert_eq!(stats.faults, 0);
        assert_eq!(stats.connections, 5);
        assert!(stats.bytes_forwarded > 0);
        proxy.shutdown();
    }

    #[test]
    fn full_rate_faults_break_exchanges_and_are_counted() {
        let (up, _t) = echo_server();
        // Rate 1.0 with destructive faults only: no exchange survives.
        let policy = ChaosPolicy {
            rate: 1.0,
            faults: vec![FaultKind::Drop, FaultKind::Reset, FaultKind::Truncate],
            seed: 42,
            delay: Duration::from_millis(5),
            ..ChaosPolicy::transparent()
        };
        let proxy = ChaosProxy::start(up, policy).unwrap();
        for i in 0..4 {
            assert!(
                roundtrip(proxy.addr(), &format!("doomed-{i}")).is_err(),
                "exchange {i} should not survive rate-1.0 destruction"
            );
        }
        assert!(proxy.stats().faults >= 4);
        proxy.shutdown();
    }

    #[test]
    fn budget_exhausts_and_proxy_heals() {
        let (up, _t) = echo_server();
        let policy = ChaosPolicy {
            rate: 1.0,
            faults: vec![FaultKind::Drop],
            seed: 7,
            delay: Duration::from_millis(5),
            ..ChaosPolicy::transparent()
        }
        .with_budget(2);
        let proxy = ChaosProxy::start(up, policy).unwrap();
        let mut failures = 0;
        let mut successes = 0;
        for i in 0..8 {
            match roundtrip(proxy.addr(), &format!("m-{i}")) {
                Ok(_) => successes += 1,
                Err(_) => failures += 1,
            }
        }
        assert_eq!(failures, 2, "exactly the budget should fail");
        assert_eq!(successes, 6);
        assert_eq!(proxy.stats().faults, 2);
        proxy.shutdown();
    }

    #[test]
    fn black_hole_stalls_instead_of_closing() {
        let (up, _t) = echo_server();
        let proxy = ChaosProxy::start(up, ChaosPolicy::only(FaultKind::BlackHole, 1.0, 3)).unwrap();
        let err = roundtrip(proxy.addr(), "into-the-void").unwrap_err();
        // The read deadline fires; the connection was never closed.
        assert!(
            matches!(
                err.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ),
            "expected a timeout, got {err:?}"
        );
        proxy.shutdown();
    }

    #[test]
    fn per_class_fault_counters_namespace_by_label() {
        let (up, _t) = echo_server();
        let policy = ChaosPolicy::only(FaultKind::Drop, 1.0, 11)
            .with_budget(3)
            .with_label("libtest_drop_only");
        let proxy = ChaosProxy::start(up, policy).unwrap();
        // Drive exchanges until the budget is spent, then one clean one.
        let mut spent = 0;
        for i in 0..32 {
            let _ = roundtrip(proxy.addr(), &format!("x-{i}"));
            spent = proxy.stats().faults;
            if spent == 3 {
                break;
            }
        }
        assert_eq!(spent, 3, "budget should be spendable");
        // The telemetry counter mirrors the proxy's own tally, and only
        // the injected class under only *this* proxy's label moved.
        let label = "libtest_drop_only";
        assert_eq!(
            metrics::counter(&format!("chaos.{label}.fault.drop")).get(),
            3
        );
        for kind in FaultKind::ALL {
            if kind != FaultKind::Drop {
                assert_eq!(
                    metrics::counter(&format!("chaos.{label}.fault.{}", kind.name())).get(),
                    0,
                    "no {} fault should be counted",
                    kind.name()
                );
            }
        }
        proxy.shutdown();
    }

    #[test]
    fn corruption_mangles_payload_but_delivers() {
        let (up, _t) = echo_server();
        let proxy = ChaosProxy::start(up, ChaosPolicy::only(FaultKind::Corrupt, 1.0, 5)).unwrap();
        // Both directions corrupt one byte, so the reply differs from
        // the clean echo (flipping 0x20 toggles case/space bits — the
        // line framing may survive, the payload may not).
        // A corrupted newline stalls the echo loop instead (an Err from
        // the roundtrip) — also a legitimate mangling.
        if let Ok(reply) = roundtrip(proxy.addr(), "abcdefgh") {
            assert_ne!(reply, "ABCDEFGH", "corruption must be visible");
        }
        assert!(proxy.stats().faults >= 1);
        proxy.shutdown();
    }
}
