//! The Mann–Whitney U test (Wilcoxon rank-sum).
//!
//! A nonparametric alternative to the Welch t-test used for the paper's
//! Figure 17: discomfort levels are censored and skewed, so a rank test
//! makes a good robustness check on the skill-class comparisons (the
//! `uucs-study` skill analysis reports both).

use crate::special::normal_cdf;

/// Result of a Mann–Whitney U test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MannWhitneyResult {
    /// The U statistic for the first sample.
    pub u: f64,
    /// Standardized z score (normal approximation with tie correction
    /// and continuity correction).
    pub z: f64,
    /// Two-sided p-value.
    pub p: f64,
    /// Rank-biserial effect size in [-1, 1]; negative when the first
    /// sample tends lower.
    pub effect: f64,
}

/// Runs the test. Returns `None` if either sample is empty or all values
/// are tied (no ordering information).
pub fn mann_whitney_u(a: &[f64], b: &[f64]) -> Option<MannWhitneyResult> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    let n1 = a.len() as f64;
    let n2 = b.len() as f64;
    // Rank the pooled sample with midranks for ties.
    let mut pooled: Vec<(f64, usize)> = a
        .iter()
        .map(|&x| (x, 0usize))
        .chain(b.iter().map(|&x| (x, 1usize)))
        .collect();
    pooled.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap());
    let n = pooled.len();
    let mut ranks = vec![0.0f64; n];
    let mut tie_term = 0.0; // sum of t^3 - t over tie groups
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j < n && pooled[j].0 == pooled[i].0 {
            j += 1;
        }
        let midrank = (i + 1 + j) as f64 / 2.0;
        for r in ranks.iter_mut().take(j).skip(i) {
            *r = midrank;
        }
        let t = (j - i) as f64;
        tie_term += t * t * t - t;
        i = j;
    }
    let r1: f64 = pooled
        .iter()
        .zip(&ranks)
        .filter(|((_, g), _)| *g == 0)
        .map(|(_, &r)| r)
        .sum();
    let u1 = r1 - n1 * (n1 + 1.0) / 2.0;
    let mean_u = n1 * n2 / 2.0;
    let nf = n as f64;
    let var_u = n1 * n2 / 12.0 * ((nf + 1.0) - tie_term / (nf * (nf - 1.0)));
    if var_u <= 0.0 {
        return None; // every value tied
    }
    // Continuity correction toward the mean.
    let cc = if u1 > mean_u {
        -0.5
    } else if u1 < mean_u {
        0.5
    } else {
        0.0
    };
    let z = (u1 - mean_u + cc) / var_u.sqrt();
    let p = 2.0 * (1.0 - normal_cdf(z.abs()));
    Some(MannWhitneyResult {
        u: u1,
        z,
        p,
        effect: 2.0 * u1 / (n1 * n2) - 1.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Pcg64;

    #[test]
    fn identical_samples_insignificant() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let r = mann_whitney_u(&a, &a).unwrap();
        assert!(r.p > 0.9, "p {}", r.p);
        assert!(r.effect.abs() < 1e-12);
    }

    #[test]
    fn shifted_samples_detected() {
        let mut rng = Pcg64::new(1);
        let a: Vec<f64> = (0..50).map(|_| rng.lognormal(0.0, 0.5)).collect();
        let b: Vec<f64> = (0..50).map(|_| rng.lognormal(0.6, 0.5)).collect();
        let r = mann_whitney_u(&a, &b).unwrap();
        assert!(r.p < 1e-4, "p {}", r.p);
        assert!(r.effect < -0.3, "effect {}", r.effect);
    }

    #[test]
    fn symmetric_in_arguments() {
        let a = [1.0, 3.0, 5.0, 7.0];
        let b = [2.0, 4.0, 6.0];
        let r1 = mann_whitney_u(&a, &b).unwrap();
        let r2 = mann_whitney_u(&b, &a).unwrap();
        assert!((r1.p - r2.p).abs() < 1e-10);
        assert!((r1.effect + r2.effect).abs() < 1e-10);
    }

    #[test]
    fn known_value_no_ties() {
        // a = {1,2,3}, b = {4,5,6}: U1 = 0, the most extreme split.
        let r = mann_whitney_u(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]).unwrap();
        assert_eq!(r.u, 0.0);
        assert_eq!(r.effect, -1.0);
        assert!(r.p < 0.1); // small n: normal approx gives ~0.08
    }

    #[test]
    fn tie_handling() {
        let a = [1.0, 2.0, 2.0, 3.0];
        let b = [2.0, 2.0, 4.0, 5.0];
        let r = mann_whitney_u(&a, &b).unwrap();
        assert!(r.p > 0.05 && r.p <= 1.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(mann_whitney_u(&[], &[1.0]).is_none());
        assert!(mann_whitney_u(&[1.0], &[]).is_none());
        assert!(mann_whitney_u(&[2.0, 2.0], &[2.0, 2.0]).is_none());
    }

    #[test]
    fn agrees_with_t_test_on_clean_data() {
        let mut rng = Pcg64::new(2);
        let a: Vec<f64> = (0..80).map(|_| rng.normal(0.0, 1.0)).collect();
        let b: Vec<f64> = (0..80).map(|_| rng.normal(0.5, 1.0)).collect();
        let mw = mann_whitney_u(&a, &b).unwrap();
        let t = crate::ttest::welch_t_test(&a, &b).unwrap();
        assert!(mw.p < 0.05);
        assert!(t.p < 0.05);
        // Same direction.
        assert_eq!(mw.effect < 0.0, t.diff < 0.0);
    }
}
