//! Streaming summary statistics and Student-t confidence intervals.
//!
//! The paper's Figure 16 reports `c_a` (mean discomfort contention) with
//! 95 % confidence intervals; [`Summary`] computes exactly that from a
//! stream of observations using Welford's numerically stable recurrence.

use crate::special::student_t_quantile;

/// Welford-style streaming mean / variance accumulator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds a summary from a slice.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut s = Self::new();
        for &x in xs {
            s.push(x);
        }
        s
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        assert!(x.is_finite(), "summary observations must be finite");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another summary into this one (parallel reduction friendly).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean; `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Unbiased sample variance; `None` if fewer than two observations.
    pub fn variance(&self) -> Option<f64> {
        (self.n > 1).then(|| self.m2 / (self.n - 1) as f64)
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> Option<f64> {
        self.std_dev().map(|s| s / (self.n as f64).sqrt())
    }

    /// Minimum observation; `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Maximum observation; `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Student-t confidence interval for the mean at the given confidence
    /// level (e.g. `0.95`). Returns `(lo, hi)`; `None` if fewer than two
    /// observations.
    pub fn confidence_interval(&self, level: f64) -> Option<(f64, f64)> {
        assert!(level > 0.0 && level < 1.0);
        let se = self.std_err()?;
        let df = (self.n - 1) as f64;
        let t = student_t_quantile(0.5 + level / 2.0, df);
        Some((self.mean - t * se, self.mean + t * se))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), None);
        assert_eq!(s.variance(), None);
        assert_eq!(s.confidence_interval(0.95), None);
    }

    #[test]
    fn known_mean_and_variance() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean().unwrap() - 5.0).abs() < 1e-12);
        // population variance = 4, sample variance = 32/7
        assert!((s.variance().unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn single_observation() {
        let s = Summary::from_slice(&[3.5]);
        assert_eq!(s.mean(), Some(3.5));
        assert_eq!(s.variance(), None);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let whole = Summary::from_slice(&xs);
        let mut a = Summary::from_slice(&xs[..37]);
        let b = Summary::from_slice(&xs[37..]);
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-10);
        assert!((a.variance().unwrap() - whole.variance().unwrap()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty() {
        let mut a = Summary::from_slice(&[1.0, 2.0]);
        a.merge(&Summary::new());
        assert_eq!(a.count(), 2);
        let mut e = Summary::new();
        e.merge(&Summary::from_slice(&[1.0, 2.0]));
        assert_eq!(e.mean(), Some(1.5));
    }

    #[test]
    fn ci_contains_mean_and_shrinks_with_n() {
        let mut wide = Summary::new();
        let mut narrow = Summary::new();
        let mut rng = crate::rng::Pcg64::new(99);
        for i in 0..1000 {
            let x = rng.normal(10.0, 2.0);
            if i < 10 {
                wide.push(x);
            }
            narrow.push(x);
        }
        let (wl, wh) = wide.confidence_interval(0.95).unwrap();
        let (nl, nh) = narrow.confidence_interval(0.95).unwrap();
        assert!(wl < wide.mean().unwrap() && wide.mean().unwrap() < wh);
        assert!(nh - nl < wh - wl);
        // True mean should be inside the big-sample CI.
        assert!(nl < 10.0 && 10.0 < nh);
    }

    #[test]
    fn ci_matches_hand_computation() {
        // n=4, mean=5, sd=2 => se=1, t_{0.975,3}=3.18245
        let s = Summary::from_slice(&[3.0, 4.0, 6.0, 7.0]);
        let (lo, hi) = s.confidence_interval(0.95).unwrap();
        let se = s.std_err().unwrap();
        assert!((s.mean().unwrap() - 5.0).abs() < 1e-12);
        assert!((hi - 5.0 - 3.182_446_305 * se).abs() < 1e-4);
        assert!((5.0 - lo - 3.182_446_305 * se).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        let mut s = Summary::new();
        s.push(f64::NAN);
    }
}
