//! Percentile bootstrap confidence intervals.
//!
//! Some of the paper's Figure 16 cells rest on very few observations
//! (Word/Disk has a CI of 1.89–6.51 around 4.20), where the Student-t
//! interval's normality assumption is shaky. The percentile bootstrap
//! makes no such assumption; the analysis reports both.

use crate::rng::Pcg64;

/// Percentile-bootstrap CI for the mean of `xs` at the given confidence
/// level, using `resamples` resamples drawn deterministically from
/// `seed`. Returns `None` for samples with fewer than two observations.
pub fn bootstrap_mean_ci(
    xs: &[f64],
    level: f64,
    resamples: usize,
    seed: u64,
) -> Option<(f64, f64)> {
    assert!(level > 0.0 && level < 1.0);
    assert!(resamples >= 100, "too few resamples for stable percentiles");
    if xs.len() < 2 {
        return None;
    }
    let mut rng = Pcg64::new(seed).split_str("bootstrap");
    let n = xs.len();
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut sum = 0.0;
        for _ in 0..n {
            sum += xs[rng.below(n as u64) as usize];
        }
        means.push(sum / n as f64);
    }
    means.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let alpha = (1.0 - level) / 2.0;
    let lo_idx = ((resamples as f64 * alpha).floor() as usize).min(resamples - 1);
    let hi_idx = ((resamples as f64 * (1.0 - alpha)).ceil() as usize).min(resamples - 1);
    Some((means[lo_idx], means[hi_idx]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_the_true_mean_for_clean_data() {
        let mut rng = Pcg64::new(1);
        let xs: Vec<f64> = (0..200).map(|_| rng.normal(5.0, 2.0)).collect();
        let (lo, hi) = bootstrap_mean_ci(&xs, 0.95, 2000, 7).unwrap();
        assert!(lo < 5.0 && 5.0 < hi, "({lo}, {hi})");
        // Reasonable width for n=200, sd=2: ~4 * 2/sqrt(200) = 0.57.
        assert!(hi - lo < 0.9, "width {}", hi - lo);
    }

    #[test]
    fn roughly_agrees_with_student_t_on_normal_data() {
        let mut rng = Pcg64::new(2);
        let xs: Vec<f64> = (0..60).map(|_| rng.normal(0.0, 1.0)).collect();
        let (blo, bhi) = bootstrap_mean_ci(&xs, 0.95, 4000, 8).unwrap();
        let (tlo, thi) = crate::summary::Summary::from_slice(&xs)
            .confidence_interval(0.95)
            .unwrap();
        assert!((blo - tlo).abs() < 0.15, "{blo} vs {tlo}");
        assert!((bhi - thi).abs() < 0.15, "{bhi} vs {thi}");
    }

    #[test]
    fn skewed_data_gives_asymmetric_interval() {
        let mut rng = Pcg64::new(3);
        let xs: Vec<f64> = (0..40).map(|_| rng.lognormal(0.0, 1.2)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let (lo, hi) = bootstrap_mean_ci(&xs, 0.95, 4000, 9).unwrap();
        // Right-skew: the upper arm is longer.
        assert!(hi - mean > mean - lo, "({lo}, {mean}, {hi})");
    }

    #[test]
    fn deterministic_and_tiny_samples() {
        let xs = [1.0, 2.0, 4.0];
        let a = bootstrap_mean_ci(&xs, 0.9, 500, 4);
        let b = bootstrap_mean_ci(&xs, 0.9, 500, 4);
        assert_eq!(a, b);
        assert!(bootstrap_mean_ci(&[1.0], 0.9, 500, 4).is_none());
        assert!(bootstrap_mean_ci(&[], 0.9, 500, 4).is_none());
    }
}
