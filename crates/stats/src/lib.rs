//! Statistical foundations for UUCS-RS.
//!
//! This crate is self-contained (no external dependencies) and provides:
//!
//! * a deterministic, splittable PCG-family random number generator
//!   ([`rng::Pcg64`]) so that the entire study regenerates bit-identically
//!   from one seed,
//! * the random variates the paper's testcase generators and user models
//!   need (exponential, Pareto, lognormal, normal, Poisson),
//! * empirical CDFs with right-censoring support ([`ecdf::Ecdf`]) — the
//!   paper's discomfort CDFs are censored at testcase exhaustion,
//! * summary statistics with Student-t confidence intervals
//!   ([`summary::Summary`]) as used in the paper's Figure 16,
//! * Welch's unpaired t-test and the paired t-test ([`ttest`]) as used in
//!   the paper's Figure 17 and the "frog in the pot" analysis (§3.3.5),
//!   plus the Mann–Whitney U test ([`mannwhitney`]) as a nonparametric
//!   robustness check,
//! * the special functions (ln-gamma, regularized incomplete beta, normal
//!   and Student-t CDFs/quantiles) everything above needs ([`special`]),
//! * quantile-based distribution fitting ([`fit`]) used to calibrate the
//!   synthetic user population from the paper's published statistics.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bootstrap;
pub mod ecdf;
pub mod fit;
pub mod ks;
pub mod mannwhitney;
pub mod rng;
pub mod special;
pub mod summary;
pub mod ttest;

pub use bootstrap::bootstrap_mean_ci;
pub use ecdf::Ecdf;
pub use mannwhitney::{mann_whitney_u, MannWhitneyResult};
pub use rng::Pcg64;
pub use summary::Summary;
pub use ttest::{paired_t_test, welch_t_test, TTestResult};
