//! Special functions: ln-gamma, regularized incomplete beta, and the
//! normal / Student-t distribution functions built on them.
//!
//! Everything is implemented from scratch (Lanczos approximation and the
//! Lentz continued-fraction evaluation) because the t-tests in the paper's
//! Figure 17 and §3.3.5 need real p-values, not table lookups.

/// Natural log of the gamma function, Lanczos approximation (g = 7, n = 9).
///
/// Accurate to ~1e-13 for x > 0.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7.
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// Continued-fraction evaluation (Numerical Recipes `betacf` scheme) with
/// the symmetry transform for convergence.
pub fn inc_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "inc_beta requires a,b > 0");
    assert!((0.0..=1.0).contains(&x), "inc_beta requires x in [0,1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta (modified Lentz's method).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// Series expansion for `x < a + 1`, continued fraction otherwise
/// (the classic `gammp`/`gammq` split). Accurate to ~1e-14.
pub fn inc_gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "inc_gamma_p requires a > 0");
    assert!(x >= 0.0, "inc_gamma_p requires x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_cf(a, x)
    }
}

/// Series representation of `P(a, x)` for `x < a + 1`.
fn gamma_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued-fraction representation of `Q(a, x) = 1 - P(a, x)` for
/// `x >= a + 1` (modified Lentz).
fn gamma_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Error function via the incomplete gamma identity
/// `erf(x) = sign(x) * P(1/2, x^2)`. Accurate to ~1e-14.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let p = inc_gamma_p(0.5, x * x);
    if x > 0.0 {
        p
    } else {
        -p
    }
}

/// Standard normal CDF, `Phi(z) = (1 + erf(z / sqrt(2))) / 2`.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Standard normal quantile (inverse CDF), Acklam's algorithm with one
/// Halley refinement step. Relative error ~1e-15 after refinement.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "normal_quantile requires p in (0,1), got {p}");
    // Acklam coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley step against the true CDF.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// CDF of Student's t distribution with `df` degrees of freedom.
pub fn student_t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "student_t_cdf requires df > 0");
    let x = df / (df + t * t);
    let p = 0.5 * inc_beta(0.5 * df, 0.5, x);
    if t >= 0.0 {
        1.0 - p
    } else {
        p
    }
}

/// Two-sided p-value for a t statistic.
pub fn student_t_two_sided_p(t: f64, df: f64) -> f64 {
    2.0 * (1.0 - student_t_cdf(t.abs(), df))
}

/// Quantile of Student's t distribution via bisection on the CDF.
///
/// Converges to ~1e-12; fast enough for confidence-interval construction.
pub fn student_t_quantile(p: f64, df: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "student_t_quantile requires p in (0,1)");
    assert!(df > 0.0);
    if (p - 0.5).abs() < 1e-15 {
        return 0.0;
    }
    // Bracket: normal quantile is a good center; t has heavier tails.
    let z = normal_quantile(p);
    let mut lo = z.abs() * -40.0 - 50.0;
    let mut hi = z.abs() * 40.0 + 50.0;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if student_t_cdf(mid, df) < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-12 * (1.0 + hi.abs()) {
            break;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn ln_gamma_known_values() {
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(5.0), 24.0f64.ln(), 1e-10); // gamma(5)=24
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-10);
        close(ln_gamma(10.5), 1_133_278.388_948_441_6f64.ln(), 1e-8);
    }

    #[test]
    fn ln_gamma_recurrence() {
        // Gamma(x+1) = x Gamma(x)  =>  lnG(x+1) = ln x + lnG(x)
        for &x in &[0.3, 1.7, 3.2, 9.9] {
            close(ln_gamma(x + 1.0), x.ln() + ln_gamma(x), 1e-10);
        }
    }

    #[test]
    fn inc_beta_boundaries_and_symmetry() {
        close(inc_beta(2.0, 3.0, 0.0), 0.0, 0.0);
        close(inc_beta(2.0, 3.0, 1.0), 1.0, 0.0);
        // I_x(a,b) = 1 - I_{1-x}(b,a)
        for &(a, b, x) in &[(2.0, 3.0, 0.3), (0.5, 0.5, 0.7), (5.0, 1.5, 0.42)] {
            close(inc_beta(a, b, x), 1.0 - inc_beta(b, a, 1.0 - x), 1e-12);
        }
    }

    #[test]
    fn inc_beta_uniform_case() {
        // I_x(1,1) = x
        for &x in &[0.1, 0.25, 0.5, 0.9] {
            close(inc_beta(1.0, 1.0, x), x, 1e-12);
        }
    }

    #[test]
    fn inc_beta_known_value() {
        // I_{0.5}(2,2) = 0.5 by symmetry; I_{0.25}(2,2) = 3x^2-2x^3 at 0.25
        close(inc_beta(2.0, 2.0, 0.5), 0.5, 1e-12);
        let x: f64 = 0.25;
        close(inc_beta(2.0, 2.0, x), 3.0 * x * x - 2.0 * x * x * x, 1e-12);
    }

    #[test]
    fn normal_cdf_values() {
        close(normal_cdf(0.0), 0.5, 0.0);
        close(normal_cdf(1.0), 0.841_344_746_068_543, 1e-12);
        close(normal_cdf(-1.0), 0.158_655_253_931_457, 1e-12);
        close(normal_cdf(1.959_963_985), 0.975, 1e-6);
        close(normal_cdf(3.0), 0.998_650_101_968_37, 1e-12);
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        for &p in &[0.001, 0.025, 0.05, 0.3, 0.5, 0.7, 0.95, 0.999] {
            let z = normal_quantile(p);
            close(normal_cdf(z), p, 1e-9);
        }
    }

    #[test]
    fn normal_quantile_known() {
        close(normal_quantile(0.975), 1.959_963_984_540_054, 1e-7);
        close(normal_quantile(0.05), -1.644_853_626_951_472, 1e-7);
    }

    #[test]
    fn t_cdf_limits_to_normal() {
        // For large df, t -> normal.
        close(student_t_cdf(1.96, 1e7), normal_cdf(1.96), 1e-5);
    }

    #[test]
    fn t_cdf_symmetry_and_center() {
        close(student_t_cdf(0.0, 5.0), 0.5, 1e-12);
        for &t in &[0.5, 1.3, 2.7] {
            close(student_t_cdf(t, 7.0) + student_t_cdf(-t, 7.0), 1.0, 1e-12);
        }
    }

    #[test]
    fn t_cdf_df1_is_cauchy() {
        // t with df=1 is Cauchy: CDF = 1/2 + atan(t)/pi
        for &t in &[-2.0, -0.5, 0.7, 3.0] {
            close(
                student_t_cdf(t, 1.0),
                0.5 + t.atan() / std::f64::consts::PI,
                1e-10,
            );
        }
    }

    #[test]
    fn t_quantile_inverts_cdf() {
        for &df in &[1.0, 4.0, 32.0, 200.0] {
            for &p in &[0.01, 0.05, 0.5, 0.9, 0.975] {
                let t = student_t_quantile(p, df);
                close(student_t_cdf(t, df), p, 1e-9);
            }
        }
    }

    #[test]
    fn t_quantile_known_critical_values() {
        // Standard table: t_{0.975, 10} = 2.228, t_{0.975, 30} = 2.042
        close(student_t_quantile(0.975, 10.0), 2.228_138_85, 1e-5);
        close(student_t_quantile(0.975, 30.0), 2.042_272_456, 1e-5);
    }

    #[test]
    fn two_sided_p_sane() {
        let p = student_t_two_sided_p(2.228_138_85, 10.0);
        close(p, 0.05, 1e-5);
        assert!(student_t_two_sided_p(0.0, 10.0) > 0.999_999);
    }
}
