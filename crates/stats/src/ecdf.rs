//! Empirical cumulative distribution functions with right-censoring.
//!
//! The paper's discomfort CDFs (Figures 10–12 and 18) are built from runs
//! that end in one of two ways: the user expressed discomfort at some
//! contention level (an *observed* point), or the testcase ran out without
//! feedback (an *exhausted* run — a right-censored observation: we only
//! know the user's threshold exceeds the ramp's ceiling). The paper plots
//! `F(c) = (# discomforted at level ≤ c) / (total runs)`, so exhausted runs
//! hold the CDF below 1; [`Ecdf`] reproduces exactly that convention and
//! carries the `DfCount` / `ExCount` labels shown on the figures.

/// An empirical CDF over discomfort contention levels, with censoring.
///
/// ```
/// use uucs_stats::Ecdf;
/// // Three users discomforted at levels 0.5/1.0/2.0; two never were.
/// let cdf = Ecdf::new(vec![0.5, 1.0, 2.0], 2);
/// assert_eq!(cdf.f_d(), Some(0.6));                 // Fig 14's metric
/// assert_eq!(cdf.quantile(0.2), Some(0.5));         // c_0.2
/// assert_eq!(cdf.eval(1.5), 0.4);                   // fraction at <= 1.5
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    /// Sorted observed (uncensored) values.
    observed: Vec<f64>,
    /// Number of right-censored runs (testcase exhausted, no feedback).
    censored: usize,
}

impl Ecdf {
    /// Builds an ECDF from observed discomfort levels and a count of
    /// exhausted (censored) runs. Non-finite observations are rejected.
    pub fn new(mut observed: Vec<f64>, censored: usize) -> Self {
        assert!(
            observed.iter().all(|x| x.is_finite()),
            "ECDF observations must be finite"
        );
        observed.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Ecdf { observed, censored }
    }

    /// Builds an ECDF with no censoring.
    pub fn uncensored(observed: Vec<f64>) -> Self {
        Self::new(observed, 0)
    }

    /// `DfCount` in the paper's figure labels: runs ending in discomfort.
    pub fn discomfort_count(&self) -> usize {
        self.observed.len()
    }

    /// `ExCount` in the paper's figure labels: runs ending in exhaustion.
    pub fn exhausted_count(&self) -> usize {
        self.censored
    }

    /// Total number of runs behind this CDF.
    pub fn total(&self) -> usize {
        self.observed.len() + self.censored
    }

    /// Returns true if there are no runs at all.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }

    /// The paper's `f_d` metric: fraction of runs that provoked discomfort,
    /// `DfCount / (DfCount + ExCount)`. Returns `None` for an empty CDF.
    pub fn f_d(&self) -> Option<f64> {
        if self.is_empty() {
            None
        } else {
            Some(self.observed.len() as f64 / self.total() as f64)
        }
    }

    /// Evaluates the cumulative fraction of *all* runs discomforted at
    /// contention ≤ `c` (censored runs never count as discomforted).
    pub fn eval(&self, c: f64) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let k = self.observed.partition_point(|&x| x <= c);
        k as f64 / self.total() as f64
    }

    /// The paper's `c_p` metric: the contention level that discomforts a
    /// fraction `p` of runs (e.g. `c_{0.05}` for `p = 0.05`). This inverts
    /// [`Self::eval`]; returns `None` if fewer than `p` of all runs ever
    /// became discomforted (the CDF saturates below `p` — the paper marks
    /// these cells `*`).
    pub fn quantile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&p), "quantile p must be in [0,1]");
        if self.is_empty() {
            return None;
        }
        let need = (p * self.total() as f64).ceil().max(1.0) as usize;
        if need > self.observed.len() {
            return None;
        }
        Some(self.observed[need - 1])
    }

    /// The paper's `c_a` metric: mean contention level at which discomfort
    /// occurred, over discomforted runs only. `None` if none.
    pub fn mean_discomfort_level(&self) -> Option<f64> {
        if self.observed.is_empty() {
            None
        } else {
            Some(self.observed.iter().sum::<f64>() / self.observed.len() as f64)
        }
    }

    /// The observed (uncensored) values, ascending.
    pub fn observed(&self) -> &[f64] {
        &self.observed
    }

    /// Step-function vertices `(level, cumulative fraction)` suitable for
    /// plotting or printing a figure: one point per distinct observed level.
    pub fn steps(&self) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        let total = self.total();
        if total == 0 {
            return out;
        }
        let mut i = 0;
        while i < self.observed.len() {
            let v = self.observed[i];
            let mut j = i;
            while j < self.observed.len() && self.observed[j] == v {
                j += 1;
            }
            out.push((v, j as f64 / total as f64));
            i = j;
        }
        out
    }

    /// Renders the CDF as a fixed-width ASCII plot like the paper's figures,
    /// labeled with DfCount/ExCount. `width`×`height` character cells.
    pub fn render_ascii(&self, title: &str, width: usize, height: usize) -> String {
        let steps = self.steps();
        let mut out = String::new();
        out.push_str(&format!(
            "{title}  (DfCount={}, ExCount={})\n",
            self.discomfort_count(),
            self.exhausted_count()
        ));
        if steps.is_empty() {
            out.push_str("  (no discomfort observations)\n");
            return out;
        }
        let xmax = steps.last().unwrap().0.max(1e-9);
        let mut grid = vec![vec![b' '; width]; height];
        let mut cols: Vec<(usize, usize)> = Vec::with_capacity(width);
        for col in 0..width {
            let c = xmax * (col as f64 + 0.5) / width as f64;
            let y = self.eval(c); // in [0,1]
            let row = ((1.0 - y) * (height as f64 - 1.0)).round() as usize;
            cols.push((row.min(height - 1), col));
        }
        for (row, col) in cols {
            grid[row][col] = b'*';
        }
        for (r, row) in grid.iter().enumerate() {
            let yl = 1.0 - r as f64 / (height as f64 - 1.0);
            out.push_str(&format!("{yl:5.2} |"));
            out.push_str(std::str::from_utf8(row).unwrap());
            out.push('\n');
        }
        out.push_str(&format!("      +{}\n", "-".repeat(width)));
        out.push_str(&format!("       0{:>w$.2}\n", xmax, w = width - 1));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_basic_step() {
        let e = Ecdf::uncensored(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.5), 0.5);
        assert_eq!(e.eval(100.0), 1.0);
    }

    #[test]
    fn censoring_holds_cdf_below_one() {
        let e = Ecdf::new(vec![1.0, 2.0], 2);
        assert_eq!(e.eval(100.0), 0.5);
        assert_eq!(e.f_d(), Some(0.5));
        assert_eq!(e.discomfort_count(), 2);
        assert_eq!(e.exhausted_count(), 2);
    }

    #[test]
    fn quantile_inverts_eval() {
        let e = Ecdf::new(vec![0.5, 1.0, 1.5, 2.0, 2.5], 5);
        // total = 10; 5th percentile needs ceil(0.05*10)=1 obs -> 0.5
        assert_eq!(e.quantile(0.05), Some(0.5));
        // 50th percentile needs 5 observations -> 2.5
        assert_eq!(e.quantile(0.5), Some(2.5));
        // 60th percentile needs 6 observed but only 5 exist -> None
        assert_eq!(e.quantile(0.6), None);
    }

    #[test]
    fn quantile_empty_and_zero_p() {
        let e = Ecdf::uncensored(vec![]);
        assert_eq!(e.quantile(0.05), None);
        assert_eq!(e.f_d(), None);
        let e2 = Ecdf::uncensored(vec![3.0]);
        // p=0 still requires at least one observation by convention
        assert_eq!(e2.quantile(0.0), Some(3.0));
    }

    #[test]
    fn mean_discomfort_level() {
        let e = Ecdf::new(vec![1.0, 3.0], 7);
        assert_eq!(e.mean_discomfort_level(), Some(2.0));
        let none = Ecdf::new(vec![], 7);
        assert_eq!(none.mean_discomfort_level(), None);
    }

    #[test]
    fn steps_deduplicate() {
        let e = Ecdf::uncensored(vec![1.0, 1.0, 2.0]);
        assert_eq!(
            e.steps(),
            vec![(1.0, 2.0 / 3.0), (2.0, 1.0)]
        );
    }

    #[test]
    fn render_ascii_contains_counts() {
        let e = Ecdf::new(vec![0.2, 0.4, 0.8, 1.6], 2);
        let s = e.render_ascii("CDF test", 40, 10);
        assert!(s.contains("DfCount=4"));
        assert!(s.contains("ExCount=2"));
        assert!(s.lines().count() > 10);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        Ecdf::uncensored(vec![f64::NAN]);
    }

    #[test]
    fn monotone_nondecreasing_property() {
        let e = Ecdf::new(vec![0.3, 0.9, 1.2, 2.2, 5.0], 3);
        let mut prev = -1.0;
        for i in 0..600 {
            let y = e.eval(i as f64 * 0.01);
            assert!(y >= prev);
            assert!((0.0..=1.0).contains(&y));
            prev = y;
        }
    }
}
