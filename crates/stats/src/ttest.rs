//! t-tests.
//!
//! The paper compares mean discomfort contention levels between
//! self-rated skill classes with *unpaired* t-tests (Figure 17) and the
//! ramp-vs-step "frog in the pot" levels with a paired comparison
//! (§3.3.5). We implement Welch's unequal-variance unpaired test (the
//! robust default for unequal group sizes like Power vs. Typical users)
//! and the classic paired t-test.

use crate::special::student_t_two_sided_p;
use crate::summary::Summary;

/// Result of a t-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TTestResult {
    /// The t statistic (sign follows `mean(a) - mean(b)`).
    pub t: f64,
    /// Degrees of freedom (Welch–Satterthwaite for the unpaired test).
    pub df: f64,
    /// Two-sided p-value.
    pub p: f64,
    /// Difference of means, `mean(a) - mean(b)` (the paper's "Diff").
    pub diff: f64,
}

impl TTestResult {
    /// One-sided p-value for the alternative `mean(a) > mean(b)`.
    pub fn p_one_sided_greater(&self) -> f64 {
        if self.t >= 0.0 {
            self.p / 2.0
        } else {
            1.0 - self.p / 2.0
        }
    }
}

/// Welch's unpaired two-sample t-test.
///
/// Returns `None` if either sample has fewer than two observations or if
/// both sample variances are zero (no spread to test against).
pub fn welch_t_test(a: &[f64], b: &[f64]) -> Option<TTestResult> {
    let sa = Summary::from_slice(a);
    let sb = Summary::from_slice(b);
    let (va, vb) = (sa.variance()?, sb.variance()?);
    let (na, nb) = (sa.count() as f64, sb.count() as f64);
    let se2 = va / na + vb / nb;
    if se2 <= 0.0 {
        return None;
    }
    let diff = sa.mean()? - sb.mean()?;
    let t = diff / se2.sqrt();
    // Welch–Satterthwaite degrees of freedom.
    let df = se2 * se2
        / ((va / na) * (va / na) / (na - 1.0) + (vb / nb) * (vb / nb) / (nb - 1.0));
    let p = student_t_two_sided_p(t, df);
    Some(TTestResult { t, df, p, diff })
}

/// Paired t-test over per-subject differences `a[i] - b[i]`.
///
/// Returns `None` if the slices differ in length, have fewer than two
/// pairs, or the differences have zero variance.
pub fn paired_t_test(a: &[f64], b: &[f64]) -> Option<TTestResult> {
    if a.len() != b.len() || a.len() < 2 {
        return None;
    }
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let s = Summary::from_slice(&diffs);
    let var = s.variance()?;
    if var <= 0.0 {
        return None;
    }
    let n = s.count() as f64;
    let diff = s.mean()?;
    let t = diff / (var / n).sqrt();
    let df = n - 1.0;
    let p = student_t_two_sided_p(t, df);
    Some(TTestResult { t, df, p, diff })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Pcg64;

    #[test]
    fn welch_identical_samples_insignificant() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let r = welch_t_test(&a, &a).unwrap();
        assert!((r.t).abs() < 1e-12);
        assert!(r.p > 0.999);
        assert_eq!(r.diff, 0.0);
    }

    #[test]
    fn welch_detects_clear_separation() {
        let mut rng = Pcg64::new(21);
        let a: Vec<f64> = (0..40).map(|_| rng.normal(10.0, 1.0)).collect();
        let b: Vec<f64> = (0..40).map(|_| rng.normal(12.0, 1.0)).collect();
        let r = welch_t_test(&a, &b).unwrap();
        assert!(r.p < 1e-6, "p = {}", r.p);
        assert!(r.diff < 0.0);
    }

    #[test]
    fn welch_no_false_positive_rate_inflation() {
        // Under the null, ~5% of tests should have p < 0.05.
        let mut rng = Pcg64::new(22);
        let mut hits = 0;
        let trials = 2000;
        for _ in 0..trials {
            let a: Vec<f64> = (0..15).map(|_| rng.normal(0.0, 1.0)).collect();
            let b: Vec<f64> = (0..15).map(|_| rng.normal(0.0, 1.0)).collect();
            if welch_t_test(&a, &b).unwrap().p < 0.05 {
                hits += 1;
            }
        }
        let rate = hits as f64 / trials as f64;
        assert!((rate - 0.05).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn welch_symmetry() {
        let a = [1.0, 2.5, 3.0, 4.0];
        let b = [2.0, 3.0, 5.0, 6.0, 7.0];
        let r1 = welch_t_test(&a, &b).unwrap();
        let r2 = welch_t_test(&b, &a).unwrap();
        assert!((r1.t + r2.t).abs() < 1e-12);
        assert!((r1.p - r2.p).abs() < 1e-12);
        assert!((r1.diff + r2.diff).abs() < 1e-12);
    }

    #[test]
    fn welch_known_value() {
        // Classic textbook example.
        let a = [27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6, 23.1, 19.6, 19.0, 21.7, 21.4];
        let b = [27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9, 22.1, 22.9, 30.5, 24.3];
        let r = welch_t_test(&a, &b).unwrap();
        // Reference (independently computed): t = -2.84720, df = 27.8847,
        // two-sided p = 0.0081856.
        assert!((r.t + 2.847_204_456).abs() < 1e-6, "t = {}", r.t);
        assert!((r.df - 27.884_749_467).abs() < 1e-6, "df = {}", r.df);
        assert!((r.p - 0.008_185_630).abs() < 1e-6, "p = {}", r.p);
    }

    #[test]
    fn welch_rejects_tiny_samples() {
        assert!(welch_t_test(&[1.0], &[2.0, 3.0]).is_none());
        assert!(welch_t_test(&[], &[]).is_none());
        // Zero variance on both sides: undefined.
        assert!(welch_t_test(&[2.0, 2.0], &[3.0, 3.0]).is_none());
    }

    #[test]
    fn paired_detects_consistent_shift() {
        let a = [5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        let b: Vec<f64> = a.iter().map(|&x: &f64| x - 0.5 + 0.01 * x.sin()).collect();
        let r = paired_t_test(&a, &b).unwrap();
        assert!(r.p < 0.001, "p = {}", r.p);
        assert!((r.diff - 0.5).abs() < 0.05);
    }

    #[test]
    fn paired_length_mismatch_is_none() {
        assert!(paired_t_test(&[1.0, 2.0], &[1.0]).is_none());
        assert!(paired_t_test(&[1.0], &[1.0]).is_none());
    }

    #[test]
    fn paired_zero_variance_is_none() {
        let a = [1.0, 2.0, 3.0];
        let b = [0.0, 1.0, 2.0]; // differences all exactly 1.0
        assert!(paired_t_test(&a, &b).is_none());
    }

    #[test]
    fn one_sided_p_direction() {
        let a = [10.0, 11.0, 12.0, 13.0];
        let b = [1.0, 2.0, 3.0, 4.0];
        let r = welch_t_test(&a, &b).unwrap();
        assert!(r.p_one_sided_greater() < 0.01);
        let r_rev = welch_t_test(&b, &a).unwrap();
        assert!(r_rev.p_one_sided_greater() > 0.99);
    }
}
