//! Deterministic random number generation.
//!
//! The whole UUCS-RS study must regenerate bit-identically from a single
//! seed, so we implement our own small PCG-family generator rather than
//! depending on an external crate whose stream might change across
//! versions. The generator is PCG XSL-RR 128/64 ("pcg64"): 128-bit LCG
//! state, 64-bit xorshift-low + random-rotate output.
//!
//! [`Pcg64::split`] derives an independent child stream from a label, which
//! is how per-user / per-run / per-testcase randomness is kept decoupled:
//! adding runs for one user never perturbs another user's draws.

/// Multiplier for the underlying 128-bit LCG (from the PCG reference
/// implementation).
const PCG_MUL: u128 = 0x2360_ed05_1fc6_5da4_4385_df64_9fcc_f645;

/// A deterministic PCG XSL-RR 128/64 generator.
///
/// ```
/// use uucs_stats::Pcg64;
/// let root = Pcg64::new(42);
/// let mut a = root.split_str("user-07");
/// let mut b = root.split_str("user-07");
/// assert_eq!(a.next_u64(), b.next_u64()); // same label, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg64 {
    state: u128,
    /// Stream selector; must be odd. Two generators with different
    /// increments produce independent sequences.
    inc: u128,
}

impl Pcg64 {
    /// Creates a generator from a 64-bit seed on the default stream.
    pub fn new(seed: u64) -> Self {
        Self::with_stream(seed, 0xda3e_39cb_94b9_5bdb)
    }

    /// Creates a generator from a seed and a stream id. Distinct stream ids
    /// yield statistically independent sequences for the same seed.
    pub fn with_stream(seed: u64, stream: u64) -> Self {
        let mut rng = Pcg64 {
            state: 0,
            inc: ((stream as u128) << 1) | 1,
        };
        // Standard PCG seeding dance: advance once, add seed, advance again.
        rng.step();
        rng.state = rng.state.wrapping_add(seed as u128);
        rng.step();
        rng
    }

    /// Derives an independent child generator labeled by `label`.
    ///
    /// The child is seeded from the parent's stream *without* consuming
    /// parent state, so the set of children is a pure function of
    /// `(parent seed, labels)`.
    pub fn split(&self, label: u64) -> Pcg64 {
        // Mix the label through splitmix64 so adjacent labels are far apart.
        let mixed = splitmix64(label ^ 0x9e37_79b9_7f4a_7c15);
        Pcg64::with_stream(
            (self.state as u64) ^ mixed,
            ((self.state >> 64) as u64).wrapping_add(splitmix64(label)),
        )
    }

    /// Derives a child generator from a string label (e.g. a testcase id).
    pub fn split_str(&self, label: &str) -> Pcg64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        for b in label.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.split(h)
    }

    #[inline]
    fn step(&mut self) {
        self.state = self.state.wrapping_mul(PCG_MUL).wrapping_add(self.inc);
    }

    /// Returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.step();
        let xored = ((self.state >> 64) as u64) ^ (self.state as u64);
        let rot = (self.state >> 122) as u32;
        xored.rotate_right(rot)
    }

    /// Returns the next 32 random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `(0, 1]` — safe as an argument to `ln`.
    #[inline]
    pub fn f64_open0(&mut self) -> f64 {
        1.0 - self.f64()
    }

    /// Uniform integer in `[0, bound)` using Lemire's multiply-shift
    /// rejection method (unbiased).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0,1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponential variate with rate `lambda` (mean `1/lambda`).
    ///
    /// Used for M/M/1 interarrival and service times (the paper's `expexp`
    /// exercise-function generator).
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        assert!(lambda > 0.0);
        -self.f64_open0().ln() / lambda
    }

    /// Pareto variate with scale `x_min > 0` and shape `alpha > 0`.
    ///
    /// Used for M/G/1 heavy-tailed job sizes (the paper's `exppar`
    /// generator).
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        assert!(x_min > 0.0 && alpha > 0.0);
        x_min / self.f64_open0().powf(1.0 / alpha)
    }

    /// Standard normal variate via the Marsaglia polar method.
    pub fn standard_normal(&mut self) -> f64 {
        loop {
            let u = self.uniform(-1.0, 1.0);
            let v = self.uniform(-1.0, 1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Normal variate with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.standard_normal()
    }

    /// Lognormal variate: `exp(N(mu, sigma))`.
    ///
    /// This is the shape of the synthetic users' discomfort thresholds.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Poisson variate with mean `lambda`.
    ///
    /// Knuth's product method for small `lambda`, normal approximation with
    /// continuity correction for large `lambda` (the client's testcase
    /// arrival process never needs exactness above ~30).
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(lambda >= 0.0);
        if lambda == 0.0 {
            return 0;
        }
        if lambda < 30.0 {
            let limit = (-lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= self.f64_open0();
                if p <= limit {
                    return k;
                }
                k += 1;
            }
        } else {
            let x = self.normal(lambda, lambda.sqrt());
            if x < 0.5 {
                0
            } else {
                (x + 0.5) as u64
            }
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Chooses one element uniformly. Panics on an empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "choose from empty slice");
        &xs[self.below(xs.len() as u64) as usize]
    }

    /// Samples `k` distinct indices from `0..n` (reservoir-free partial
    /// Fisher–Yates; order is random). Used by the client's "growing random
    /// sample" hot-sync policy.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.below((n - i) as u64) as usize;
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

/// splitmix64 mixing function (public-domain reference constants).
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Pcg64::new(42);
        let mut b = Pcg64::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Pcg64::new(1);
        let mut b = Pcg64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_is_pure_and_independent() {
        let root = Pcg64::new(7);
        let mut c1 = root.split(1);
        let mut c1b = root.split(1);
        let mut c2 = root.split(2);
        assert_eq!(c1.next_u64(), c1b.next_u64());
        // Extremely unlikely to collide if independent.
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn split_str_matches_itself() {
        let root = Pcg64::new(9);
        let mut a = root.split_str("testcase-17");
        let mut b = root.split_str("testcase-17");
        let mut c = root.split_str("testcase-18");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Pcg64::new(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = Pcg64::new(4);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Pcg64::new(5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let x = r.below(7) as usize;
            assert!(x < 7);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn exponential_mean() {
        let mut r = Pcg64::new(6);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn pareto_min_respected_and_mean() {
        let mut r = Pcg64::new(7);
        let n = 200_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.pareto(1.0, 3.0);
            assert!(x >= 1.0);
            sum += x;
        }
        // mean = alpha/(alpha-1) = 1.5 for alpha=3, x_min=1
        let mean = sum / n as f64;
        assert!((mean - 1.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut r = Pcg64::new(8);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.02, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn lognormal_median() {
        let mut r = Pcg64::new(9);
        let n = 100_001;
        let mut xs: Vec<f64> = (0..n).map(|_| r.lognormal(0.7, 0.5)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[n / 2];
        assert!((median - 0.7f64.exp()).abs() < 0.05, "median {median}");
    }

    #[test]
    fn poisson_small_and_large_means() {
        let mut r = Pcg64::new(10);
        for &lambda in &[0.5, 3.0, 12.0, 80.0] {
            let n = 50_000;
            let mean: f64 = (0..n).map(|_| r.poisson(lambda) as f64).sum::<f64>() / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.05,
                "lambda {lambda} mean {mean}"
            );
        }
    }

    #[test]
    fn poisson_zero() {
        let mut r = Pcg64::new(11);
        assert_eq!(r.poisson(0.0), 0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Pcg64::new(12);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>()); // astronomically unlikely
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut r = Pcg64::new(13);
        let s = r.sample_indices(50, 10);
        assert_eq!(s.len(), 10);
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 10);
        assert!(s.iter().all(|&i| i < 50));
    }

    #[test]
    fn sample_indices_k_exceeds_n() {
        let mut r = Pcg64::new(14);
        let s = r.sample_indices(3, 10);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn range_inclusive_endpoints_reachable() {
        let mut r = Pcg64::new(15);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2000 {
            match r.range_inclusive(5, 9) {
                5 => lo_seen = true,
                9 => hi_seen = true,
                x => assert!((5..=9).contains(&x)),
            }
        }
        assert!(lo_seen && hi_seen);
    }
}
