//! Quantile-based distribution fitting.
//!
//! The synthetic user population (`uucs-comfort`) is calibrated from the
//! paper's *published* per-cell statistics: the fraction of runs ending in
//! discomfort `f_d` (Figure 14), the 5th-percentile discomfort level
//! `c_0.05` (Figure 15), and the mean discomfort level `c_a` (Figure 16).
//! A lognormal threshold distribution is pinned down by any two quantiles,
//! so we solve for `(mu, sigma)` from two `(value, probability)` pairs —
//! typically `(c_0.05, 0.05)` and `(ramp ceiling, f_d)` — which makes the
//! regenerated CDFs pass exactly through the paper's reported points.

use crate::special::normal_quantile;

/// Parameters of a lognormal distribution, `exp(N(mu, sigma))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lognormal {
    /// Mean of the underlying normal.
    pub mu: f64,
    /// Standard deviation of the underlying normal (> 0).
    pub sigma: f64,
}

impl Lognormal {
    /// CDF at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        crate::special::normal_cdf((x.ln() - self.mu) / self.sigma)
    }

    /// Quantile at probability `p` in (0,1).
    pub fn quantile(&self, p: f64) -> f64 {
        (self.mu + self.sigma * normal_quantile(p)).exp()
    }

    /// Mean of the lognormal, `exp(mu + sigma^2/2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    /// Median, `exp(mu)`.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// Mean of the distribution truncated to `(0, cap]`, i.e.
    /// `E[X | X <= cap]`. Used to predict the paper's `c_a` (which averages
    /// only *observed* discomfort levels, censored at the ramp ceiling).
    pub fn truncated_mean(&self, cap: f64) -> f64 {
        assert!(cap > 0.0);
        let z = (cap.ln() - self.mu) / self.sigma;
        let denom = crate::special::normal_cdf(z);
        if denom <= 1e-300 {
            return cap; // essentially nothing below cap
        }
        let num = crate::special::normal_cdf(z - self.sigma);
        self.mean() * num / denom
    }

    /// Draws a variate using the supplied RNG.
    pub fn sample(&self, rng: &mut crate::rng::Pcg64) -> f64 {
        rng.lognormal(self.mu, self.sigma)
    }
}

/// Fits a lognormal through two quantile points `(x1, p1)` and `(x2, p2)`.
///
/// Requires `0 < p1, p2 < 1`, `p1 != p2`, and `x1, x2 > 0` with the values
/// ordered consistently with the probabilities. Returns `None` if the
/// inputs are degenerate (equal values or inconsistent ordering), in which
/// case the caller should fall back to [`fit_from_median_and_spread`].
pub fn fit_from_quantiles(x1: f64, p1: f64, x2: f64, p2: f64) -> Option<Lognormal> {
    if !(x1 > 0.0 && x2 > 0.0) || p1 <= 0.0 || p1 >= 1.0 || p2 <= 0.0 || p2 >= 1.0 {
        return None;
    }
    if (p1 - p2).abs() < 1e-9 || (x1 - x2).abs() < 1e-12 {
        return None;
    }
    let z1 = normal_quantile(p1);
    let z2 = normal_quantile(p2);
    let sigma = (x2.ln() - x1.ln()) / (z2 - z1);
    if sigma <= 0.0 || !sigma.is_finite() {
        return None;
    }
    let mu = x1.ln() - sigma * z1;
    Some(Lognormal { mu, sigma })
}

/// Fallback fit when only a central level and a relative spread are known:
/// treats `median` as `exp(mu)` and `spread` as `sigma` directly.
pub fn fit_from_median_and_spread(median: f64, sigma: f64) -> Lognormal {
    assert!(median > 0.0 && sigma > 0.0);
    Lognormal {
        mu: median.ln(),
        sigma,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_reproduces_both_quantiles() {
        let f = fit_from_quantiles(0.35, 0.05, 7.0, 0.86).unwrap();
        assert!((f.cdf(0.35) - 0.05).abs() < 1e-9);
        assert!((f.cdf(7.0) - 0.86).abs() < 1e-9);
        assert!((f.quantile(0.05) - 0.35).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs_are_none() {
        assert!(fit_from_quantiles(1.0, 0.5, 1.0, 0.6).is_none()); // same value
        assert!(fit_from_quantiles(1.0, 0.5, 2.0, 0.5).is_none()); // same prob
        assert!(fit_from_quantiles(-1.0, 0.5, 2.0, 0.6).is_none()); // nonpositive
        // Inconsistent ordering (larger value, smaller prob) => sigma < 0.
        assert!(fit_from_quantiles(2.0, 0.9, 5.0, 0.1).is_none());
    }

    #[test]
    fn median_and_mean_relations() {
        let f = Lognormal { mu: 0.5, sigma: 0.8 };
        assert!((f.median() - 0.5f64.exp()).abs() < 1e-12);
        assert!((f.mean() - (0.5f64 + 0.32).exp()).abs() < 1e-12);
        assert!(f.mean() > f.median()); // right-skew
    }

    #[test]
    fn truncated_mean_below_cap_and_below_mean() {
        let f = Lognormal { mu: 0.0, sigma: 1.0 };
        let tm = f.truncated_mean(2.0);
        assert!(tm < 2.0);
        assert!(tm < f.mean());
        // A huge cap converges to the full mean.
        assert!((f.truncated_mean(1e9) - f.mean()).abs() < 1e-6);
    }

    #[test]
    fn truncated_mean_monte_carlo_agreement() {
        let f = Lognormal { mu: 0.2, sigma: 0.6 };
        let cap = 1.5;
        let mut rng = crate::rng::Pcg64::new(31);
        let mut sum = 0.0;
        let mut n = 0u64;
        for _ in 0..400_000 {
            let x = f.sample(&mut rng);
            if x <= cap {
                sum += x;
                n += 1;
            }
        }
        let mc = sum / n as f64;
        assert!((mc - f.truncated_mean(cap)).abs() < 0.01, "{mc}");
    }

    #[test]
    fn sample_respects_cdf() {
        let f = fit_from_quantiles(0.35, 0.05, 7.0, 0.86).unwrap();
        let mut rng = crate::rng::Pcg64::new(32);
        let n = 100_000;
        let below = (0..n).filter(|_| f.sample(&mut rng) <= 0.35).count();
        let frac = below as f64 / n as f64;
        assert!((frac - 0.05).abs() < 0.01, "{frac}");
    }

    #[test]
    fn fallback_fit() {
        let f = fit_from_median_and_spread(2.0, 0.5);
        assert!((f.quantile(0.5) - 2.0).abs() < 1e-9);
    }
}
