//! Two-sample Kolmogorov–Smirnov distance and asymptotic p-value.
//!
//! Used by the analysis tools to compare regenerated discomfort CDFs
//! against the paper's published shapes and by tests that check the
//! exercise-function generators (e.g. that `expexp` inter-arrival times
//! are actually exponential).

/// Two-sample KS statistic: the maximum vertical distance between the two
/// empirical CDFs. Panics if either sample is empty.
pub fn ks_statistic(a: &[f64], b: &[f64]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "KS needs non-empty samples");
    let mut sa: Vec<f64> = a.to_vec();
    let mut sb: Vec<f64> = b.to_vec();
    sa.sort_by(|x, y| x.partial_cmp(y).unwrap());
    sb.sort_by(|x, y| x.partial_cmp(y).unwrap());
    let (na, nb) = (sa.len() as f64, sb.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < sa.len() && j < sb.len() {
        let x = sa[i].min(sb[j]);
        while i < sa.len() && sa[i] <= x {
            i += 1;
        }
        while j < sb.len() && sb[j] <= x {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    d
}

/// Asymptotic two-sample KS p-value (Kolmogorov distribution tail).
pub fn ks_p_value(a: &[f64], b: &[f64]) -> f64 {
    let d = ks_statistic(a, b);
    let n_eff = (a.len() * b.len()) as f64 / (a.len() + b.len()) as f64;
    kolmogorov_tail((n_eff.sqrt() + 0.12 + 0.11 / n_eff.sqrt()) * d)
}

/// `Q_KS(lambda) = 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2)`.
fn kolmogorov_tail(lambda: f64) -> f64 {
    if lambda < 1e-3 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k * k) as f64 * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Pcg64;

    #[test]
    fn identical_samples_have_zero_distance() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(ks_statistic(&a, &a), 0.0);
        assert!(ks_p_value(&a, &a) > 0.999);
    }

    #[test]
    fn disjoint_samples_have_distance_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 20.0];
        assert_eq!(ks_statistic(&a, &b), 1.0);
    }

    #[test]
    fn same_distribution_high_p() {
        let mut rng = Pcg64::new(41);
        let a: Vec<f64> = (0..500).map(|_| rng.normal(0.0, 1.0)).collect();
        let b: Vec<f64> = (0..500).map(|_| rng.normal(0.0, 1.0)).collect();
        assert!(ks_p_value(&a, &b) > 0.01);
    }

    #[test]
    fn shifted_distribution_low_p() {
        let mut rng = Pcg64::new(42);
        let a: Vec<f64> = (0..500).map(|_| rng.normal(0.0, 1.0)).collect();
        let b: Vec<f64> = (0..500).map(|_| rng.normal(1.0, 1.0)).collect();
        assert!(ks_p_value(&a, &b) < 1e-6);
    }

    #[test]
    fn statistic_is_symmetric() {
        let a = [0.1, 0.5, 0.9, 1.4];
        let b = [0.2, 0.6, 0.6, 2.0, 3.0];
        assert_eq!(ks_statistic(&a, &b), ks_statistic(&b, &a));
    }

    #[test]
    fn hand_computed_distance() {
        // a = {1,2}, b = {1.5}: F_a jumps to .5 at 1, 1 at 2; F_b jumps to 1
        // at 1.5. Max gap is at 1.5-: |0.5 - 1.0| = 0.5... evaluated at 1.5
        // F_a=0.5, F_b=1.0 -> 0.5; at 1: |0.5-0|=0.5. D = 0.5.
        assert!((ks_statistic(&[1.0, 2.0], &[1.5]) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_sample_panics() {
        ks_statistic(&[], &[1.0]);
    }
}
