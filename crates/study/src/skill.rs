//! Figure 17: differences in discomfort levels between self-rated skill
//! classes, via unpaired (Welch) t-tests.
//!
//! "We compared the average discomfort contention levels for the
//! different groups of users defined by their self-ratings for each
//! context/resource combination using unpaired t-tests." (§3.3.4)

use crate::controlled::StudyData;
use uucs_comfort::{RatingDim, SkillLevel};
use uucs_protocol::RunOutcome;
use uucs_stats::{mann_whitney_u, welch_t_test};
use uucs_testcase::Resource;
use uucs_workloads::Task;

/// One row of the Figure 17 table.
#[derive(Debug, Clone, PartialEq)]
pub struct SkillRow {
    /// The context (App column).
    pub task: Task,
    /// The resource (Rsrc column).
    pub resource: Resource,
    /// The rating dimension and the two classes compared, e.g.
    /// `"Quake Power vs. Typical"`.
    pub rating: String,
    /// Two-sided p-value.
    pub p: f64,
    /// How much less contention the more-skilled class tolerates (the
    /// paper's Diff column; positive = skilled users are touchier).
    pub diff: f64,
    /// Sample sizes of the two groups.
    pub n: (usize, usize),
}

/// Discomfort contention levels of one user group in one cell (ramp runs
/// ending in discomfort — step runs all report at the plateau level, so
/// including them would censor away the group differences).
fn group_levels(
    data: &StudyData,
    task: Task,
    resource: Resource,
    dim: RatingDim,
    level: SkillLevel,
) -> Vec<f64> {
    let user_ids: std::collections::HashSet<&str> = data
        .population
        .users()
        .iter()
        .filter(|u| u.ratings.get(dim) == level)
        .map(|u| u.id.as_str())
        .collect();
    let marker = format!("{}-{}-ramp", task.name().to_lowercase(), resource.name());
    data.records
        .iter()
        .filter(|r| r.outcome == RunOutcome::Discomfort)
        .filter(|r| r.testcase == marker)
        .filter(|r| user_ids.contains(r.user.as_str()))
        .filter_map(|r| r.level_at_feedback(resource))
        .collect()
}

/// Computes every pairwise class comparison for every cell and rating
/// dimension, returning rows significant at `alpha` (the paper reports
/// the significant ones).
pub fn fig17(data: &StudyData, alpha: f64) -> Vec<SkillRow> {
    let mut rows = Vec::new();
    for &task in &Task::ALL {
        for &resource in &Resource::STUDIED {
            for &dim in &RatingDim::ALL {
                for (hi, lo) in [
                    (SkillLevel::Power, SkillLevel::Typical),
                    (SkillLevel::Typical, SkillLevel::Beginner),
                ] {
                    let a = group_levels(data, task, resource, dim, hi);
                    let b = group_levels(data, task, resource, dim, lo);
                    if let Some(t) = welch_t_test(&a, &b) {
                        // diff = how much less the skilled group tolerates.
                        let diff = -t.diff;
                        if t.p < alpha && diff > 0.0 {
                            rows.push(SkillRow {
                                task,
                                resource,
                                rating: format!("{} {} vs. {}", dim.name(), hi.name(), lo.name()),
                                p: t.p,
                                diff,
                                n: (a.len(), b.len()),
                            });
                        }
                    }
                }
            }
        }
    }
    rows.sort_by(|x, y| x.p.partial_cmp(&y.p).unwrap());
    rows
}

/// The same comparisons as [`fig17`] under the Mann–Whitney U rank test —
/// a nonparametric robustness check (discomfort levels are censored and
/// skewed, so rank tests are the safer inference; agreement between the
/// two confirms the t-test conclusions).
pub fn fig17_rank(data: &StudyData, alpha: f64) -> Vec<SkillRow> {
    let mut rows = Vec::new();
    for &task in &Task::ALL {
        for &resource in &Resource::STUDIED {
            for &dim in &RatingDim::ALL {
                for (hi, lo) in [
                    (SkillLevel::Power, SkillLevel::Typical),
                    (SkillLevel::Typical, SkillLevel::Beginner),
                ] {
                    let a = group_levels(data, task, resource, dim, hi);
                    let b = group_levels(data, task, resource, dim, lo);
                    if a.len() < 3 || b.len() < 3 {
                        continue;
                    }
                    if let Some(mw) = mann_whitney_u(&a, &b) {
                        // Skilled group lower => negative effect.
                        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
                        let diff = mean(&b) - mean(&a);
                        if mw.p < alpha && mw.effect < 0.0 && diff > 0.0 {
                            rows.push(SkillRow {
                                task,
                                resource,
                                rating: format!("{} {} vs. {}", dim.name(), hi.name(), lo.name()),
                                p: mw.p,
                                diff,
                                n: (a.len(), b.len()),
                            });
                        }
                    }
                }
            }
        }
    }
    rows.sort_by(|x, y| x.p.partial_cmp(&y.p).unwrap());
    rows
}

/// Renders the Figure 17 table.
pub fn render_fig17(data: &StudyData, alpha: f64) -> String {
    let rows = fig17(data, alpha);
    let mut out = format!(
        "Figure 17: Significant differences based on user-perceived skill level (p < {alpha})\n"
    );
    out.push_str(&format!(
        "{:<8} {:<8} {:<32} {:>8} {:>7} {:>9}\n",
        "App", "Rsrc", "Rating", "p", "Diff", "n"
    ));
    for r in &rows {
        out.push_str(&format!(
            "{:<8} {:<8} {:<32} {:>8.4} {:>7.3} {:>4}/{:<4}\n",
            r.task.name(),
            r.resource,
            r.rating,
            r.p,
            r.diff,
            r.n.0,
            r.n.1
        ));
    }
    if rows.is_empty() {
        out.push_str("(no significant differences at this sample size)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controlled::{ControlledStudy, StudyConfig};
    use uucs_comfort::Fidelity;

    /// A larger population so the skill effects reach significance (the
    /// paper's own Fig 17 results are "preliminary" at 33 users).
    fn big_data() -> StudyData {
        ControlledStudy::new(StudyConfig {
            seed: 21,
            users: 240,
            fidelity: Fidelity::Fast,
        })
        .run()
    }

    #[test]
    fn quake_power_users_significantly_touchier() {
        let rows = fig17(&big_data(), 0.05);
        assert!(
            rows.iter().any(|r| r.task == Task::Quake
                && r.resource == Resource::Cpu
                && r.rating.contains("Quake Power vs. Typical")),
            "expected the paper's strongest effect; got rows: {:#?}",
            rows.iter().map(|r| &r.rating).collect::<Vec<_>>()
        );
        // Effect direction: positive Diff, like the paper's 0.224.
        for r in rows.iter().filter(|r| r.task == Task::Quake) {
            assert!(r.diff > 0.0);
        }
    }

    #[test]
    fn ie_windows_disk_effect_present() {
        let rows = fig17(&big_data(), 0.05);
        assert!(rows
            .iter()
            .any(|r| r.task == Task::Ie
                && r.resource == Resource::Disk
                && r.rating.contains("Windows Power vs. Typical")));
    }

    #[test]
    fn ie_windows_memory_effect_exists_in_thresholds() {
        // The paper's IE/Mem skill effect (diff 0.354, p = 0.011) does not
        // reliably re-reach significance through the ramp-level censoring
        // of the regenerated study (the paper calls its own Fig 17
        // "preliminary"); the underlying population effect is still
        // present and in the paper's direction.
        let data = big_data();
        let mean_thr = |lvl| {
            let us = data
                .population
                .with_rating(uucs_comfort::RatingDim::Windows, lvl);
            us.iter()
                .map(|u| u.threshold(Task::Ie, Resource::Memory))
                .sum::<f64>()
                / us.len() as f64
        };
        let power = mean_thr(uucs_comfort::SkillLevel::Power);
        let typical = mean_thr(uucs_comfort::SkillLevel::Typical);
        assert!(
            power < typical,
            "Windows power users are touchier: {power} vs {typical}"
        );
    }

    #[test]
    fn rank_test_confirms_headline_effects() {
        let data = big_data();
        let rank_rows = fig17_rank(&data, 0.05);
        // The paper's two strongest effects survive the nonparametric
        // test.
        assert!(rank_rows.iter().any(|r| r.task == Task::Quake
            && r.resource == Resource::Cpu
            && r.rating.contains("Quake Power vs. Typical")));
        assert!(rank_rows.iter().any(|r| r.task == Task::Ie
            && r.resource == Resource::Disk
            && r.rating.contains("Windows Power vs. Typical")));
    }

    #[test]
    fn rows_sorted_by_p() {
        let rows = fig17(&big_data(), 0.10);
        for w in rows.windows(2) {
            assert!(w[0].p <= w[1].p);
        }
    }

    #[test]
    fn render_contains_columns() {
        let s = render_fig17(&big_data(), 0.05);
        assert!(s.contains("App"));
        assert!(s.contains("Diff"));
        assert!(s.contains("Quake"));
    }
}
