//! Fleet load driver: thousands of client state machines multiplexed
//! over a bounded worker pool, hammering a live `uucs-server` over TCP.
//!
//! The paper's Internet study topped out at dozens of volunteer
//! machines; this driver asks what the same server engine can sustain
//! at fleet scale. Each simulated client keeps one persistent TCP
//! connection (register → sync → a stream of sequenced uploads), but
//! the driver spends only [`FleetConfig::workers`] threads: a worker
//! owns a slice of clients and pipelines them — it writes one upload on
//! every socket of its slice, then collects every reply — so thousands
//! of requests are in flight at once against the server's worker pool
//! and group-commit batcher.
//!
//! The run reports sustained acked uploads/sec (measured client-side)
//! and the server's own p99 verb/commit latency, pulled over the wire
//! with the `STATS` verb at the end of the window.
//!
//! The driver survives its server: every client registers with an
//! idempotency token and, when its connection dies, fails over across
//! [`FleetConfig::failover`] addresses — re-registering with the same
//! token (same GUID back) and fast-forwarding its upload sequence past
//! the server's applied horizon, so a promoted replica neither loses
//! the identity nor double-applies a batch. A server death with no
//! surviving replica does not fail the run either: the outage window is
//! recorded and the report comes back partial with
//! [`FleetReport::interrupted`] set.

use std::io::{self, BufReader};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use uucs_protocol::wire::{read_server_msg, write_client_msg};
use uucs_protocol::{ClientMsg, MachineSnapshot, MonitorSummary, RunOutcome, RunRecord, ServerMsg};
use uucs_cluster::{AckMode, ClusterConfig, ClusterNode, Role};
use uucs_server::tcp::{self, EngineMode, ServeConfig};
use uucs_server::{StoreSet, UucsServer};
use uucs_telemetry::metrics;
use uucs_testcase::{ExerciseSpec, Resource, Testcase};
use uucs_wal::{SyncPolicy, WalConfig};
use uucs_wire::conn::{negotiate, Negotiated};
use uucs_wire::frame::{read_server_frame, write_client_frame};
use uucs_wire::WireMode;
use uucs_protocol::WIRE_VERSION_BINARY;

/// Tuning for a fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Simulated clients (each holds one persistent connection).
    pub clients: usize,
    /// Driver worker threads multiplexing the clients.
    pub workers: usize,
    /// Measurement window (after registration and a stats reset).
    pub duration: Duration,
    /// Records per upload batch.
    pub batch: usize,
    /// Talk to an already-running server instead of self-hosting one.
    pub addr: Option<String>,
    /// Additional server addresses a client fails over to when its
    /// current connection dies (a replicated tier's other nodes).
    pub failover: Vec<String>,
    /// Self-hosted server: store shards.
    pub shards: usize,
    /// Self-hosted server: group-commit interval (zero = per-append
    /// fsync, the pre-group-commit engine).
    pub commit_interval: Duration,
    /// Self-hosted server: TCP engine.
    pub engine: EngineMode,
    /// Wire framing each client asks for at dial time. `Text` keeps the
    /// legacy line protocol; `Binary`/`Auto` run the text `HELLO`
    /// negotiation and switch to wire v2 frames when the server agrees.
    pub wire: WireMode,
    /// Uploads each *binary* connection keeps in flight per round
    /// (request pipelining). Text connections always run depth 1 — the
    /// legacy one-reply-per-request discipline.
    pub pipeline: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            clients: 2000,
            workers: 4,
            duration: Duration::from_secs(10),
            batch: 2,
            addr: None,
            failover: Vec::new(),
            shards: 8,
            commit_interval: Duration::from_millis(1),
            engine: EngineMode::WorkerPool,
            wire: WireMode::Text,
            pipeline: 1,
        }
    }
}

impl FleetConfig {
    /// The CI smoke shape: small fleet, short window.
    pub fn quick() -> Self {
        FleetConfig {
            clients: 200,
            duration: Duration::from_secs(2),
            ..FleetConfig::default()
        }
    }

    /// The CI cluster-smoke shape: 50 clients against a two-node tier
    /// with one induced failover (see [`run_cluster`]).
    pub fn cluster_quick() -> Self {
        FleetConfig {
            clients: 50,
            duration: Duration::from_secs(2),
            ..FleetConfig::default()
        }
    }
}

/// What a fleet run measured.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Clients that completed registration and held a connection.
    pub clients: usize,
    /// Upload exchanges acknowledged inside the window.
    pub uploads_acked: u64,
    /// Records carried by those uploads.
    pub records: u64,
    /// The measured window.
    pub elapsed: Duration,
    /// Sustained acked uploads per second.
    pub uploads_per_sec: f64,
    /// Server-side p99 of the upload verb (handling, excluding the
    /// commit wait), from `STATS`.
    pub upload_p99_us: Option<u64>,
    /// Server-side p99 of the group-commit fsync pass, from `STATS`.
    pub commit_p99_us: Option<u64>,
    /// The fleet ended the window without a reachable server: the
    /// numbers are a partial report up to the outage, not a failure.
    pub interrupted: bool,
    /// Total wall time the whole fleet was dark (no server reachable).
    pub outage: Duration,
    /// Successful client failovers to a different server address.
    pub failovers: u64,
}

impl FleetReport {
    /// One-line human summary.
    pub fn summary(&self) -> String {
        let mut line = format!(
            "fleet: {} clients, {} uploads acked in {:.2}s = {:.0} uploads/s ({} records; upload p99 {}, commit p99 {})",
            self.clients,
            self.uploads_acked,
            self.elapsed.as_secs_f64(),
            self.uploads_per_sec,
            self.records,
            self.upload_p99_us
                .map_or("n/a".to_string(), |u| format!("{u}us")),
            self.commit_p99_us
                .map_or("n/a".to_string(), |u| format!("{u}us")),
        );
        if self.failovers > 0 || !self.outage.is_zero() {
            line.push_str(&format!(
                "; {} failover(s), {:.2}s outage",
                self.failovers,
                self.outage.as_secs_f64()
            ));
        }
        if self.interrupted {
            line.push_str(" [INTERRUPTED: server unreachable at window end]");
        }
        line
    }
}

/// One fleet client's half-duplex connection: requests and replies move
/// independently so a worker can pipeline its whole slice. The client
/// knows every server address and its own idempotency token, so a dead
/// connection is survivable: [`FleetConn::reconnect`] re-registers with
/// the token (the server answers with the *same* GUID and the applied
/// upload horizon) and fast-forwards `seq` so nothing is double-applied
/// on the node it failed over to.
struct FleetConn {
    addrs: Vec<String>,
    current: usize,
    name: String,
    wire: WireMode,
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    id: String,
    seq: u64,
    alive: bool,
    /// Replies owed on this connection. Text connections never owe more
    /// than one; binary connections owe up to the pipeline depth.
    pending: u32,
    /// Connection speaks wire v2 binary frames (negotiated at dial).
    binary: bool,
    /// Next request id to stamp on a binary frame.
    next_req: u32,
    /// Request id the next reply must carry (the server redeems FIFO).
    ack_req: u32,
}

impl FleetConn {
    /// Dials one address: negotiates the wire (per address — a legacy
    /// follower behind a v2 leader still gets text), registers `name`'s
    /// token, and returns the sockets, the negotiated framing, the
    /// resolved GUID, and the seq to resume from (the server's applied
    /// horizon, never below `seq_floor`).
    fn dial(
        addr: &str,
        name: &str,
        wire: WireMode,
        seq_floor: u64,
    ) -> io::Result<(TcpStream, BufReader<TcpStream>, bool, String, u64)> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let mut writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        let binary = match wire {
            WireMode::Text => false,
            WireMode::Binary | WireMode::Auto => {
                match negotiate(&mut writer, &mut reader, WIRE_VERSION_BINARY)? {
                    Negotiated::Version(v) if v >= WIRE_VERSION_BINARY => true,
                    _ if matches!(wire, WireMode::Binary) => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("server {addr} cannot speak the binary wire"),
                        ));
                    }
                    _ => false,
                }
            }
        };
        let register = ClientMsg::Register {
            snapshot: MachineSnapshot::study_machine(name),
            token: format!("fleet-token-{name}"),
        };
        let reply = if binary {
            write_client_frame(&mut writer, 0, &register)?;
            read_server_frame(&mut reader)?.1
        } else {
            write_client_msg(&mut writer, &register)?;
            read_server_msg(&mut reader)?
        };
        match reply {
            ServerMsg::Id { id, applied_seq } => {
                Ok((writer, reader, binary, id, applied_seq.max(seq_floor)))
            }
            // A read-only replica answers `not leader`: to the dialer
            // that address is simply not accepting yet.
            other => Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("registration refused: {other:?}"),
            )),
        }
    }

    fn connect(addrs: Vec<String>, name: &str, wire: WireMode) -> io::Result<Self> {
        let mut last: Option<io::Error> = None;
        for (i, addr) in addrs.iter().enumerate() {
            match Self::dial(addr, name, wire, 0) {
                Ok((writer, reader, binary, id, seq)) => {
                    return Ok(FleetConn {
                        current: i,
                        name: name.to_string(),
                        wire,
                        addrs,
                        writer,
                        reader,
                        id,
                        seq,
                        alive: true,
                        pending: 0,
                        binary,
                        next_req: 1,
                        ack_req: 1,
                    })
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last
            .unwrap_or_else(|| io::Error::new(io::ErrorKind::AddrNotAvailable, "no address")))
    }

    /// One failover pass: every address tried once, next one first.
    /// `Ok(true)` means the client came back on a *different* address.
    fn reconnect(&mut self) -> io::Result<bool> {
        let n = self.addrs.len();
        let mut last: Option<io::Error> = None;
        for hop in 0..n {
            let i = (self.current + 1 + hop) % n;
            match Self::dial(&self.addrs[i], &self.name, self.wire, self.seq) {
                Ok((writer, reader, binary, id, seq)) => {
                    let moved = i != self.current;
                    self.current = i;
                    self.writer = writer;
                    self.reader = reader;
                    self.binary = binary;
                    self.id = id;
                    self.seq = seq;
                    self.alive = true;
                    self.pending = 0;
                    self.next_req = 1;
                    self.ack_req = 1;
                    return Ok(moved);
                }
                Err(e) => last = Some(e),
            }
        }
        self.alive = false;
        Err(last.unwrap_or_else(|| io::Error::new(io::ErrorKind::AddrNotAvailable, "no address")))
    }

    fn send_upload(&mut self, batch: usize) -> io::Result<()> {
        self.seq += 1;
        let records = (0..batch)
            .map(|i| RunRecord {
                client: self.id.clone(),
                user: String::new(),
                testcase: format!("fleet-{}-{}", self.seq, i),
                task: "IE".into(),
                skill: "Typical".into(),
                outcome: RunOutcome::Discomfort,
                offset_secs: 10.0,
                last_levels: vec![(Resource::Cpu, vec![2.0])],
                monitor: MonitorSummary::default(),
            })
            .collect();
        let upload = ClientMsg::Upload {
            client: self.id.clone(),
            seq: self.seq,
            records,
        };
        if self.binary {
            let req = self.next_req;
            self.next_req = self.next_req.wrapping_add(1);
            write_client_frame(&mut self.writer, req, &upload)
        } else {
            write_client_msg(&mut self.writer, &upload)
        }
    }

    fn recv_ack(&mut self) -> io::Result<bool> {
        if self.binary {
            let (req, msg) = read_server_frame(&mut self.reader)?;
            let expected = self.ack_req;
            self.ack_req = self.ack_req.wrapping_add(1);
            Ok(req == expected && matches!(msg, ServerMsg::Ack(_)))
        } else {
            Ok(matches!(
                read_server_msg(&mut self.reader)?,
                ServerMsg::Ack(_)
            ))
        }
    }

    fn bye(&mut self) {
        let _ = if self.binary {
            write_client_frame(&mut self.writer, self.next_req, &ClientMsg::Bye)
        } else {
            write_client_msg(&mut self.writer, &ClientMsg::Bye)
        };
    }
}

/// Pulls the server's metrics snapshot over the wire and extracts the
/// p99 of one histogram, in microseconds.
fn stats_p99_us(addr: &str, hist: &str) -> Option<u64> {
    let stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .ok()?;
    let mut writer = stream.try_clone().ok()?;
    let mut reader = BufReader::new(stream);
    write_client_msg(&mut writer, &ClientMsg::Stats { reset: false }).ok()?;
    let json = match read_server_msg(&mut reader).ok()? {
        ServerMsg::Stats(json) => json,
        _ => return None,
    };
    hist_p99_ns(&json, hist).map(|ns| ns / 1000)
}

/// Extracts `"name":{..."p99_ns":N...}` from the snapshot JSON with a
/// plain string scan (the format is machine-generated and stable).
fn hist_p99_ns(json: &str, name: &str) -> Option<u64> {
    let key = format!("\"{name}\":{{");
    let start = json.find(&key)? + key.len();
    let body = &json[start..json[start..].find('}')? + start];
    let p = body.find("\"p99_ns\":")? + "\"p99_ns\":".len();
    let digits: String = body[p..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// A self-hosted server for fleet runs without an external `--addr`:
/// WAL-backed sharded stores in a scratch directory, group commit when
/// the interval is nonzero, and the requested TCP engine.
struct HostedServer {
    handle: Option<tcp::ServerHandle>,
    dir: std::path::PathBuf,
}

impl HostedServer {
    fn start(config: &FleetConfig) -> io::Result<Self> {
        static NONCE: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "uucs-fleet-{}-{}",
            std::process::id(),
            NONCE.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir)?;
        let group_commit = !config.commit_interval.is_zero();
        let wal = WalConfig {
            sync: if group_commit {
                SyncPolicy::Never
            } else {
                SyncPolicy::Always
            },
            ..WalConfig::default()
        };
        let (stores, _) = StoreSet::open(&dir, wal, config.shards)?;
        let mut server = UucsServer::with_store_set(stores, 0x5e17).without_model_updates();
        if group_commit {
            server = server.with_group_commit(config.commit_interval);
        }
        let server = Arc::new(server);
        for i in 0..8 {
            server
                .add_testcase(Testcase::single(
                    format!("fleet-lib-{i}"),
                    1.0,
                    Resource::Cpu,
                    ExerciseSpec::Ramp {
                        level: 2.0,
                        duration: 10.0,
                    },
                ))
                .map_err(|e| io::Error::other(e.to_string()))?;
        }
        let handle = tcp::serve_with(
            server,
            "127.0.0.1:0",
            ServeConfig {
                engine: config.engine,
                max_connections: config.clients + 64,
                ..ServeConfig::default()
            },
        )?;
        Ok(HostedServer {
            handle: Some(handle),
            dir,
        })
    }

    fn addr(&self) -> String {
        self.handle.as_ref().expect("running").addr().to_string()
    }
}

impl Drop for HostedServer {
    fn drop(&mut self) {
        if let Some(h) = self.handle.take() {
            h.shutdown();
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Runs the fleet against `config.addr` (or a self-hosted server) and
/// reports sustained throughput and server-side tail latency.
pub fn run(config: &FleetConfig) -> io::Result<FleetReport> {
    let hosted = match &config.addr {
        Some(_) => None,
        None => Some(HostedServer::start(config)?),
    };
    let addr: String = config
        .addr
        .clone()
        .unwrap_or_else(|| hosted.as_ref().expect("self-hosted").addr());
    let mut addrs = vec![addr.clone()];
    addrs.extend(config.failover.iter().cloned());

    // Phase 1: bring the whole fleet online (register + hold the
    // connection). Workers connect their slices concurrently.
    let workers = config.workers.clamp(1, config.clients.max(1));
    let mut slices: Vec<Vec<FleetConn>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let addrs = &addrs;
                s.spawn(move || -> io::Result<Vec<FleetConn>> {
                    let mut conns = Vec::new();
                    for c in (w..config.clients).step_by(workers) {
                        conns.push(FleetConn::connect(
                            addrs.clone(),
                            &format!("fleet-{c:05}"),
                            config.wire,
                        )?);
                    }
                    Ok(conns)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fleet worker panicked"))
            .collect::<io::Result<Vec<_>>>()
    })?;
    let online: usize = slices.iter().map(Vec::len).sum();

    // Reset the server's verb/commit telemetry so STATS reflects only
    // the measured window.
    {
        let stream = TcpStream::connect(&addr)?;
        let mut writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        write_client_msg(&mut writer, &ClientMsg::Stats { reset: true })?;
        let _ = read_server_msg(&mut reader)?;
    }

    // Phase 2: pipelined upload rounds until the deadline. A worker
    // writes an upload on every live connection of its slice, then
    // drains the replies — keeping its whole slice in flight at once. A
    // dead connection is failed over at the top of the next round; a
    // round with *nothing* reachable marks the fleet dark and keeps
    // polling (the window runs to its end either way, so a server that
    // comes back — or a replica that promotes — picks the fleet back
    // up, and the report carries the outage instead of an error).
    let acked = AtomicU64::new(0);
    let failovers = AtomicU64::new(0);
    let dark_since: Mutex<Option<Instant>> = Mutex::new(None);
    let outage_ns = AtomicU64::new(0);
    let started = Instant::now();
    let deadline = started + config.duration;
    std::thread::scope(|s| {
        for slice in &mut slices {
            let acked = &acked;
            let failovers = &failovers;
            let dark_since = &dark_since;
            let outage_ns = &outage_ns;
            s.spawn(move || {
                while Instant::now() < deadline {
                    let mut sent = 0u64;
                    for conn in slice.iter_mut() {
                        if !conn.alive {
                            match conn.reconnect() {
                                Ok(moved) => {
                                    if moved {
                                        failovers.fetch_add(1, Ordering::Relaxed);
                                        metrics::counter("client.failover.count").inc();
                                    }
                                }
                                Err(_) => continue,
                            }
                        }
                        // A binary connection keeps `pipeline` uploads
                        // in flight; text keeps the legacy depth of 1.
                        let depth = if conn.binary {
                            config.pipeline.clamp(1, uucs_wire::MAX_PIPELINE) as u32
                        } else {
                            1
                        };
                        for _ in 0..depth {
                            if conn.send_upload(config.batch).is_ok() {
                                conn.pending += 1;
                                sent += 1;
                            } else {
                                conn.alive = false;
                                break;
                            }
                        }
                    }
                    let mut ok = 0u64;
                    for conn in slice.iter_mut().filter(|c| c.pending > 0) {
                        let owed = conn.pending;
                        conn.pending = 0;
                        for _ in 0..owed {
                            match conn.recv_ack() {
                                Ok(true) => ok += 1,
                                _ => {
                                    conn.alive = false;
                                    break;
                                }
                            }
                        }
                    }
                    acked.fetch_add(ok, Ordering::Relaxed);
                    if ok > 0 {
                        // Light again: close any open outage window.
                        if let Some(t0) = dark_since.lock().unwrap().take() {
                            outage_ns
                                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        }
                    } else if sent == 0 {
                        // Nothing reachable: open the outage window
                        // (first worker to notice wins) and back off so
                        // the retry loop is not hot.
                        dark_since.lock().unwrap().get_or_insert_with(Instant::now);
                        std::thread::sleep(Duration::from_millis(20));
                    }
                }
            });
        }
    });
    let elapsed = started.elapsed();
    let uploads = acked.load(Ordering::Relaxed);
    // An outage still open at the window's end means the run was
    // interrupted: report partial numbers rather than failing.
    let (interrupted, outage) = {
        let open = dark_since.lock().unwrap().take();
        let mut total = Duration::from_nanos(outage_ns.load(Ordering::Relaxed));
        if let Some(t0) = open {
            total += t0.elapsed();
        }
        (open.is_some(), total)
    };

    let report = FleetReport {
        clients: online,
        uploads_acked: uploads,
        records: uploads * config.batch as u64,
        elapsed,
        uploads_per_sec: uploads as f64 / elapsed.as_secs_f64().max(1e-9),
        upload_p99_us: addrs
            .iter()
            .find_map(|a| stats_p99_us(a, "server.verb.upload.ns")),
        commit_p99_us: addrs.iter().find_map(|a| stats_p99_us(a, "server.commit.ns")),
        interrupted,
        outage,
        failovers: failovers.load(Ordering::Relaxed),
    };
    for slice in &mut slices {
        for conn in slice.iter_mut() {
            conn.bye();
        }
    }
    drop(slices);
    Ok(report)
}

/// The two-node replicated-tier smoke: an in-process leader and
/// follower (full [`ClusterNode`]s — WAL shipping, gossip, promotion —
/// each with its own TCP front end), a fleet spread across both
/// addresses, and one induced failover: two fifths into the window the
/// leader's front end is torn down with a zero drain deadline and its
/// replication tier severed. The follower must promote itself and
/// finish the fleet; the report must show the failover happened and the
/// fleet ended the window served (not interrupted).
///
/// Quorum acks are on, so every upload a client saw acknowledged before
/// the kill had already been applied by the follower.
pub fn run_cluster(config: &FleetConfig) -> io::Result<FleetReport> {
    static NONCE: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "uucs-fleet-cluster-{}-{}",
        std::process::id(),
        NONCE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir)?;
    let node_config = |name: &str, peers: Vec<String>, ack: AckMode| {
        let mut cfg = ClusterConfig::new(name, dir.join("epochs"), dir.join(name));
        cfg.peers = peers;
        cfg.ack = ack;
        cfg.gossip_interval = Duration::from_millis(40);
        cfg.promote_after = 2;
        cfg
    };

    let leader_srv = Arc::new(
        UucsServer::with_store_set(StoreSet::plain(config.shards), 0x5e17)
            .without_model_updates(),
    );
    let leader = ClusterNode::start(
        node_config("fleet-a", Vec::new(), AckMode::Quorum),
        Arc::clone(&leader_srv),
        "127.0.0.1:0",
        Role::Leader,
    )?;
    let leader_front = tcp::serve_with(
        Arc::clone(&leader_srv),
        "127.0.0.1:0",
        ServeConfig {
            drain_deadline: Duration::ZERO,
            max_connections: config.clients + 64,
            ..ServeConfig::default()
        },
    )?;

    let follower_srv = Arc::new(
        UucsServer::with_store_set(StoreSet::plain(config.shards), 0x5e17)
            .without_model_updates(),
    );
    let follower = ClusterNode::start(
        node_config(
            "fleet-b",
            vec![leader.repl_addr().to_string()],
            AckMode::Local,
        ),
        Arc::clone(&follower_srv),
        "127.0.0.1:0",
        Role::Follower,
    )?;
    let follower_front = tcp::serve_with(
        Arc::clone(&follower_srv),
        "127.0.0.1:0",
        ServeConfig {
            max_connections: config.clients + 64,
            ..ServeConfig::default()
        },
    )?;

    // No fleet before replication is live: quorum waits would burn
    // their timeout on every early upload.
    let live = Instant::now() + Duration::from_secs(10);
    while leader.hub().follower_nodes().is_empty() {
        if Instant::now() > live {
            return Err(io::Error::other("follower never connected to the leader"));
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    let mut fleet_config = config.clone();
    fleet_config.addr = Some(leader_front.addr().to_string());
    fleet_config.failover = vec![follower_front.addr().to_string()];

    let kill_after = config.duration.mul_f64(0.4);
    let report = std::thread::scope(|s| {
        let leader_node = Arc::clone(&leader);
        let killer = s.spawn(move || {
            std::thread::sleep(kill_after);
            leader_front.shutdown();
            leader_node.shutdown();
        });
        let report = run(&fleet_config);
        let _ = killer.join();
        report
    })?;

    let promoted = follower.was_promoted();
    follower_front.shutdown();
    follower.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    if !promoted {
        return Err(io::Error::other(
            "the follower never promoted itself after the leader kill",
        ));
    }
    if report.failovers == 0 {
        return Err(io::Error::other(
            "no client failed over: the kill never reached the fleet",
        ));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hist_p99_extraction() {
        let json = r#"{"histograms":{"a.ns":{"count":5,"mean_ns":10,"p50_ns":9,"p90_ns":12,"p99_ns":14000,"max_ns":20000},"b.ns":{"count":1,"mean_ns":1,"p50_ns":1,"p90_ns":1,"p99_ns":2,"max_ns":3}}}"#;
        assert_eq!(hist_p99_ns(json, "a.ns"), Some(14000));
        assert_eq!(hist_p99_ns(json, "b.ns"), Some(2));
        assert_eq!(hist_p99_ns(json, "c.ns"), None);
    }

    /// A miniature fleet end to end against a self-hosted sharded
    /// group-commit server: everyone registers, uploads flow, the report
    /// adds up.
    #[test]
    fn tiny_fleet_round_trips() {
        let config = FleetConfig {
            clients: 12,
            workers: 3,
            duration: Duration::from_millis(300),
            shards: 2,
            ..FleetConfig::default()
        };
        let report = run(&config).expect("fleet run");
        assert_eq!(report.clients, 12);
        assert!(report.uploads_acked > 0, "no upload was acked");
        assert_eq!(report.records, report.uploads_acked * 2);
        assert!(!report.interrupted, "nothing died, nothing to interrupt");
        assert_eq!(report.failovers, 0);
    }

    /// The same miniature fleet on the negotiated binary wire with
    /// request pipelining: every reply must come back in request order
    /// (recv_ack checks the req id), and the totals must still add up.
    #[test]
    fn binary_pipelined_fleet_round_trips() {
        let config = FleetConfig {
            clients: 8,
            workers: 2,
            duration: Duration::from_millis(300),
            shards: 2,
            wire: WireMode::Binary,
            pipeline: 8,
            ..FleetConfig::default()
        };
        let report = run(&config).expect("binary fleet run");
        assert_eq!(report.clients, 8);
        assert!(report.uploads_acked > 0, "no pipelined upload was acked");
        assert!(!report.interrupted);
    }

    /// The server dies mid-window with nowhere to fail over to: the run
    /// still returns `Ok` — a partial report with the `interrupted`
    /// flag and the outage window — instead of an error.
    #[test]
    fn server_death_mid_run_yields_a_partial_report() {
        let server = Arc::new(
            UucsServer::with_store_set(StoreSet::plain(2), 7).without_model_updates(),
        );
        let front = tcp::serve_with(
            server,
            "127.0.0.1:0",
            ServeConfig {
                drain_deadline: Duration::ZERO,
                ..ServeConfig::default()
            },
        )
        .expect("bind");
        let config = FleetConfig {
            clients: 8,
            workers: 2,
            duration: Duration::from_millis(700),
            addr: Some(front.addr().to_string()),
            ..FleetConfig::default()
        };
        let report = std::thread::scope(|s| {
            let killer = s.spawn(move || {
                std::thread::sleep(Duration::from_millis(250));
                front.shutdown();
            });
            let report = run(&config);
            let _ = killer.join();
            report
        })
        .expect("a dead server must still yield a partial report");
        assert!(report.interrupted, "the outage was still open at the end");
        assert!(report.uploads_acked > 0, "partial numbers before the kill");
        assert!(!report.outage.is_zero(), "the outage window was recorded");
    }

    /// The two-node smoke end to end: leader killed mid-window, the
    /// fleet fails over to the promoted follower and finishes served.
    #[test]
    fn cluster_fleet_survives_the_leader_kill() {
        let config = FleetConfig {
            clients: 8,
            workers: 2,
            duration: Duration::from_millis(900),
            shards: 2,
            ..FleetConfig::default()
        };
        let report = run_cluster(&config).expect("cluster fleet run");
        assert!(report.failovers > 0, "the kill never reached the fleet");
        assert!(!report.interrupted, "the promoted follower served the tail");
        assert!(report.uploads_acked > 0);
    }
}
