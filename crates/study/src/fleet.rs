//! Fleet load driver: thousands of client state machines multiplexed
//! over a bounded worker pool, hammering a live `uucs-server` over TCP.
//!
//! The paper's Internet study topped out at dozens of volunteer
//! machines; this driver asks what the same server engine can sustain
//! at fleet scale. Each simulated client keeps one persistent TCP
//! connection (register → sync → a stream of sequenced uploads), but
//! the driver spends only [`FleetConfig::workers`] threads: a worker
//! owns a slice of clients and pipelines them — it writes one upload on
//! every socket of its slice, then collects every reply — so thousands
//! of requests are in flight at once against the server's worker pool
//! and group-commit batcher.
//!
//! The run reports sustained acked uploads/sec (measured client-side)
//! and the server's own p99 verb/commit latency, pulled over the wire
//! with the `STATS` verb at the end of the window.

use std::io::{self, BufReader};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use uucs_protocol::wire::{read_server_msg, write_client_msg};
use uucs_protocol::{ClientMsg, MachineSnapshot, MonitorSummary, RunOutcome, RunRecord, ServerMsg};
use uucs_server::tcp::{self, EngineMode, ServeConfig};
use uucs_server::{StoreSet, UucsServer};
use uucs_testcase::{ExerciseSpec, Resource, Testcase};
use uucs_wal::{SyncPolicy, WalConfig};

/// Tuning for a fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Simulated clients (each holds one persistent connection).
    pub clients: usize,
    /// Driver worker threads multiplexing the clients.
    pub workers: usize,
    /// Measurement window (after registration and a stats reset).
    pub duration: Duration,
    /// Records per upload batch.
    pub batch: usize,
    /// Talk to an already-running server instead of self-hosting one.
    pub addr: Option<String>,
    /// Self-hosted server: store shards.
    pub shards: usize,
    /// Self-hosted server: group-commit interval (zero = per-append
    /// fsync, the pre-group-commit engine).
    pub commit_interval: Duration,
    /// Self-hosted server: TCP engine.
    pub engine: EngineMode,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            clients: 2000,
            workers: 4,
            duration: Duration::from_secs(10),
            batch: 2,
            addr: None,
            shards: 8,
            commit_interval: Duration::from_millis(1),
            engine: EngineMode::WorkerPool,
        }
    }
}

impl FleetConfig {
    /// The CI smoke shape: small fleet, short window.
    pub fn quick() -> Self {
        FleetConfig {
            clients: 200,
            duration: Duration::from_secs(2),
            ..FleetConfig::default()
        }
    }
}

/// What a fleet run measured.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Clients that completed registration and held a connection.
    pub clients: usize,
    /// Upload exchanges acknowledged inside the window.
    pub uploads_acked: u64,
    /// Records carried by those uploads.
    pub records: u64,
    /// The measured window.
    pub elapsed: Duration,
    /// Sustained acked uploads per second.
    pub uploads_per_sec: f64,
    /// Server-side p99 of the upload verb (handling, excluding the
    /// commit wait), from `STATS`.
    pub upload_p99_us: Option<u64>,
    /// Server-side p99 of the group-commit fsync pass, from `STATS`.
    pub commit_p99_us: Option<u64>,
}

impl FleetReport {
    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "fleet: {} clients, {} uploads acked in {:.2}s = {:.0} uploads/s ({} records; upload p99 {}, commit p99 {})",
            self.clients,
            self.uploads_acked,
            self.elapsed.as_secs_f64(),
            self.uploads_per_sec,
            self.records,
            self.upload_p99_us
                .map_or("n/a".to_string(), |u| format!("{u}us")),
            self.commit_p99_us
                .map_or("n/a".to_string(), |u| format!("{u}us")),
        )
    }
}

/// One fleet client's half-duplex connection: requests and replies move
/// independently so a worker can pipeline its whole slice.
struct FleetConn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    id: String,
    seq: u64,
}

impl FleetConn {
    fn connect(addr: &str, name: &str) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let writer = stream.try_clone()?;
        let mut conn = FleetConn {
            writer,
            reader: BufReader::new(stream),
            id: String::new(),
            seq: 0,
        };
        write_client_msg(
            &mut conn.writer,
            &ClientMsg::register(MachineSnapshot::study_machine(name)),
        )?;
        match read_server_msg(&mut conn.reader)? {
            ServerMsg::Id { id, .. } => conn.id = id,
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("registration refused: {other:?}"),
                ))
            }
        }
        Ok(conn)
    }

    fn send_upload(&mut self, batch: usize) -> io::Result<()> {
        self.seq += 1;
        let records = (0..batch)
            .map(|i| RunRecord {
                client: self.id.clone(),
                user: String::new(),
                testcase: format!("fleet-{}-{}", self.seq, i),
                task: "IE".into(),
                skill: "Typical".into(),
                outcome: RunOutcome::Discomfort,
                offset_secs: 10.0,
                last_levels: vec![(Resource::Cpu, vec![2.0])],
                monitor: MonitorSummary::default(),
            })
            .collect();
        write_client_msg(
            &mut self.writer,
            &ClientMsg::Upload {
                client: self.id.clone(),
                seq: self.seq,
                records,
            },
        )
    }

    fn recv_ack(&mut self) -> io::Result<bool> {
        Ok(matches!(
            read_server_msg(&mut self.reader)?,
            ServerMsg::Ack(_)
        ))
    }
}

/// Pulls the server's metrics snapshot over the wire and extracts the
/// p99 of one histogram, in microseconds.
fn stats_p99_us(addr: &str, hist: &str) -> Option<u64> {
    let stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .ok()?;
    let mut writer = stream.try_clone().ok()?;
    let mut reader = BufReader::new(stream);
    write_client_msg(&mut writer, &ClientMsg::Stats { reset: false }).ok()?;
    let json = match read_server_msg(&mut reader).ok()? {
        ServerMsg::Stats(json) => json,
        _ => return None,
    };
    hist_p99_ns(&json, hist).map(|ns| ns / 1000)
}

/// Extracts `"name":{..."p99_ns":N...}` from the snapshot JSON with a
/// plain string scan (the format is machine-generated and stable).
fn hist_p99_ns(json: &str, name: &str) -> Option<u64> {
    let key = format!("\"{name}\":{{");
    let start = json.find(&key)? + key.len();
    let body = &json[start..json[start..].find('}')? + start];
    let p = body.find("\"p99_ns\":")? + "\"p99_ns\":".len();
    let digits: String = body[p..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// A self-hosted server for fleet runs without an external `--addr`:
/// WAL-backed sharded stores in a scratch directory, group commit when
/// the interval is nonzero, and the requested TCP engine.
struct HostedServer {
    handle: Option<tcp::ServerHandle>,
    dir: std::path::PathBuf,
}

impl HostedServer {
    fn start(config: &FleetConfig) -> io::Result<Self> {
        static NONCE: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "uucs-fleet-{}-{}",
            std::process::id(),
            NONCE.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir)?;
        let group_commit = !config.commit_interval.is_zero();
        let wal = WalConfig {
            sync: if group_commit {
                SyncPolicy::Never
            } else {
                SyncPolicy::Always
            },
            ..WalConfig::default()
        };
        let (stores, _) = StoreSet::open(&dir, wal, config.shards)?;
        let mut server = UucsServer::with_store_set(stores, 0x5e17).without_model_updates();
        if group_commit {
            server = server.with_group_commit(config.commit_interval);
        }
        let server = Arc::new(server);
        for i in 0..8 {
            server
                .add_testcase(Testcase::single(
                    format!("fleet-lib-{i}"),
                    1.0,
                    Resource::Cpu,
                    ExerciseSpec::Ramp {
                        level: 2.0,
                        duration: 10.0,
                    },
                ))
                .map_err(|e| io::Error::other(e.to_string()))?;
        }
        let handle = tcp::serve_with(
            server,
            "127.0.0.1:0",
            ServeConfig {
                engine: config.engine,
                max_connections: config.clients + 64,
                ..ServeConfig::default()
            },
        )?;
        Ok(HostedServer {
            handle: Some(handle),
            dir,
        })
    }

    fn addr(&self) -> String {
        self.handle.as_ref().expect("running").addr().to_string()
    }
}

impl Drop for HostedServer {
    fn drop(&mut self) {
        if let Some(h) = self.handle.take() {
            h.shutdown();
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Runs the fleet against `config.addr` (or a self-hosted server) and
/// reports sustained throughput and server-side tail latency.
pub fn run(config: &FleetConfig) -> io::Result<FleetReport> {
    let hosted = match &config.addr {
        Some(_) => None,
        None => Some(HostedServer::start(config)?),
    };
    let addr: String = config
        .addr
        .clone()
        .unwrap_or_else(|| hosted.as_ref().expect("self-hosted").addr());

    // Phase 1: bring the whole fleet online (register + hold the
    // connection). Workers connect their slices concurrently.
    let workers = config.workers.clamp(1, config.clients.max(1));
    let mut slices: Vec<Vec<FleetConn>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let addr = &addr;
                s.spawn(move || -> io::Result<Vec<FleetConn>> {
                    let mut conns = Vec::new();
                    for c in (w..config.clients).step_by(workers) {
                        conns.push(FleetConn::connect(addr, &format!("fleet-{c:05}"))?);
                    }
                    Ok(conns)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fleet worker panicked"))
            .collect::<io::Result<Vec<_>>>()
    })?;
    let online: usize = slices.iter().map(Vec::len).sum();

    // Reset the server's verb/commit telemetry so STATS reflects only
    // the measured window.
    {
        let stream = TcpStream::connect(&addr)?;
        let mut writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        write_client_msg(&mut writer, &ClientMsg::Stats { reset: true })?;
        let _ = read_server_msg(&mut reader)?;
    }

    // Phase 2: pipelined upload rounds until the deadline. A worker
    // writes an upload on every connection of its slice, then drains the
    // replies — keeping its whole slice in flight at once.
    let acked = AtomicU64::new(0);
    let started = Instant::now();
    let deadline = started + config.duration;
    std::thread::scope(|s| {
        for slice in &mut slices {
            let acked = &acked;
            s.spawn(move || {
                while Instant::now() < deadline {
                    let mut sent = 0u64;
                    for conn in slice.iter_mut() {
                        if conn.send_upload(config.batch).is_ok() {
                            sent += 1;
                        }
                    }
                    let mut ok = 0u64;
                    for conn in slice.iter_mut().take(sent as usize) {
                        if matches!(conn.recv_ack(), Ok(true)) {
                            ok += 1;
                        }
                    }
                    acked.fetch_add(ok, Ordering::Relaxed);
                    if sent == 0 {
                        break;
                    }
                }
            });
        }
    });
    let elapsed = started.elapsed();
    let uploads = acked.load(Ordering::Relaxed);

    let report = FleetReport {
        clients: online,
        uploads_acked: uploads,
        records: uploads * config.batch as u64,
        elapsed,
        uploads_per_sec: uploads as f64 / elapsed.as_secs_f64().max(1e-9),
        upload_p99_us: stats_p99_us(&addr, "server.verb.upload.ns"),
        commit_p99_us: stats_p99_us(&addr, "server.commit.ns"),
    };
    for slice in &mut slices {
        for conn in slice.iter_mut() {
            let _ = write_client_msg(&mut conn.writer, &ClientMsg::Bye);
        }
    }
    drop(slices);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hist_p99_extraction() {
        let json = r#"{"histograms":{"a.ns":{"count":5,"mean_ns":10,"p50_ns":9,"p90_ns":12,"p99_ns":14000,"max_ns":20000},"b.ns":{"count":1,"mean_ns":1,"p50_ns":1,"p90_ns":1,"p99_ns":2,"max_ns":3}}}"#;
        assert_eq!(hist_p99_ns(json, "a.ns"), Some(14000));
        assert_eq!(hist_p99_ns(json, "b.ns"), Some(2));
        assert_eq!(hist_p99_ns(json, "c.ns"), None);
    }

    /// A miniature fleet end to end against a self-hosted sharded
    /// group-commit server: everyone registers, uploads flow, the report
    /// adds up.
    #[test]
    fn tiny_fleet_round_trips() {
        let config = FleetConfig {
            clients: 12,
            workers: 3,
            duration: Duration::from_millis(300),
            shards: 2,
            ..FleetConfig::default()
        };
        let report = run(&config).expect("fleet run");
        assert_eq!(report.clients, 12);
        assert!(report.uploads_acked > 0, "no upload was acked");
        assert_eq!(report.records, report.uploads_acked * 2);
    }
}
