//! The controlled study driver (§3).
//!
//! Exercises the *entire* system: a server holding the Figure 8 testcase
//! library, one deterministic-mode client per subject running the 8
//! testcases of each task in per-user random order, results hot-synced
//! back, and the analysis reading the server's result store — the full
//! Figure 1 / Figure 2 pipeline.

use std::sync::Arc;
use uucs_client::{LocalTransport, Script, UucsClient};
use uucs_comfort::{calibration, Fidelity, UserPopulation};
use uucs_protocol::{MachineSnapshot, RunRecord};
use uucs_server::{TestcaseStore, UucsServer};
use uucs_stats::Pcg64;
use uucs_telemetry::metrics;
use uucs_workloads::Task;

/// Study parameters.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Root seed; everything derives from it.
    pub seed: u64,
    /// Number of subjects (the paper ran 33).
    pub users: usize,
    /// Run fidelity ([`Fidelity::Fast`] for the statistics; `Full` also
    /// simulates the machine per run).
    pub fidelity: Fidelity,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            seed: 2004,
            users: 33,
            fidelity: Fidelity::Fast,
        }
    }
}

/// The study outputs: every uploaded run record plus the population that
/// produced them (needed for the skill analysis).
#[derive(Debug, Clone)]
pub struct StudyData {
    /// All uploaded run records.
    pub records: Vec<RunRecord>,
    /// The synthetic subjects.
    pub population: UserPopulation,
    /// The config that produced the data.
    pub config: StudyConfig,
}

impl StudyData {
    /// Records for one task.
    pub fn of_task(&self, task: Task) -> Vec<&RunRecord> {
        self.records
            .iter()
            .filter(|r| r.task == task.name())
            .collect()
    }

    /// Records whose testcase id contains a marker (e.g. `"ramp"`).
    pub fn with_id_containing<'a>(&'a self, marker: &str) -> Vec<&'a RunRecord> {
        self.records
            .iter()
            .filter(|r| r.testcase.contains(marker))
            .collect()
    }
}

/// The controlled study.
pub struct ControlledStudy {
    config: StudyConfig,
}

impl ControlledStudy {
    /// Creates a study with the given configuration.
    pub fn new(config: StudyConfig) -> Self {
        ControlledStudy { config }
    }

    /// The full testcase library: 8 testcases per task (Figure 8).
    pub fn library() -> Vec<uucs_testcase::Testcase> {
        Task::ALL
            .iter()
            .flat_map(|&t| calibration::controlled_testcases(t))
            .collect()
    }

    /// Builds one subject's deterministic command file: for each task, the
    /// task's 8 testcases in random order, with a final sync.
    fn session_script(rng: &mut Pcg64) -> Script {
        let mut commands = Vec::new();
        for &task in &Task::ALL {
            let mut ids: Vec<String> = calibration::controlled_testcases(task)
                .iter()
                .map(|tc| tc.id.to_string())
                .collect();
            rng.shuffle(&mut ids);
            for id in ids {
                commands.push(uucs_client::Command::Run {
                    testcase: id,
                    task,
                });
            }
        }
        commands.push(uucs_client::Command::Sync);
        Script { commands }
    }

    /// Runs the study end to end and returns the collected data.
    pub fn run(&self) -> StudyData {
        let t0 = std::time::Instant::now();
        let server = Arc::new(UucsServer::new(
            TestcaseStore::from_testcases(Self::library()).expect("unique ids"),
            self.config.seed,
        ));
        let population = UserPopulation::generate(self.config.users, self.config.seed);
        let root = Pcg64::new(self.config.seed).split_str("controlled-study");

        for (i, user) in population.users().iter().enumerate() {
            let mut rng = root.split(i as u64);
            let mut transport = LocalTransport::new(server.clone());
            let mut client = UucsClient::new(
                MachineSnapshot::study_machine(format!("optiplex-{}", i % 2 + 1)),
                rng.next_u64(),
            );
            client
                .register(&mut transport)
                .expect("local transport cannot fail");
            // Deterministic mode: the testcases come from a local file.
            client.install_testcases(Self::library());
            let script = Self::session_script(&mut rng);
            client
                .execute_script(
                    &script,
                    user,
                    self.config.fidelity,
                    &mut transport,
                    rng.next_u64(),
                )
                .expect("scripted session");
        }

        let records = server.results();
        // Fleet telemetry: total runs driven and this study's throughput
        // (visible in a STATS snapshot alongside server/WAL timings).
        metrics::counter("study.runs").add(records.len() as u64);
        let secs = t0.elapsed().as_secs_f64();
        if secs > 0.0 {
            metrics::gauge("study.runs_per_sec").set((records.len() as f64 / secs) as i64);
        }

        StudyData {
            records,
            population,
            config: self.config.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uucs_protocol::RunOutcome;

    fn small_study() -> StudyData {
        ControlledStudy::new(StudyConfig {
            seed: 7,
            users: 12,
            fidelity: Fidelity::Fast,
        })
        .run()
    }

    #[test]
    fn every_user_runs_every_testcase() {
        let data = small_study();
        // 12 users x 4 tasks x 8 testcases.
        assert_eq!(data.records.len(), 12 * 32);
        for task in Task::ALL {
            assert_eq!(data.of_task(task).len(), 12 * 8);
        }
        // Each (user, testcase) appears exactly once.
        let mut keys: Vec<(String, String)> = data
            .records
            .iter()
            .map(|r| (r.user.clone(), r.testcase.clone()))
            .collect();
        keys.sort();
        let n = keys.len();
        keys.dedup();
        assert_eq!(keys.len(), n);
    }

    #[test]
    fn study_is_deterministic() {
        let a = small_study();
        let b = small_study();
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn seed_changes_results() {
        let a = small_study();
        let b = ControlledStudy::new(StudyConfig {
            seed: 8,
            users: 12,
            fidelity: Fidelity::Fast,
        })
        .run();
        assert_ne!(a.records, b.records);
    }

    #[test]
    fn blank_runs_only_discomfort_in_sensitive_tasks() {
        let data = ControlledStudy::new(StudyConfig {
            seed: 9,
            users: 25,
            fidelity: Fidelity::Fast,
        })
        .run();
        let blank_df = |task: Task| {
            data.of_task(task)
                .iter()
                .filter(|r| r.testcase.contains("blank") && r.outcome == RunOutcome::Discomfort)
                .count()
        };
        assert_eq!(blank_df(Task::Word), 0);
        assert_eq!(blank_df(Task::Powerpoint), 0);
        assert!(blank_df(Task::Quake) > 0, "Quake noise floor must show");
    }

    #[test]
    fn quake_cpu_mostly_discomforts() {
        // Quake/CPU has f_d = 0.95: nearly every ramp run ends in
        // discomfort.
        let data = small_study();
        let runs: Vec<_> = data
            .records
            .iter()
            .filter(|r| r.testcase == "quake-cpu-ramp")
            .collect();
        assert_eq!(runs.len(), 12);
        let df = runs
            .iter()
            .filter(|r| r.outcome == RunOutcome::Discomfort)
            .count();
        assert!(df >= 10, "{df}/12 discomforted");
    }

    #[test]
    fn word_memory_never_discomforts() {
        let data = small_study();
        let df = data
            .records
            .iter()
            .filter(|r| r.testcase.starts_with("word-memory"))
            .filter(|r| r.outcome == RunOutcome::Discomfort)
            .count();
        assert_eq!(df, 0);
    }
}
