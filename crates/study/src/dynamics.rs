//! Time dynamics of resource borrowing — the paper's question 5.
//!
//! The controlled study probed one element of time dynamics (ramp vs
//! step, §3.3.5) and deferred the rest to the Internet study, whose
//! testcase library is "predominantly from the M/M/1 and M/G/1 models"
//! precisely to explore it. This module analyzes Internet-study results
//! by exercise-function *shape*: for runs whose functions have comparable
//! mean contention, how does discomfort probability depend on whether
//! the borrowing is smooth (constant/ramp), periodic (sin/saw), or
//! bursty (M/M/1, M/G/1)?
//!
//! The threshold model predicts the answer the queueing structure
//! implies: at equal *mean* borrowing, burstier functions cross a given
//! threshold more often (their peaks reach far above the mean), so
//! heavy-tailed M/G/1 borrowing should discomfort more users than smooth
//! borrowing of the same average — advice-relevant for implementors
//! shaping their background load.

use crate::internet::InternetStudyData;
use std::collections::BTreeMap;
use uucs_protocol::RunOutcome;
use uucs_testcase::{Resource, Testcase};

/// The shape family of an exercise function, judged from the testcase id
/// produced by the library generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Shape {
    /// Gradual or flat: ramps and steps.
    Smooth,
    /// Periodic: sin and saw.
    Periodic,
    /// Markovian bursts: `expexp` (M/M/1).
    BurstyExp,
    /// Heavy-tailed bursts: `exppar` (M/G/1 with Pareto jobs).
    BurstyPareto,
}

impl Shape {
    /// Classifies a testcase id.
    pub fn of(testcase_id: &str) -> Option<Shape> {
        if testcase_id.contains("blank") {
            None
        } else if testcase_id.contains("ramp") || testcase_id.contains("step") {
            Some(Shape::Smooth)
        } else if testcase_id.contains("sin") || testcase_id.contains("saw") {
            Some(Shape::Periodic)
        } else if testcase_id.contains("expexp") {
            Some(Shape::BurstyExp)
        } else if testcase_id.contains("exppar") {
            Some(Shape::BurstyPareto)
        } else {
            None
        }
    }

    /// Display label.
    pub fn name(self) -> &'static str {
        match self {
            Shape::Smooth => "smooth",
            Shape::Periodic => "periodic",
            Shape::BurstyExp => "M/M/1",
            Shape::BurstyPareto => "M/G/1",
        }
    }
}

/// Discomfort statistics for one (shape, mean-level bucket) cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicsCell {
    /// The shape family.
    pub shape: Shape,
    /// Lower edge of the mean-contention bucket.
    pub bucket_lo: f64,
    /// Runs in the cell.
    pub runs: usize,
    /// Runs ending in discomfort.
    pub discomforted: usize,
    /// Mean peak-to-mean ratio of the functions in the cell (burstiness).
    pub peak_to_mean: f64,
}

impl DynamicsCell {
    /// Discomfort probability.
    pub fn p_discomfort(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.discomforted as f64 / self.runs as f64
        }
    }
}

/// Buckets Internet-study CPU runs by function shape and mean commanded
/// level (`bucket_width` wide), so shapes are compared at matched mean
/// borrowing.
pub fn dynamics_cells(
    data: &InternetStudyData,
    library: &[Testcase],
    bucket_width: f64,
) -> Vec<DynamicsCell> {
    assert!(bucket_width > 0.0);
    let by_id: BTreeMap<&str, &Testcase> =
        library.iter().map(|t| (t.id.as_str(), t)).collect();
    let mut cells: BTreeMap<(Shape, u32), (usize, usize, f64)> = BTreeMap::new();
    for r in &data.records {
        let Some(shape) = Shape::of(&r.testcase) else {
            continue;
        };
        let Some(tc) = by_id.get(r.testcase.as_str()) else {
            continue;
        };
        let Some(f) = tc.function(Resource::Cpu) else {
            continue; // CPU column only
        };
        let mean = f.mean();
        if mean <= 0.0 {
            continue;
        }
        let bucket = (mean / bucket_width).floor() as u32;
        let e = cells.entry((shape, bucket)).or_insert((0, 0, 0.0));
        e.0 += 1;
        if r.outcome == RunOutcome::Discomfort {
            e.1 += 1;
        }
        e.2 += f.peak() / mean;
    }
    cells
        .into_iter()
        .map(|((shape, bucket), (runs, df, ptm))| DynamicsCell {
            shape,
            bucket_lo: bucket as f64 * bucket_width,
            runs,
            discomforted: df,
            peak_to_mean: ptm / runs.max(1) as f64,
        })
        .collect()
}

/// Renders the question-5 table.
pub fn render_dynamics(data: &InternetStudyData, library: &[Testcase]) -> String {
    let cells = dynamics_cells(data, library, 0.5);
    let mut out = String::from(
        "Time dynamics (question 5): discomfort probability by function shape,\n\
         at matched mean CPU borrowing (Internet-study runs)\n",
    );
    out.push_str(&format!(
        "{:<10} {:>10} {:>6} {:>8} {:>12}\n",
        "shape", "mean-level", "runs", "P(df)", "peak/mean"
    ));
    for c in &cells {
        if c.runs < 5 {
            continue; // too thin to report
        }
        out.push_str(&format!(
            "{:<10} {:>4.1}-{:<5.1} {:>6} {:>8.2} {:>12.2}\n",
            c.shape.name(),
            c.bucket_lo,
            c.bucket_lo + 0.5,
            c.runs,
            c.p_discomfort(),
            c.peak_to_mean
        ));
    }
    out
}

/// The headline comparison: at mean CPU borrowing in `[lo, hi)`, the
/// discomfort probability of each shape. Returns (shape, runs, p).
pub fn shapes_at_matched_mean(
    data: &InternetStudyData,
    library: &[Testcase],
    lo: f64,
    hi: f64,
) -> Vec<(Shape, usize, f64)> {
    let cells = dynamics_cells(data, library, hi - lo);
    cells
        .into_iter()
        .filter(|c| (c.bucket_lo - lo).abs() < 1e-9)
        .map(|c| (c.shape, c.runs, c.p_discomfort()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::internet::{InternetStudy, InternetStudyConfig};
    use uucs_testcase::generate::Library;

    fn study() -> (InternetStudyData, Vec<Testcase>) {
        let cfg = InternetStudyConfig {
            seed: 5,
            clients: 60,
            runs_per_client: 30,
            mean_gap_secs: 600.0,
        };
        let lib = Library::internet_sweep(cfg.seed);
        let data = InternetStudy::new(cfg).run();
        (data, lib.testcases().to_vec())
    }

    #[test]
    fn shape_classification() {
        assert_eq!(Shape::of("cpu-ramp-2-120"), Some(Shape::Smooth));
        assert_eq!(Shape::of("cpu-step-2-120-40"), Some(Shape::Smooth));
        assert_eq!(Shape::of("cpu-sin-1.5-30"), Some(Shape::Periodic));
        assert_eq!(Shape::of("disk-saw-2-15"), Some(Shape::Periodic));
        assert_eq!(Shape::of("cpu-expexp-0042"), Some(Shape::BurstyExp));
        assert_eq!(Shape::of("disk-exppar-0911"), Some(Shape::BurstyPareto));
        assert_eq!(Shape::of("blank-3-120"), None);
    }

    #[test]
    fn cells_are_consistent() {
        let (data, lib) = study();
        let cells = dynamics_cells(&data, &lib, 0.5);
        assert!(!cells.is_empty());
        let total: usize = cells.iter().map(|c| c.runs).sum();
        assert!(total > 500, "classified runs {total}");
        for c in &cells {
            assert!(c.discomforted <= c.runs);
            assert!(c.peak_to_mean >= 0.99, "peak/mean {}", c.peak_to_mean);
        }
    }

    #[test]
    fn bursty_functions_are_burstier() {
        // The structural premise: peak/mean is higher for queueing shapes
        // than for smooth ones in the same mean bucket.
        let (data, lib) = study();
        let cells = dynamics_cells(&data, &lib, 0.5);
        let avg_ptm = |shape: Shape| {
            let xs: Vec<f64> = cells
                .iter()
                .filter(|c| c.shape == shape && c.runs >= 5)
                .map(|c| c.peak_to_mean)
                .collect();
            xs.iter().sum::<f64>() / xs.len().max(1) as f64
        };
        let smooth = avg_ptm(Shape::Smooth);
        let pareto = avg_ptm(Shape::BurstyPareto);
        assert!(
            pareto > smooth,
            "M/G/1 peak/mean {pareto} should exceed smooth {smooth}"
        );
    }

    #[test]
    fn render_produces_table() {
        let (data, lib) = study();
        let s = render_dynamics(&data, &lib);
        assert!(s.contains("question 5"));
        assert!(s.contains("M/M/1") || s.contains("M/G/1"));
        assert!(s.lines().count() > 5);
    }
}
