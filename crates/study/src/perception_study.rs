//! A calibration-free reproduction: the controlled study re-run with
//! perception-driven users.
//!
//! The headline threat to any calibrated reproduction is circularity —
//! the study regenerates the numbers because the users were fit to them.
//! This driver breaks the circle: users decide from *measured* latency
//! and jitter on the simulated machine
//! ([`uucs_comfort::perception`]), with no per-cell calibration at all,
//! and the same analysis pipeline produces the same tables. What should
//! (and does) survive is the paper's *qualitative* structure: the
//! task-ordering of CPU sensitivity, Word's indifference, IE's disk
//! sensitivity, and — under page-granular eviction — the memory column
//! ordering.

use uucs_comfort::metrics::CellMetrics;
use uucs_comfort::perception::{execute_perception_run_configured, PerceptionProfile};
use uucs_comfort::{Fidelity, RunSetup, RunStyle, UserPopulation};
use uucs_protocol::RunRecord;
use uucs_sim::mem::EvictionPolicy;
use uucs_sim::MachineConfig;
use uucs_stats::Pcg64;
use uucs_testcase::{ExerciseSpec, Resource, Testcase};
use uucs_workloads::Task;

/// Perception-study parameters.
#[derive(Debug, Clone)]
pub struct PerceptionStudyConfig {
    /// Root seed.
    pub seed: u64,
    /// Number of subjects (each gets a sampled [`PerceptionProfile`]).
    pub users: usize,
    /// Memory eviction policy for the simulated machines
    /// ([`EvictionPolicy::SecondChance`] reproduces the paper's memory
    /// ordering).
    pub eviction: EvictionPolicy,
}

impl Default for PerceptionStudyConfig {
    fn default() -> Self {
        PerceptionStudyConfig {
            seed: 2004,
            users: 8,
            eviction: EvictionPolicy::SecondChance,
        }
    }
}

/// Runs the ramp testcases of every cell for every perception-driven
/// subject (12 cells × users full-fidelity machine runs) and returns the
/// records.
pub fn run_perception_study(config: &PerceptionStudyConfig) -> Vec<RunRecord> {
    let population = UserPopulation::generate(config.users, config.seed);
    let root = Pcg64::new(config.seed).split_str("perception-study");
    let mut records = Vec::new();
    for (i, user) in population.users().iter().enumerate() {
        let mut rng = root.split(i as u64);
        let profile = PerceptionProfile::sample(&mut rng);
        for task in Task::ALL {
            for resource in Resource::STUDIED {
                let cell = uucs_comfort::calibration::cell(task, resource);
                let tc = Testcase::single(
                    format!(
                        "{}-{}-ramp",
                        task.name().to_lowercase(),
                        resource.name()
                    ),
                    1.0,
                    resource,
                    ExerciseSpec::Ramp {
                        level: cell.ramp_ceiling,
                        duration: 120.0,
                    },
                );
                records.push(execute_perception_run_configured(
                    &RunSetup {
                        user,
                        task,
                        testcase: &tc,
                        style: RunStyle::Ramp,
                        seed: rng.next_u64(),
                        fidelity: Fidelity::Full,
                        client_id: "perception-study".into(),
                    },
                    &profile,
                    MachineConfig {
                        eviction: config.eviction,
                        ..MachineConfig::default()
                    },
                ));
            }
        }
    }
    records
}

/// Per-cell metrics from perception-study records.
pub fn perception_cell_metrics(
    records: &[RunRecord],
    task: Task,
    resource: Resource,
) -> CellMetrics {
    let marker = format!("{}-{}-ramp", task.name().to_lowercase(), resource.name());
    CellMetrics::from_runs(records.iter().filter(|r| r.testcase == marker), resource)
}

/// Renders the perception-study f_d grid next to the paper's.
pub fn render_perception_study(records: &[RunRecord]) -> String {
    let mut out = String::from(
        "Calibration-free perception study: f_d by task and resource\n\
         (paper's Figure 14 value in parentheses)\n",
    );
    out.push_str(&format!(
        "{:<12} {:>14} {:>14} {:>14}\n",
        "", "CPU", "Memory", "Disk"
    ));
    for task in Task::ALL {
        let cell_str = |r: Resource| {
            let m = perception_cell_metrics(records, task, r);
            let paper = uucs_comfort::calibration::cell(task, r).f_d;
            format!(
                "{} ({paper:.2})",
                m.f_d
                    .map(|x| format!("{x:.2}"))
                    .unwrap_or_else(|| "-".into())
            )
        };
        out.push_str(&format!(
            "{:<12} {:>14} {:>14} {:>14}\n",
            task.name(),
            cell_str(Resource::Cpu),
            cell_str(Resource::Memory),
            cell_str(Resource::Disk)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reduced perception study (full-fidelity machines): qualitative
    /// structure only, since n is small.
    #[test]
    fn qualitative_structure_emerges_without_calibration() {
        let records = run_perception_study(&PerceptionStudyConfig {
            seed: 77,
            users: 4,
            eviction: EvictionPolicy::SecondChance,
        });
        assert_eq!(records.len(), 4 * 12);

        let f_d = |task, resource| {
            perception_cell_metrics(&records, task, resource)
                .f_d
                .unwrap()
        };
        // CPU column: Quake is the most sensitive context, Word the least
        // (the paper's Figure 14 ordering).
        assert!(
            f_d(Task::Quake, Resource::Cpu) >= f_d(Task::Word, Resource::Cpu),
            "quake {} vs word {}",
            f_d(Task::Quake, Resource::Cpu),
            f_d(Task::Word, Resource::Cpu)
        );
        // Quake's CPU ramp (to 1.3x) discomforts most perception users.
        assert!(f_d(Task::Quake, Resource::Cpu) >= 0.5);
        // Word's disk ramp is harmless: saves are rare and small.
        assert!(f_d(Task::Word, Resource::Disk) <= 0.5);
    }

    #[test]
    fn render_shows_paper_comparison() {
        let records = run_perception_study(&PerceptionStudyConfig {
            seed: 78,
            users: 2,
            eviction: EvictionPolicy::RegionRecency,
        });
        let s = render_perception_study(&records);
        assert!(s.contains("Calibration-free"));
        assert!(s.contains("(0.95)")); // paper's PPT/CPU or Quake/CPU f_d
    }
}
