//! The analysis-phase result database (Figure 2: "importing testcase
//! results into a database. An additional set of tools is then used to
//! analyze the results").
//!
//! [`ResultDatabase`] indexes uploaded run records by task, testcase,
//! user, and client, and offers a small query builder so analysis tools
//! can slice the data the way the paper's figures do.

use std::collections::HashMap;
use std::path::Path;
use uucs_protocol::{RunOutcome, RunRecord};
use uucs_workloads::Task;

/// The kind of testcase a record came from, judged by id convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunKind {
    /// A `*-ramp` testcase.
    Ramp,
    /// A `*-step` testcase.
    Step,
    /// A blank testcase.
    Blank,
    /// Anything else (sin/saw/queueing/trace).
    Other,
}

impl RunKind {
    /// Classifies a testcase id.
    pub fn of(testcase_id: &str) -> RunKind {
        if testcase_id.contains("blank") {
            RunKind::Blank
        } else if testcase_id.contains("ramp") {
            RunKind::Ramp
        } else if testcase_id.contains("step") {
            RunKind::Step
        } else {
            RunKind::Other
        }
    }
}

/// An indexed store of run records.
#[derive(Debug, Default)]
pub struct ResultDatabase {
    records: Vec<RunRecord>,
    by_task: HashMap<String, Vec<usize>>,
    by_user: HashMap<String, Vec<usize>>,
    by_testcase: HashMap<String, Vec<usize>>,
}

impl ResultDatabase {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a database from records.
    pub fn from_records(records: Vec<RunRecord>) -> Self {
        let mut db = Self::new();
        for r in records {
            db.insert(r);
        }
        db
    }

    /// Imports a result text file (the server's `results.txt`).
    pub fn import(path: &Path) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        let records = RunRecord::parse_many(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        Ok(Self::from_records(records))
    }

    /// Inserts one record, maintaining the indexes.
    pub fn insert(&mut self, record: RunRecord) {
        let idx = self.records.len();
        self.by_task.entry(record.task.clone()).or_default().push(idx);
        self.by_user.entry(record.user.clone()).or_default().push(idx);
        self.by_testcase
            .entry(record.testcase.clone())
            .or_default()
            .push(idx);
        self.records.push(record);
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records.
    pub fn all(&self) -> &[RunRecord] {
        &self.records
    }

    /// Distinct users, sorted.
    pub fn users(&self) -> Vec<&str> {
        let mut u: Vec<&str> = self.by_user.keys().map(String::as_str).collect();
        u.sort_unstable();
        u
    }

    /// Distinct testcase ids, sorted.
    pub fn testcases(&self) -> Vec<&str> {
        let mut t: Vec<&str> = self.by_testcase.keys().map(String::as_str).collect();
        t.sort_unstable();
        t
    }

    /// Starts a query.
    pub fn query(&self) -> Query<'_> {
        Query {
            db: self,
            task: None,
            user: None,
            kind: None,
            outcome: None,
            testcase_contains: None,
        }
    }
}

/// A filter builder over the database.
#[derive(Debug, Clone)]
pub struct Query<'a> {
    db: &'a ResultDatabase,
    task: Option<Task>,
    user: Option<String>,
    kind: Option<RunKind>,
    outcome: Option<RunOutcome>,
    testcase_contains: Option<String>,
}

impl<'a> Query<'a> {
    /// Restrict to one foreground task.
    pub fn task(mut self, task: Task) -> Self {
        self.task = Some(task);
        self
    }

    /// Restrict to one subject.
    pub fn user(mut self, user: impl Into<String>) -> Self {
        self.user = Some(user.into());
        self
    }

    /// Restrict to one testcase kind.
    pub fn kind(mut self, kind: RunKind) -> Self {
        self.kind = Some(kind);
        self
    }

    /// Restrict to one outcome.
    pub fn outcome(mut self, outcome: RunOutcome) -> Self {
        self.outcome = Some(outcome);
        self
    }

    /// Restrict to testcase ids containing a marker (e.g. `"cpu"`).
    pub fn testcase_contains(mut self, marker: impl Into<String>) -> Self {
        self.testcase_contains = Some(marker.into());
        self
    }

    /// Runs the query.
    pub fn collect(&self) -> Vec<&'a RunRecord> {
        // Use the most selective available index as the base set.
        let base: Box<dyn Iterator<Item = usize>> = if let Some(u) = &self.user {
            Box::new(
                self.db
                    .by_user
                    .get(u)
                    .map(|v| v.iter().copied())
                    .into_iter()
                    .flatten(),
            )
        } else if let Some(t) = self.task {
            Box::new(
                self.db
                    .by_task
                    .get(t.name())
                    .map(|v| v.iter().copied())
                    .into_iter()
                    .flatten(),
            )
        } else {
            Box::new(0..self.db.records.len())
        };
        base.map(|i| &self.db.records[i])
            .filter(|r| self.task.is_none_or(|t| r.task == t.name()))
            .filter(|r| self.user.as_deref().is_none_or(|u| r.user == u))
            .filter(|r| self.kind.is_none_or(|k| RunKind::of(&r.testcase) == k))
            .filter(|r| self.outcome.is_none_or(|o| r.outcome == o))
            .filter(|r| {
                self.testcase_contains
                    .as_deref()
                    .is_none_or(|m| r.testcase.contains(m))
            })
            .collect()
    }

    /// Number of matching records.
    pub fn count(&self) -> usize {
        self.collect().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controlled::{ControlledStudy, StudyConfig};
    use uucs_comfort::Fidelity;

    fn db() -> ResultDatabase {
        let data = ControlledStudy::new(StudyConfig {
            seed: 55,
            users: 8,
            fidelity: Fidelity::Fast,
        })
        .run();
        ResultDatabase::from_records(data.records)
    }

    #[test]
    fn indexes_cover_everything() {
        let db = db();
        assert_eq!(db.len(), 8 * 32);
        assert_eq!(db.users().len(), 8);
        assert_eq!(db.testcases().len(), 32);
    }

    #[test]
    fn query_by_task_and_kind() {
        let db = db();
        let quake_ramps = db.query().task(Task::Quake).kind(RunKind::Ramp).collect();
        // 8 users x 3 ramps.
        assert_eq!(quake_ramps.len(), 24);
        assert!(quake_ramps.iter().all(|r| r.task == "Quake"));
        let blanks = db.query().kind(RunKind::Blank).count();
        assert_eq!(blanks, 8 * 4 * 2);
    }

    #[test]
    fn query_composition() {
        let db = db();
        let total = db.query().count();
        let by_outcome = db.query().outcome(RunOutcome::Discomfort).count()
            + db.query().outcome(RunOutcome::Exhausted).count();
        assert_eq!(total, by_outcome);
        let u = db.users()[0].to_string();
        let user_runs = db.query().user(u.clone()).count();
        assert_eq!(user_runs, 32);
        let narrow = db
            .query()
            .user(u)
            .task(Task::Word)
            .testcase_contains("cpu")
            .collect();
        assert_eq!(narrow.len(), 2); // cpu ramp + cpu step
    }

    #[test]
    fn run_kind_classification() {
        assert_eq!(RunKind::of("word-cpu-ramp"), RunKind::Ramp);
        assert_eq!(RunKind::of("ie-disk-step"), RunKind::Step);
        assert_eq!(RunKind::of("quake-blank-2"), RunKind::Blank);
        assert_eq!(RunKind::of("cpu-expexp-0007"), RunKind::Other);
    }

    #[test]
    fn import_roundtrip() {
        let db = db();
        let dir = std::env::temp_dir().join(format!("uucs-db-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("results.txt");
        std::fs::write(&path, RunRecord::emit_many(db.all())).unwrap();
        let imported = ResultDatabase::import(&path).unwrap();
        assert_eq!(imported.all(), db.all());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_database() {
        let db = ResultDatabase::new();
        assert!(db.is_empty());
        assert_eq!(db.query().task(Task::Ie).count(), 0);
    }
}
