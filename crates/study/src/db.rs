//! The analysis-phase result database (Figure 2: "importing testcase
//! results into a database. An additional set of tools is then used to
//! analyze the results").
//!
//! [`ResultDatabase`] indexes uploaded run records by task, testcase,
//! user, and client, and offers a small query builder so analysis tools
//! can slice the data the way the paper's figures do.

use std::collections::HashMap;
use std::path::Path;
use uucs_protocol::{RunOutcome, RunRecord, WalEntry};
use uucs_workloads::Task;

/// The kind of testcase a record came from, judged by id convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunKind {
    /// A `*-ramp` testcase.
    Ramp,
    /// A `*-step` testcase.
    Step,
    /// A blank testcase.
    Blank,
    /// Anything else (sin/saw/queueing/trace).
    Other,
}

impl RunKind {
    /// Classifies a testcase id by its structured suffix.
    ///
    /// Every generator in the workspace builds ids from `-`-separated
    /// segments under one of two conventions:
    ///
    /// * Internet sweep: `{resource}-{kind}-{params...}`, e.g.
    ///   `cpu-ramp-7-120`, `disk-step-4-60-30`, `memory-sin-0.5-40`;
    ///   blanks are `blank-{n}-{duration}`.
    /// * Controlled study: `{task}-{resource}-{kind}`, e.g.
    ///   `word-cpu-ramp`, `quake-disk-step`; blanks are
    ///   `{task}-blank-{n}`.
    ///
    /// So the classification is structural, not substring matching: an
    /// id with an exact `blank` segment is [`RunKind::Blank`];
    /// otherwise the segment *immediately following the first resource
    /// segment* (`cpu`/`memory`/`disk`/`network`, per
    /// [`Resource`](uucs_testcase::Resource)) names the kind — exactly
    /// `ramp` or `step`, anything else (`sin`, `saw`, `expexp`,
    /// `exppar`, a missing segment) is [`RunKind::Other`]. Ids with no
    /// resource segment, such as a hypothetical `step-ramp-mix`, are
    /// [`RunKind::Other`] rather than whatever substring happens to
    /// appear first.
    pub fn of(testcase_id: &str) -> RunKind {
        let mut segments = testcase_id.split('-');
        if segments.clone().any(|s| s == "blank") {
            return RunKind::Blank;
        }
        let kind = segments
            .find(|s| s.parse::<uucs_testcase::Resource>().is_ok())
            .and_then(|_| segments.next());
        match kind {
            Some("ramp") => RunKind::Ramp,
            Some("step") => RunKind::Step,
            _ => RunKind::Other,
        }
    }
}

/// An indexed store of run records.
#[derive(Debug, Default)]
pub struct ResultDatabase {
    records: Vec<RunRecord>,
    by_task: HashMap<String, Vec<usize>>,
    by_user: HashMap<String, Vec<usize>>,
    by_testcase: HashMap<String, Vec<usize>>,
}

impl ResultDatabase {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a database from records.
    pub fn from_records(records: Vec<RunRecord>) -> Self {
        let mut db = Self::new();
        for r in records {
            db.insert(r);
        }
        db
    }

    /// Imports a result text file (the server's `results.txt`). Parse
    /// errors carry the file's line number.
    pub fn import(path: &Path) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        let records = RunRecord::parse_many(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        Ok(Self::from_records(records))
    }

    /// Imports a server's result *journal* (the `--wal` mode result
    /// directory) without going through a text export: folds the newest
    /// checkpoint, replays the records past it, and tolerates the torn
    /// final frame a crashed server leaves behind.
    ///
    /// The scan is strictly read-only ([`uucs_wal::WalReader`]), so the
    /// analysis phase can point at the data directory of a *live*
    /// server — nothing is truncated, renamed, or deleted.
    pub fn import_wal(dir: &Path) -> std::io::Result<Self> {
        // One-shot scans read every byte exactly once, so the cache
        // layer runs in strict passthrough: whole-segment buffered
        // reads, zero extra copies — never slower than a bare scan.
        Self::import_wal_cached(dir, 0)
    }

    /// [`ResultDatabase::import_wal`] with an ARC page cache of
    /// `cache_pages` 4 KiB pages in front of the journal — for analysis
    /// loops that re-scan a live server's directory periodically, where
    /// the unchanged older segments then come from memory. `0` is the
    /// strict-passthrough one-shot path.
    pub fn import_wal_cached(dir: &Path, cache_pages: usize) -> std::io::Result<Self> {
        let invalid =
            |e: String| std::io::Error::new(std::io::ErrorKind::InvalidData, e);
        let io = if cache_pages > 0 {
            uucs_pagecache::CachedIo::new(uucs_wal::StdIo::new(), cache_pages, 4096)
        } else {
            uucs_pagecache::CachedIo::passthrough(uucs_wal::StdIo::new())
        };
        let mut reader = uucs_wal::WalReader::open(io, dir)?;
        let mut records = Vec::new();
        if let Some(snap) = reader.take_snapshot() {
            let text = std::str::from_utf8(&snap.state)
                .map_err(|e| invalid(format!("snapshot is not utf-8: {e}")))?;
            // The result store's checkpoints lead with `SEQ <client> <n>`
            // dedup-horizon lines; the analysis phase only wants the
            // records below them.
            let mut body = text;
            while let Some(rest) = body.strip_prefix("SEQ ") {
                body = rest.split_once('\n').map_or("", |(_, tail)| tail);
            }
            records = RunRecord::parse_many(body).map_err(invalid)?;
        }
        for item in reader.records() {
            let (lsn, payload) = item?;
            match WalEntry::decode(&payload).map_err(invalid)? {
                WalEntry::Result(rec) => records.push(rec),
                WalEntry::Batch { records: batch, .. } => records.extend(batch),
                WalEntry::Testcase(_) => {
                    return Err(invalid(format!(
                        "record {lsn}: testcase entry in a result journal"
                    )))
                }
                WalEntry::Client { .. } => {
                    return Err(invalid(format!(
                        "record {lsn}: registry entry in a result journal"
                    )))
                }
                WalEntry::Model(_) => {
                    return Err(invalid(format!(
                        "record {lsn}: model entry in a result journal"
                    )))
                }
            }
        }
        Ok(Self::from_records(records))
    }

    /// Inserts one record, maintaining the indexes.
    pub fn insert(&mut self, record: RunRecord) {
        let idx = self.records.len();
        self.by_task.entry(record.task.clone()).or_default().push(idx);
        self.by_user.entry(record.user.clone()).or_default().push(idx);
        self.by_testcase
            .entry(record.testcase.clone())
            .or_default()
            .push(idx);
        self.records.push(record);
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records.
    pub fn all(&self) -> &[RunRecord] {
        &self.records
    }

    /// Distinct users, sorted.
    pub fn users(&self) -> Vec<&str> {
        let mut u: Vec<&str> = self.by_user.keys().map(String::as_str).collect();
        u.sort_unstable();
        u
    }

    /// Distinct testcase ids, sorted.
    pub fn testcases(&self) -> Vec<&str> {
        let mut t: Vec<&str> = self.by_testcase.keys().map(String::as_str).collect();
        t.sort_unstable();
        t
    }

    /// Starts a query.
    pub fn query(&self) -> Query<'_> {
        Query {
            db: self,
            task: None,
            user: None,
            kind: None,
            outcome: None,
            testcase_contains: None,
        }
    }
}

/// A filter builder over the database.
#[derive(Debug, Clone)]
pub struct Query<'a> {
    db: &'a ResultDatabase,
    task: Option<Task>,
    user: Option<String>,
    kind: Option<RunKind>,
    outcome: Option<RunOutcome>,
    testcase_contains: Option<String>,
}

impl<'a> Query<'a> {
    /// Restrict to one foreground task.
    pub fn task(mut self, task: Task) -> Self {
        self.task = Some(task);
        self
    }

    /// Restrict to one subject.
    pub fn user(mut self, user: impl Into<String>) -> Self {
        self.user = Some(user.into());
        self
    }

    /// Restrict to one testcase kind.
    pub fn kind(mut self, kind: RunKind) -> Self {
        self.kind = Some(kind);
        self
    }

    /// Restrict to one outcome.
    pub fn outcome(mut self, outcome: RunOutcome) -> Self {
        self.outcome = Some(outcome);
        self
    }

    /// Restrict to testcase ids containing a marker (e.g. `"cpu"`).
    pub fn testcase_contains(mut self, marker: impl Into<String>) -> Self {
        self.testcase_contains = Some(marker.into());
        self
    }

    /// Runs the query.
    pub fn collect(&self) -> Vec<&'a RunRecord> {
        // Use the most selective available index as the base set.
        let base: Box<dyn Iterator<Item = usize>> = if let Some(u) = &self.user {
            Box::new(
                self.db
                    .by_user
                    .get(u)
                    .map(|v| v.iter().copied())
                    .into_iter()
                    .flatten(),
            )
        } else if let Some(t) = self.task {
            Box::new(
                self.db
                    .by_task
                    .get(t.name())
                    .map(|v| v.iter().copied())
                    .into_iter()
                    .flatten(),
            )
        } else {
            Box::new(0..self.db.records.len())
        };
        base.map(|i| &self.db.records[i])
            .filter(|r| self.task.is_none_or(|t| r.task == t.name()))
            .filter(|r| self.user.as_deref().is_none_or(|u| r.user == u))
            .filter(|r| self.kind.is_none_or(|k| RunKind::of(&r.testcase) == k))
            .filter(|r| self.outcome.is_none_or(|o| r.outcome == o))
            .filter(|r| {
                self.testcase_contains
                    .as_deref()
                    .is_none_or(|m| r.testcase.contains(m))
            })
            .collect()
    }

    /// Number of matching records.
    pub fn count(&self) -> usize {
        self.collect().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controlled::{ControlledStudy, StudyConfig};
    use uucs_comfort::Fidelity;

    fn db() -> ResultDatabase {
        let data = ControlledStudy::new(StudyConfig {
            seed: 55,
            users: 8,
            fidelity: Fidelity::Fast,
        })
        .run();
        ResultDatabase::from_records(data.records)
    }

    #[test]
    fn indexes_cover_everything() {
        let db = db();
        assert_eq!(db.len(), 8 * 32);
        assert_eq!(db.users().len(), 8);
        assert_eq!(db.testcases().len(), 32);
    }

    #[test]
    fn query_by_task_and_kind() {
        let db = db();
        let quake_ramps = db.query().task(Task::Quake).kind(RunKind::Ramp).collect();
        // 8 users x 3 ramps.
        assert_eq!(quake_ramps.len(), 24);
        assert!(quake_ramps.iter().all(|r| r.task == "Quake"));
        let blanks = db.query().kind(RunKind::Blank).count();
        assert_eq!(blanks, 8 * 4 * 2);
    }

    #[test]
    fn query_composition() {
        let db = db();
        let total = db.query().count();
        let by_outcome = db.query().outcome(RunOutcome::Discomfort).count()
            + db.query().outcome(RunOutcome::Exhausted).count();
        assert_eq!(total, by_outcome);
        let u = db.users()[0].to_string();
        let user_runs = db.query().user(u.clone()).count();
        assert_eq!(user_runs, 32);
        let narrow = db
            .query()
            .user(u)
            .task(Task::Word)
            .testcase_contains("cpu")
            .collect();
        assert_eq!(narrow.len(), 2); // cpu ramp + cpu step
    }

    #[test]
    fn run_kind_classification() {
        // One row per id shape the workspace's generators can emit,
        // plus the adversarial shapes substring matching used to get
        // wrong. See the `RunKind::of` docs for the two conventions.
        let table: &[(&str, RunKind)] = &[
            // Controlled study: {task}-{resource}-{kind}.
            ("word-cpu-ramp", RunKind::Ramp),
            ("ie-disk-step", RunKind::Step),
            ("quake-network-ramp", RunKind::Ramp),
            ("quake-blank-2", RunKind::Blank),
            // Internet sweep: {resource}-{kind}-{params...}.
            ("cpu-ramp-7-120", RunKind::Ramp),
            ("disk-step-4-60-30", RunKind::Step),
            ("memory-sin-0.5-40", RunKind::Other),
            ("net-saw-0.25-40", RunKind::Other),
            ("cpu-expexp-0007", RunKind::Other),
            ("cpu-exppar-0012", RunKind::Other),
            ("blank-3-60", RunKind::Blank),
            // Adversarial: `ramp`/`step` segments that do not follow a
            // resource segment must not classify.
            ("step-ramp-mix", RunKind::Other),
            ("ramp-cpu", RunKind::Other),
            ("trace-17", RunKind::Other),
            // A resource with no following segment at all.
            ("cpu", RunKind::Other),
            ("", RunKind::Other),
        ];
        for (id, want) in table {
            assert_eq!(RunKind::of(id), *want, "id {id:?}");
        }
    }

    #[test]
    fn import_roundtrip() {
        let db = db();
        let dir = uucs_harness::TempDir::new("uucs-db");
        let path = dir.join("results.txt");
        std::fs::write(&path, RunRecord::emit_many(db.all())).unwrap();
        let imported = ResultDatabase::import(&path).unwrap();
        assert_eq!(imported.all(), db.all());
    }

    #[test]
    fn import_wal_folds_snapshot_and_tail() {
        use uucs_protocol::WalEntry;
        use uucs_wal::{StdIo, SyncPolicy, Wal, WalConfig};

        let db = db();
        let records = &db.all()[..10];
        let dir = uucs_harness::TempDir::new("uucs-db-wal");
        let config = WalConfig {
            segment_bytes: 512,
            sync: SyncPolicy::Always,
        };
        // Journal records the way the server's result store does: the
        // first half folded into a checkpoint, the rest left as tail.
        {
            let (mut wal, _) = Wal::open(StdIo::new(), dir.path(), config).unwrap();
            for rec in &records[..5] {
                wal.append(&WalEntry::Result(rec.clone()).encode()).unwrap();
            }
            wal.snapshot(RunRecord::emit_many(&records[..5]).as_bytes())
                .unwrap();
            wal.compact().unwrap();
            for rec in &records[5..8] {
                wal.append(&WalEntry::Result(rec.clone()).encode()).unwrap();
            }
            // Idempotent uploads journal whole batches; the importer
            // folds those too.
            wal.append(
                &WalEntry::Batch {
                    client: "client-0001".into(),
                    seq: 1,
                    records: records[8..].to_vec(),
                }
                .encode(),
            )
            .unwrap();
        }
        let imported = ResultDatabase::import_wal(dir.path()).unwrap();
        assert_eq!(imported.all(), records);

        // A testcase entry in a result journal is a structural error.
        let dir2 = uucs_harness::TempDir::new("uucs-db-wal-bad");
        {
            let (mut wal, _) = Wal::open(StdIo::new(), dir2.path(), config).unwrap();
            let tc = uucs_testcase::Testcase::single(
                "t0",
                1.0,
                uucs_testcase::Resource::Cpu,
                uucs_testcase::ExerciseSpec::Ramp {
                    level: 1.0,
                    duration: 30.0,
                },
            );
            wal.append(&WalEntry::Testcase(tc).encode()).unwrap();
        }
        let err = ResultDatabase::import_wal(dir2.path()).unwrap_err();
        assert!(err.to_string().contains("testcase entry"), "{err}");
    }

    #[test]
    fn empty_database() {
        let db = ResultDatabase::new();
        assert!(db.is_empty());
        assert_eq!(db.query().task(Task::Ie).count(), 0);
    }
}
