//! Closed-loop borrowing evaluation: the governor against fixed levels.
//!
//! The paper's punchline is that resource borrowing has a measurable
//! comfort frontier — borrow more and more users object. This module
//! closes the loop the paper leaves open: a population is run through
//! the real client/server pipeline (ramp testcases, hot-synced uploads,
//! server-side comfort-model aggregation), a
//! [`BorrowingGovernor`](uucs_client::BorrowingGovernor) then asks the
//! server's model service for the highest borrowing level whose
//! predicted discomfort probability stays under a target `epsilon`, and
//! both the governed level and a grid of fixed levels are evaluated
//! against the same simulated population: borrowed resource-seconds
//! offered per session versus the fraction of users discomforted.
//!
//! The governor should land at (or just past) the knee: at least as much
//! borrowed resource as the best fixed level that keeps the simulated
//! discomfort rate under `epsilon`, without requiring anyone to know the
//! population's thresholds in advance. Everything is seeded, so the
//! frontier is reproducible run to run.

use std::sync::Arc;
use uucs_client::{BorrowingGovernor, LocalTransport, RefreshOutcome, UucsClient};
use uucs_comfort::{calibration, Fidelity, UserPopulation};
use uucs_protocol::MachineSnapshot;
use uucs_server::{TestcaseStore, UucsServer};
use uucs_stats::Pcg64;
use uucs_testcase::Resource;
use uucs_workloads::Task;

/// Closed-loop evaluation parameters.
#[derive(Debug, Clone)]
pub struct ClosedLoopConfig {
    /// Root seed; population, run order, and exercise noise all derive
    /// from it.
    pub seed: u64,
    /// Population size (the paper's controlled study had 33).
    pub users: usize,
    /// The task the population performs while the system borrows.
    pub task: Task,
    /// The borrowed resource.
    pub resource: Resource,
    /// Target discomfort probability for the governor.
    pub epsilon: f64,
    /// Borrowing-session length in seconds (scales borrowed totals only).
    pub session_secs: f64,
    /// Fixed borrowing levels to evaluate against the governor. Empty
    /// means a 20-point grid over the resource's contention range.
    pub levels: Vec<f64>,
}

impl Default for ClosedLoopConfig {
    fn default() -> Self {
        ClosedLoopConfig {
            seed: 2004,
            users: 33,
            task: Task::Word,
            resource: Resource::Cpu,
            epsilon: 0.05,
            session_secs: 600.0,
            levels: Vec::new(),
        }
    }
}

impl ClosedLoopConfig {
    /// The fixed-level grid actually evaluated: the configured levels, or
    /// a 20-point grid over `(0, max_contention]`.
    pub fn level_grid(&self) -> Vec<f64> {
        if !self.levels.is_empty() {
            return self.levels.clone();
        }
        let max = self.resource.max_contention();
        (1..=20).map(|i| i as f64 * max / 20.0).collect()
    }
}

/// One point on the borrowed-versus-discomfort frontier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontierPoint {
    /// The borrowing level (contention value).
    pub level: f64,
    /// Borrowed resource-seconds offered per session at this level.
    pub borrowed: f64,
    /// Fraction of the population discomforted at this level.
    pub discomfort_rate: f64,
}

/// Closed-loop evaluation outputs.
#[derive(Debug, Clone)]
pub struct ClosedLoopData {
    /// The frontier for each fixed level, in grid order.
    pub fixed: Vec<FrontierPoint>,
    /// The frontier point the governor landed on.
    pub governor: FrontierPoint,
    /// The model epoch the governor's advice was computed at.
    pub epoch: u64,
    /// Feedback (discomfort) observations in the server's model.
    pub observations: u64,
    /// The config that produced the data.
    pub config: ClosedLoopConfig,
}

impl ClosedLoopData {
    /// The best fixed point: maximum borrowed among levels whose
    /// discomfort rate stays strictly under `epsilon`. `None` when even
    /// the smallest grid level discomforts too many users.
    pub fn best_fixed(&self) -> Option<&FrontierPoint> {
        self.fixed
            .iter()
            .filter(|p| p.discomfort_rate < self.config.epsilon)
            .max_by(|a, b| a.borrowed.total_cmp(&b.borrowed))
    }

    /// Whether the governor met the closed-loop acceptance bar: borrowed
    /// at least as much as the best under-epsilon fixed level (or there
    /// was no such level at all).
    pub fn governor_beats_fixed(&self) -> bool {
        match self.best_fixed() {
            Some(best) => self.governor.borrowed >= best.borrowed,
            None => true,
        }
    }
}

/// The closed-loop evaluation driver.
pub struct ClosedLoop {
    config: ClosedLoopConfig,
}

impl ClosedLoop {
    /// Creates the evaluation.
    pub fn new(config: ClosedLoopConfig) -> Self {
        ClosedLoop { config }
    }

    /// Runs the evaluation end to end: train the server's comfort model
    /// through the real pipeline, fetch governed advice, then score the
    /// governed level against the fixed grid on the same population.
    pub fn run(&self) -> ClosedLoopData {
        let cfg = &self.config;
        let library = calibration::controlled_testcases(cfg.task);
        let server = Arc::new(UucsServer::new(
            TestcaseStore::from_testcases(library).expect("unique ids"),
            cfg.seed,
        ));
        let population = UserPopulation::generate(cfg.users, cfg.seed);
        let root = Pcg64::new(cfg.seed).split_str("closed-loop");

        // Training: every subject runs the task's ramp testcases through
        // a real client; the hot-synced uploads feed the server's comfort
        // model exactly as production traffic would. Ramps only: a ramp
        // expresses discomfort *at* the user's level, while a step
        // records its plateau (an upper bound) and a blank records the
        // noise floor — both would bias the learned quantiles.
        for (i, user) in population.users().iter().enumerate() {
            let mut rng = root.split(i as u64);
            let mut transport = LocalTransport::new(server.clone());
            let mut client = UucsClient::new(
                MachineSnapshot::study_machine(format!("loop-host-{i:02}")),
                rng.next_u64(),
            );
            client.register(&mut transport).expect("local transport");
            for tc in calibration::controlled_testcases(cfg.task)
                .into_iter()
                .filter(|tc| tc.id.as_str().contains("ramp"))
            {
                let run_seed = rng.next_u64();
                client.perform_run(user, cfg.task, &tc, Fidelity::Fast, run_seed);
            }
            client.hot_sync(&mut transport).expect("upload");
        }

        // Advice: the governor fetches the epsilon-quantile level.
        let mut transport = LocalTransport::new(server.clone());
        let mut governor =
            BorrowingGovernor::new(cfg.resource, cfg.task.name(), cfg.epsilon, 0.0);
        let outcome = governor.refresh(&mut transport);
        assert_eq!(
            outcome,
            RefreshOutcome::Adopted,
            "training produced a model, so advice must arrive"
        );
        let observed = server.model_sketch(cfg.resource, None).observed();

        // Evaluation: the same population's thresholds score every level.
        let fixed = cfg
            .level_grid()
            .iter()
            .map(|&level| self.score(&population, level))
            .collect();
        let governed = self.score(&population, governor.level());

        ClosedLoopData {
            fixed,
            governor: governed,
            epoch: governor.epoch().expect("advice adopted"),
            observations: observed,
            config: cfg.clone(),
        }
    }

    /// Scores one borrowing level against the population: how much is
    /// offered per session, and what fraction of users object.
    fn score(&self, population: &UserPopulation, level: f64) -> FrontierPoint {
        let cfg = &self.config;
        let n = population.len().max(1);
        let discomforted = population
            .users()
            .iter()
            .filter(|u| u.threshold(cfg.task, cfg.resource) <= level)
            .count();
        FrontierPoint {
            level,
            borrowed: level * cfg.session_secs,
            discomfort_rate: discomforted as f64 / n as f64,
        }
    }
}

/// Renders the frontier as a fixed-width table with the governor's row
/// and the best fixed row marked.
pub fn render_closed_loop(data: &ClosedLoopData) -> String {
    use std::fmt::Write as _;
    let cfg = &data.config;
    let mut out = String::new();
    writeln!(
        out,
        "Closed-loop borrowing: {} on {}, epsilon {:.2}, {} users (model epoch {}, {} observations)",
        cfg.task.name(),
        cfg.resource,
        cfg.epsilon,
        cfg.users,
        data.epoch,
        data.observations,
    )
    .unwrap();
    writeln!(
        out,
        "  {:>8}  {:>14}  {:>10}",
        "level", "borrowed/sess", "discomfort"
    )
    .unwrap();
    let best = data.best_fixed().copied();
    for p in &data.fixed {
        let marker = match best {
            Some(b) if b.level == p.level => "  <- best fixed under epsilon",
            _ => "",
        };
        writeln!(
            out,
            "  {:>8.3}  {:>14.1}  {:>9.1}%{}",
            p.level,
            p.borrowed,
            p.discomfort_rate * 100.0,
            marker
        )
        .unwrap();
    }
    writeln!(
        out,
        "  {:>8.3}  {:>14.1}  {:>9.1}%  <- governor",
        data.governor.level,
        data.governor.borrowed,
        data.governor.discomfort_rate * 100.0
    )
    .unwrap();
    writeln!(
        out,
        "  governor {} the best fixed level",
        if data.governor_beats_fixed() {
            "matches or beats"
        } else {
            "TRAILS"
        }
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ClosedLoopData {
        ClosedLoop::new(ClosedLoopConfig {
            users: 12,
            ..ClosedLoopConfig::default()
        })
        .run()
    }

    #[test]
    fn governor_meets_the_acceptance_bar_at_study_scale() {
        let data = ClosedLoop::new(ClosedLoopConfig::default()).run();
        let best = data.best_fixed().expect("some level stays under epsilon");
        assert!(
            data.governor.borrowed >= best.borrowed,
            "governor borrowed {:.1} < best fixed {:.1} (level {:.2})",
            data.governor.borrowed,
            best.borrowed,
            best.level
        );
        assert!(data.epoch > 0, "training must have advanced the model");
        assert!(data.observations > 0);
    }

    #[test]
    fn evaluation_is_deterministic_under_a_fixed_seed() {
        let a = small();
        let b = small();
        assert_eq!(a.governor, b.governor);
        assert_eq!(a.epoch, b.epoch);
        assert_eq!(a.fixed, b.fixed);
    }

    #[test]
    fn discomfort_rate_is_monotone_in_the_level() {
        let data = small();
        for pair in data.fixed.windows(2) {
            assert!(pair[0].discomfort_rate <= pair[1].discomfort_rate);
        }
    }

    #[test]
    fn render_mentions_the_governor_row() {
        let data = small();
        let table = render_closed_loop(&data);
        assert!(table.contains("<- governor"));
        assert!(table.contains("Closed-loop borrowing"));
    }
}
