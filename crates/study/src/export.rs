//! CSV export of every figure's data series, for external plotting.
//!
//! `cargo run -p uucs-study -- export <dir>` writes one CSV per figure;
//! each file carries the series a plotting tool needs to redraw the
//! paper's graphic.

use crate::controlled::StudyData;
use crate::{figures, frog, skill};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use uucs_testcase::Resource;
use uucs_workloads::Task;

/// Writes every figure's CSV into `dir`, returning the paths written.
pub fn write_figure_csvs(data: &StudyData, dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    let mut put = |name: &str, body: String| -> std::io::Result<()> {
        let path = dir.join(name);
        std::fs::write(&path, body)?;
        written.push(path);
        Ok(())
    };

    // Figure 9.
    {
        let (per_task, total) = figures::fig9(data);
        let mut s = String::from("task,nonblank_df,nonblank_ex,blank_df,blank_ex,noise_prob\n");
        for (task, b) in &per_task {
            writeln!(
                s,
                "{},{},{},{},{},{:.4}",
                task.name(),
                b.nonblank_df,
                b.nonblank_ex,
                b.blank_df,
                b.blank_ex,
                b.noise_prob()
            )
            .unwrap();
        }
        writeln!(
            s,
            "Total,{},{},{},{},{:.4}",
            total.nonblank_df,
            total.nonblank_ex,
            total.blank_df,
            total.blank_ex,
            total.noise_prob()
        )
        .unwrap();
        put("fig09_run_breakdown.csv", s)?;
    }

    // Figures 10-12: aggregated CDF step series.
    for (fig, r) in [(10, Resource::Cpu), (11, Resource::Memory), (12, Resource::Disk)] {
        let cdf = figures::aggregate_cdf(data, r);
        let mut s = String::from("contention,cum_fraction\n");
        for (x, y) in cdf.steps() {
            writeln!(s, "{x:.4},{y:.5}").unwrap();
        }
        put(&format!("fig{fig}_cdf_{r}.csv"), s)?;
    }

    // Figure 13.
    {
        let mut s = String::from("task,cpu,memory,disk\n");
        for (task, row) in figures::fig13(data) {
            writeln!(
                s,
                "{},{},{},{}",
                task.name(),
                row[0].code(),
                row[1].code(),
                row[2].code()
            )
            .unwrap();
        }
        put("fig13_sensitivity.csv", s)?;
    }

    // Figures 14-16 in one long-form table.
    {
        let mut s = String::from("task,resource,f_d,c_05,c_a,c_a_lo,c_a_hi\n");
        let mut row = |task: &str, r: Resource, m: &uucs_comfort::CellMetrics| {
            let f = |v: Option<f64>| v.map(|x| format!("{x:.4}")).unwrap_or_default();
            let (lo, hi) = m.c_a_ci.map(|(a, b)| (Some(a), Some(b))).unwrap_or((None, None));
            writeln!(
                s,
                "{task},{r},{},{},{},{},{}",
                f(m.f_d),
                f(m.c_05),
                f(m.c_a),
                f(lo),
                f(hi)
            )
            .unwrap();
        };
        for task in Task::ALL {
            for r in Resource::STUDIED {
                row(task.name(), r, &figures::cell_metrics(data, task, r));
            }
        }
        for r in Resource::STUDIED {
            row("Total", r, &figures::total_metrics(data, r));
        }
        put("fig14_16_metrics.csv", s)?;
    }

    // Figure 17.
    {
        let mut s = String::from("task,resource,rating,p,diff,n_hi,n_lo\n");
        for r in skill::fig17(data, 1.0) {
            writeln!(
                s,
                "{},{},{},{:.6},{:.4},{},{}",
                r.task.name(),
                r.resource,
                r.rating,
                r.p,
                r.diff,
                r.n.0,
                r.n.1
            )
            .unwrap();
        }
        put("fig17_skill.csv", s)?;
    }

    // Figure 18: one CDF per cell, long form.
    {
        let mut s = String::from("task,resource,contention,cum_fraction\n");
        for task in Task::ALL {
            for r in Resource::STUDIED {
                let m = figures::cell_metrics(data, task, r);
                for (x, y) in m.ecdf.steps() {
                    writeln!(s, "{},{r},{x:.4},{y:.5}", task.name()).unwrap();
                }
            }
        }
        put("fig18_cdf_grid.csv", s)?;
    }

    // Frog (§3.3.5).
    {
        let mut s = String::from("task,resource,pairs,frac_ramp_higher,mean_diff,p\n");
        for r in frog::frog_all(data) {
            writeln!(
                s,
                "{},{},{},{:.4},{:.4},{}",
                r.task.name(),
                r.resource,
                r.n_pairs,
                r.frac_ramp_higher,
                r.mean_diff,
                r.p.map(|p| format!("{p:.6}")).unwrap_or_default()
            )
            .unwrap();
        }
        put("frog_ramp_vs_step.csv", s)?;
    }

    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controlled::{ControlledStudy, StudyConfig};
    use uucs_comfort::Fidelity;

    #[test]
    fn writes_all_csvs_and_they_parse() {
        let data = ControlledStudy::new(StudyConfig {
            seed: 66,
            users: 10,
            fidelity: Fidelity::Fast,
        })
        .run();
        let dir = std::env::temp_dir().join(format!("uucs-export-{}", std::process::id()));
        let files = write_figure_csvs(&data, &dir).unwrap();
        assert_eq!(files.len(), 9);
        for f in &files {
            let text = std::fs::read_to_string(f).unwrap();
            let mut lines = text.lines();
            let header = lines.next().unwrap();
            let cols = header.split(',').count();
            assert!(cols >= 2, "{f:?}");
            let mut rows = 0;
            for line in lines {
                assert_eq!(line.split(',').count(), cols, "ragged row in {f:?}");
                rows += 1;
            }
            assert!(rows > 0, "{f:?} has no data");
        }
        // Spot check: the CPU CDF ends at the fraction f_d.
        let cdf = std::fs::read_to_string(dir.join("fig10_cdf_cpu.csv")).unwrap();
        let last = cdf.lines().last().unwrap();
        let frac: f64 = last.split(',').nth(1).unwrap().parse().unwrap();
        assert!(frac > 0.5 && frac <= 1.0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
