//! Study drivers and figure/table regenerators.
//!
//! * [`controlled`] — the Northwestern controlled study (§3): 33 users ×
//!   4 tasks × 8 testcases, executed through the real client/server
//!   pipeline (deterministic-mode clients, hot-synced results).
//! * [`internet`] — the Internet-wide study (§4): ~100 heterogeneous
//!   clients with Poisson run arrivals sampling a >2000-testcase library.
//! * [`figures`] — regenerators for Figures 9–16 and 18.
//! * [`skill`] — the Figure 17 skill-class t-test table.
//! * [`frog`] — the §3.3.5 ramp-vs-step ("frog in the pot") analysis.
//! * [`report`] — fixed-width table rendering and the paper-vs-measured
//!   comparison report behind EXPERIMENTS.md.
//! * [`closedloop`] — the closed-loop borrowing evaluation: the
//!   server-aggregated comfort model driving a client-side
//!   `BorrowingGovernor`, scored against fixed borrowing levels.
//! * [`db`] — the Figure 2 analysis database: indexed, queryable run
//!   records importable from the server's text store.
//! * [`export`] — CSV series for every figure, for external plotting.
//! * [`dynamics`] — question 5 over the Internet-study data: discomfort
//!   probability by exercise-function shape at matched mean borrowing.
//! * [`perception_study`] — the calibration-free reproduction: the study
//!   re-run with perception-driven users on full-fidelity machines.
//!
//! The `uucs-study` binary exposes all of it:
//! `cargo run -p uucs-study -- --all`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod closedloop;
pub mod controlled;
pub mod db;
pub mod dynamics;
pub mod export;
pub mod figures;
pub mod fleet;
pub mod frog;
pub mod internet;
pub mod perception_study;
pub mod report;
pub mod skill;

pub use closedloop::{ClosedLoop, ClosedLoopConfig, ClosedLoopData};
pub use fleet::{FleetConfig, FleetReport};
pub use controlled::{ControlledStudy, StudyConfig, StudyData};
pub use internet::{InternetStudy, InternetStudyConfig};
