//! Paper-vs-measured comparison reporting — the machinery behind
//! EXPERIMENTS.md.

use crate::controlled::StudyData;
use crate::figures;
use uucs_comfort::calibration;
use uucs_testcase::Resource;

/// One paper-vs-measured comparison line.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// What is being compared (e.g. `"f_d Word/CPU"`).
    pub what: String,
    /// The paper's published value.
    pub paper: Option<f64>,
    /// Our regenerated value.
    pub measured: Option<f64>,
}

impl Comparison {
    /// Absolute error, when both sides exist.
    pub fn abs_err(&self) -> Option<f64> {
        Some((self.paper? - self.measured?).abs())
    }
}

/// Compares every per-cell and total `f_d`, `c_0.05`, and `c_a` against
/// the paper.
pub fn compare_metrics(data: &StudyData) -> Vec<Comparison> {
    let mut out = Vec::new();
    for c in &calibration::CELLS {
        let m = figures::cell_metrics(data, c.task, c.resource);
        out.push(Comparison {
            what: format!("f_d {}/{}", c.task.name(), c.resource),
            paper: Some(c.f_d),
            measured: m.f_d,
        });
        out.push(Comparison {
            what: format!("c_0.05 {}/{}", c.task.name(), c.resource),
            paper: c.c_05,
            measured: m.c_05,
        });
        out.push(Comparison {
            what: format!("c_a {}/{}", c.task.name(), c.resource),
            paper: c.c_a.map(|x| x.0),
            measured: m.c_a,
        });
    }
    for (resource, f_d, c05, ca) in calibration::TOTALS {
        let m = figures::total_metrics(data, resource);
        out.push(Comparison {
            what: format!("f_d Total/{resource}"),
            paper: Some(f_d),
            measured: m.f_d,
        });
        out.push(Comparison {
            what: format!("c_0.05 Total/{resource}"),
            paper: Some(c05),
            measured: m.c_05,
        });
        out.push(Comparison {
            what: format!("c_a Total/{resource}"),
            paper: Some(ca.0),
            measured: m.c_a,
        });
    }
    out
}

/// Compares the Figure 9 noise floors.
pub fn compare_noise_floors(data: &StudyData) -> Vec<Comparison> {
    let (per_task, _) = figures::fig9(data);
    per_task
        .iter()
        .map(|(task, b)| Comparison {
            what: format!("noise floor {}", task.name()),
            paper: Some(calibration::noise_floor(*task)),
            measured: Some(b.noise_prob()),
        })
        .collect()
}

fn fmt_opt(v: Option<f64>) -> String {
    v.map(|x| format!("{x:.3}")).unwrap_or_else(|| "*".into())
}

/// Renders a comparison table.
pub fn render_comparisons(title: &str, comparisons: &[Comparison]) -> String {
    let mut out = format!(
        "{title}\n{:<28} {:>9} {:>9} {:>8}\n",
        "metric", "paper", "ours", "|err|"
    );
    for c in comparisons {
        out.push_str(&format!(
            "{:<28} {:>9} {:>9} {:>8}\n",
            c.what,
            fmt_opt(c.paper),
            fmt_opt(c.measured),
            fmt_opt(c.abs_err())
        ));
    }
    out
}

/// The full experiment report: every table and figure regenerated, with
/// paper-vs-measured comparisons. This is what EXPERIMENTS.md records.
pub fn full_report(data: &StudyData) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "UUCS-RS controlled study report — seed {}, {} users, {} runs\n\n",
        data.config.seed,
        data.population.len(),
        data.records.len()
    ));
    out.push_str(&figures::render_fig9(data));
    out.push('\n');
    for r in Resource::STUDIED {
        out.push_str(&figures::render_aggregate_cdf(data, r));
        out.push('\n');
    }
    out.push_str(&figures::render_fig13(data));
    out.push('\n');
    out.push_str(&figures::render_metric_table(data, 14));
    out.push('\n');
    out.push_str(&figures::render_metric_table(data, 15));
    out.push('\n');
    out.push_str(&figures::render_metric_table(data, 16));
    out.push('\n');
    out.push_str(&crate::skill::render_fig17(data, 0.05));
    out.push('\n');
    out.push_str(&crate::frog::render_frog(data));
    out.push('\n');
    out.push_str(&render_comparisons(
        "Paper vs measured: comfort metrics",
        &compare_metrics(data),
    ));
    out.push('\n');
    out.push_str(&render_comparisons(
        "Paper vs measured: noise floors",
        &compare_noise_floors(data),
    ));
    out
}

/// Quick sanity grade: fraction of comparable metrics within `tol` of the
/// paper's value.
pub fn agreement_fraction(data: &StudyData, tol: f64) -> f64 {
    let comps = compare_metrics(data);
    let comparable: Vec<_> = comps.iter().filter_map(Comparison::abs_err).collect();
    if comparable.is_empty() {
        return 0.0;
    }
    comparable.iter().filter(|&&e| e <= tol).count() as f64 / comparable.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controlled::{ControlledStudy, StudyConfig};
    use uucs_comfort::Fidelity;

    fn data() -> StudyData {
        ControlledStudy::new(StudyConfig {
            seed: 41,
            users: 33,
            fidelity: Fidelity::Fast,
        })
        .run()
    }

    #[test]
    fn comparisons_cover_all_cells_and_totals() {
        let c = compare_metrics(&data());
        // 12 cells x 3 metrics + 3 totals x 3 metrics.
        assert_eq!(c.len(), 12 * 3 + 9);
    }

    #[test]
    fn most_metrics_agree_with_the_paper() {
        let d = data();
        // At the paper's own sample size, the shape holds: most metrics
        // land within 0.5 contention units of the published value.
        let frac = agreement_fraction(&d, 0.5);
        assert!(frac > 0.7, "agreement {frac}");
    }

    #[test]
    fn noise_floor_comparisons() {
        let c = compare_noise_floors(&data());
        assert_eq!(c.len(), 4);
        let word = c.iter().find(|x| x.what.contains("Word")).unwrap();
        assert_eq!(word.measured, Some(0.0));
    }

    #[test]
    fn full_report_renders_everything() {
        let report = full_report(&data());
        for needle in [
            "Figure 9",
            "Figure 10",
            "Figure 11",
            "Figure 12",
            "Figure 13",
            "Figure 14",
            "Figure 15",
            "Figure 16",
            "Figure 17",
            "Frog-in-the-pot",
            "Paper vs measured",
        ] {
            assert!(report.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn missing_values_render_as_star() {
        assert_eq!(fmt_opt(None), "*");
        let c = Comparison {
            what: "x".into(),
            paper: None,
            measured: Some(1.0),
        };
        assert_eq!(c.abs_err(), None);
    }
}
