//! §3.3.5: time dynamics — the "frog in the pot" hypothesis.
//!
//! "We paired ramp and step testcases in our study to explore if a
//! similar phenomenon might be true of user comfort with resource
//! borrowing — that a user would be more tolerant of a slow ramp than a
//! quick step to the same level. We did observe the phenomenon in
//! Powerpoint/CPU — the majority of users (96%) tolerated higher levels
//! in the ramp testcase with a contention difference of 0.22 (averaged)
//! with a p-value of 0.0001."
//!
//! The comparison uses the contention level at the feedback point of each
//! user's ramp run versus their step run in the same cell, over users
//! discomforted in *both*. Note the built-in censoring: the step jumps
//! straight to its plateau, so a user with a genuinely lower threshold
//! still reports at the plateau level — which is exactly why the observed
//! ramp-minus-step difference skews positive.

use crate::controlled::StudyData;
use std::collections::HashMap;
use uucs_protocol::RunOutcome;
use uucs_stats::paired_t_test;
use uucs_testcase::Resource;
use uucs_workloads::Task;

/// The ramp-vs-step comparison for one cell.
#[derive(Debug, Clone, PartialEq)]
pub struct FrogResult {
    /// The context.
    pub task: Task,
    /// The resource.
    pub resource: Resource,
    /// Users discomforted in both the ramp and the step run.
    pub n_pairs: usize,
    /// Fraction of those tolerating a higher level in the ramp.
    pub frac_ramp_higher: f64,
    /// Mean (ramp − step) contention difference.
    pub mean_diff: f64,
    /// Two-sided paired t-test p-value (`None` if under 2 pairs or zero
    /// variance).
    pub p: Option<f64>,
}

/// Computes the comparison for one cell.
pub fn frog_cell(data: &StudyData, task: Task, resource: Resource) -> FrogResult {
    let prefix = format!("{}-{}", task.name().to_lowercase(), resource.name());
    let mut ramp_levels: HashMap<&str, f64> = HashMap::new();
    let mut step_levels: HashMap<&str, f64> = HashMap::new();
    for r in &data.records {
        if r.outcome != RunOutcome::Discomfort || !r.testcase.starts_with(&prefix) {
            continue;
        }
        let Some(level) = r.level_at_feedback(resource) else {
            continue;
        };
        if r.testcase.ends_with("ramp") {
            ramp_levels.insert(r.user.as_str(), level);
        } else if r.testcase.ends_with("step") {
            step_levels.insert(r.user.as_str(), level);
        }
    }
    let mut ramps = Vec::new();
    let mut steps = Vec::new();
    for (user, &rl) in &ramp_levels {
        if let Some(&sl) = step_levels.get(user) {
            ramps.push(rl);
            steps.push(sl);
        }
    }
    let n_pairs = ramps.len();
    let higher = ramps
        .iter()
        .zip(&steps)
        .filter(|(r, s)| r > s)
        .count();
    let mean_diff = if n_pairs == 0 {
        0.0
    } else {
        ramps
            .iter()
            .zip(&steps)
            .map(|(r, s)| r - s)
            .sum::<f64>()
            / n_pairs as f64
    };
    FrogResult {
        task,
        resource,
        n_pairs,
        frac_ramp_higher: if n_pairs == 0 {
            0.0
        } else {
            higher as f64 / n_pairs as f64
        },
        mean_diff,
        p: paired_t_test(&ramps, &steps).map(|t| t.p),
    }
}

/// Computes the comparison for every cell.
pub fn frog_all(data: &StudyData) -> Vec<FrogResult> {
    let mut out = Vec::new();
    for &task in &Task::ALL {
        for &resource in &Resource::STUDIED {
            out.push(frog_cell(data, task, resource));
        }
    }
    out
}

/// Renders the §3.3.5 table.
pub fn render_frog(data: &StudyData) -> String {
    let mut out = String::from(
        "Frog-in-the-pot (ramp vs step) — §3.3.5\n\
         Paper (Powerpoint/CPU): 96% tolerated higher in ramp, diff 0.22, p = 0.0001\n",
    );
    out.push_str(&format!(
        "{:<12} {:<8} {:>7} {:>12} {:>10} {:>10}\n",
        "Task", "Rsrc", "pairs", "ramp>step", "mean diff", "p"
    ));
    for r in frog_all(data) {
        out.push_str(&format!(
            "{:<12} {:<8} {:>7} {:>11.0}% {:>10.3} {:>10}\n",
            r.task.name(),
            r.resource,
            r.n_pairs,
            r.frac_ramp_higher * 100.0,
            r.mean_diff,
            r.p.map(|p| format!("{p:.4}")).unwrap_or_else(|| "-".into())
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controlled::{ControlledStudy, StudyConfig};
    use uucs_comfort::Fidelity;

    fn big_data() -> StudyData {
        ControlledStudy::new(StudyConfig {
            seed: 31,
            users: 400,
            fidelity: Fidelity::Fast,
        })
        .run()
    }

    #[test]
    fn powerpoint_cpu_shows_the_phenomenon() {
        let r = frog_cell(&big_data(), Task::Powerpoint, Resource::Cpu);
        assert!(r.n_pairs >= 5, "pairs {}", r.n_pairs);
        // The paper's 96%: the overwhelming majority tolerate more in the
        // ramp (sampling noise allowed for).
        assert!(
            r.frac_ramp_higher > 0.7,
            "frac {} with {} pairs",
            r.frac_ramp_higher,
            r.n_pairs
        );
        assert!(r.mean_diff > 0.03, "mean diff {}", r.mean_diff);
        if let Some(p) = r.p {
            assert!(p < 0.05, "p {p}");
        }
    }

    #[test]
    fn quake_cpu_has_pairs_and_a_verdict() {
        // The paper only *observed* the phenomenon in Powerpoint/CPU. In
        // Quake/CPU the step sits far below the ramp ceiling (0.5 vs
        // 1.3), so the plateau-censoring cuts the other way; we just
        // check the analysis produces a verdict on plenty of pairs.
        let r = frog_cell(&big_data(), Task::Quake, Resource::Cpu);
        assert!(r.n_pairs > 50, "pairs {}", r.n_pairs);
        assert!(r.p.is_some());
    }

    #[test]
    fn empty_cell_yields_zero_pairs() {
        // Word/Memory: nobody is ever discomforted.
        let r = frog_cell(&big_data(), Task::Word, Resource::Memory);
        assert_eq!(r.n_pairs, 0);
        assert_eq!(r.p, None);
    }

    #[test]
    fn render_lists_all_cells() {
        let s = render_frog(&big_data());
        assert!(s.contains("Powerpoint"));
        assert!(s.contains("Quake"));
        assert_eq!(s.lines().count(), 3 + 12);
    }
}
