//! The `uucs-study` binary: regenerates every table and figure of the
//! paper from a fresh run of the controlled study.
//!
//! ```text
//! uucs-study [--seed N] [--users N] [--full-fidelity] <selector>...
//!   selectors: fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15 fig16
//!              fig17 fig17rank fig18 frog compare internet dynamics
//!              perception closedloop verify --all
//!   other:     export <dir>   (write every figure's CSV series)
//!
//! uucs-study fleet [--quick] [--cluster] [--clients N]
//!                  [--fleet-workers N] [--secs S] [--addr HOST:PORT]
//!                  [--failover-addr HOST:PORT] [--shards N]
//!                  [--commit-interval-us N] [--engine pool|threads]
//!                  [--wire text|binary|auto] [--pipeline N]
//! ```
//!
//! `fleet` is the load driver: it multiplexes N client state machines
//! (persistent connections, sequenced uploads) over a bounded worker
//! pool against a live server — `--addr` to target a running one,
//! otherwise a sharded group-commit server is self-hosted for the run —
//! and reports sustained uploads/sec plus the server's p99 verb and
//! commit latency from `STATS`. `--quick` is the CI smoke shape.
//!
//! `--failover-addr` gives every client a second (third, ...) server
//! address to fail over to; a run whose server dies with no replica
//! left still exits zero, with a partial report flagged `INTERRUPTED`
//! and the outage window measured. `--cluster` self-hosts a two-node
//! replicated tier (leader + follower, quorum acks) and kills the
//! leader mid-window: the fleet must ride the failover onto the
//! promoted follower, or the run exits nonzero.
//!
//! `--wire binary` negotiates the wire-v2 binary framing at dial time
//! (per address, so a legacy node in the failover list still gets
//! text); `--pipeline N` keeps N uploads in flight per binary
//! connection (text always runs the legacy depth of 1).

use uucs_comfort::Fidelity;
use uucs_study::controlled::{ControlledStudy, StudyConfig};
use uucs_study::internet::{InternetStudy, InternetStudyConfig};
use uucs_study::{figures, frog, report, skill};
use uucs_testcase::Resource;
use uucs_workloads::Task;

fn run_fleet(args: &[String]) -> ! {
    use uucs_server::tcp::EngineMode;
    let mut config = uucs_study::FleetConfig::default();
    let mut cluster = false;
    let mut i = 0;
    while i < args.len() {
        let int = |args: &[String], i: usize, what: &str| -> u64 {
            args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                eprintln!("{what} needs an integer");
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--quick" => {
                config = if cluster {
                    uucs_study::FleetConfig::cluster_quick()
                } else {
                    uucs_study::FleetConfig::quick()
                }
            }
            "--cluster" => {
                cluster = true;
                // `--quick` may have come first; re-shape for the tier.
                if config.clients == uucs_study::FleetConfig::quick().clients {
                    config = uucs_study::FleetConfig::cluster_quick();
                }
            }
            "--failover-addr" => {
                i += 1;
                if let Some(a) = args.get(i) {
                    config.failover.push(a.clone());
                }
            }
            "--clients" => {
                i += 1;
                config.clients = int(args, i, "--clients") as usize;
            }
            "--fleet-workers" => {
                i += 1;
                config.workers = int(args, i, "--fleet-workers").max(1) as usize;
            }
            "--secs" => {
                i += 1;
                config.duration = std::time::Duration::from_secs(int(args, i, "--secs"));
            }
            "--addr" => {
                i += 1;
                config.addr = args.get(i).cloned();
            }
            "--shards" => {
                i += 1;
                config.shards = int(args, i, "--shards").max(1) as usize;
            }
            "--commit-interval-us" => {
                i += 1;
                config.commit_interval =
                    std::time::Duration::from_micros(int(args, i, "--commit-interval-us"));
            }
            "--engine" => {
                i += 1;
                config.engine = match args.get(i).map(String::as_str) {
                    Some("pool") => EngineMode::WorkerPool,
                    Some("threads") => EngineMode::ThreadPerConn,
                    _ => {
                        eprintln!("bad --engine (want pool or threads)");
                        std::process::exit(2);
                    }
                };
            }
            "--wire" => {
                i += 1;
                config.wire = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("bad --wire (want text, binary, or auto)");
                        std::process::exit(2);
                    });
            }
            "--pipeline" => {
                i += 1;
                config.pipeline = int(args, i, "--pipeline").max(1) as usize;
            }
            other => {
                eprintln!("unknown fleet flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let result = if cluster {
        uucs_study::fleet::run_cluster(&config)
    } else {
        uucs_study::fleet::run(&config)
    };
    match result {
        Ok(report) => {
            println!("{}", report.summary());
            if report.interrupted {
                // The server died mid-run with nothing to fail over to.
                // A partial report is the deliverable, not a failure —
                // unless this was the cluster smoke, where an unserved
                // window end means the failover itself broke.
                if cluster {
                    eprintln!("cluster smoke ended interrupted: the promoted node never served");
                    std::process::exit(1);
                }
                eprintln!(
                    "fleet interrupted: server unreachable for the last {:.2}s of the window",
                    report.outage.as_secs_f64()
                );
                std::process::exit(0);
            }
            if report.uploads_acked == 0 {
                eprintln!("fleet sustained zero acked uploads");
                std::process::exit(1);
            }
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("fleet run failed: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("fleet") {
        run_fleet(&args[1..]);
    }
    let mut seed = 2004u64;
    let mut users = 33usize;
    let mut fidelity = Fidelity::Fast;
    let mut selectors: Vec<String> = Vec::new();
    let mut export_dir: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "export" => {
                i += 1;
                export_dir = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| "figure-data".to_string()),
                );
                selectors.push("export".into());
            }
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs an integer");
                    std::process::exit(2);
                });
            }
            "--users" => {
                i += 1;
                users = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--users needs an integer");
                    std::process::exit(2);
                });
            }
            "--full-fidelity" => fidelity = Fidelity::Full,
            "--all" => selectors.push("all".into()),
            other if !other.starts_with('-') => selectors.push(other.to_string()),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if selectors.is_empty() {
        selectors.push("all".into());
    }
    let all = selectors.iter().any(|s| s == "all");
    let wants = |s: &str| all || selectors.iter().any(|x| x == s);

    // fig8, internet, and verify do not need the study data.
    if wants("fig8") {
        println!("Figure 8: Testcase descriptions for the 4 tasks");
        for task in Task::ALL {
            for tc in uucs_comfort::calibration::controlled_testcases(task) {
                println!("  {} ({}s)", tc.id, tc.duration());
            }
        }
        println!();
    }
    if wants("verify") {
        let cpu = uucs_exercisers::verify::verify_cpu(&[1.0, 2.0, 5.0, 10.0], 20, seed);
        println!(
            "{}",
            uucs_exercisers::verify::render_table("CPU exerciser verification (§2.2)", &cpu)
        );
        let disk = uucs_exercisers::verify::verify_disk(&[1.0, 3.0, 7.0], 60, seed);
        println!(
            "{}",
            uucs_exercisers::verify::render_table("Disk exerciser verification (§2.2)", &disk)
        );
    }

    let needs_study = [
        "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
        "fig17rank", "fig18", "frog", "compare", "report", "export",
    ]
    .iter()
    .any(|s| wants(s));

    if needs_study {
        eprintln!("running controlled study: seed {seed}, {users} users ...");
        let data = ControlledStudy::new(StudyConfig {
            seed,
            users,
            fidelity,
        })
        .run();
        eprintln!("  {} runs collected", data.records.len());

        if wants("fig9") {
            println!("{}", figures::render_fig9(&data));
        }
        if wants("fig10") {
            println!("{}", figures::render_aggregate_cdf(&data, Resource::Cpu));
        }
        if wants("fig11") {
            println!("{}", figures::render_aggregate_cdf(&data, Resource::Memory));
        }
        if wants("fig12") {
            println!("{}", figures::render_aggregate_cdf(&data, Resource::Disk));
        }
        if wants("fig13") {
            println!("{}", figures::render_fig13(&data));
        }
        if wants("fig14") {
            println!("{}", figures::render_metric_table(&data, 14));
        }
        if wants("fig15") {
            println!("{}", figures::render_metric_table(&data, 15));
        }
        if wants("fig16") {
            println!("{}", figures::render_metric_table(&data, 16));
        }
        if wants("fig17") {
            println!("{}", skill::render_fig17(&data, 0.05));
        }
        if wants("fig17rank") {
            println!("Figure 17 under the Mann-Whitney rank test (robustness):");
            for r in skill::fig17_rank(&data, 0.05) {
                println!(
                    "  {:<10} {:<8} {:<32} p={:.4} diff={:.3}",
                    r.task.name(),
                    r.resource,
                    r.rating,
                    r.p,
                    r.diff
                );
            }
            println!();
        }
        if wants("fig18") {
            println!("{}", figures::render_fig18(&data));
        }
        if wants("frog") {
            println!("{}", frog::render_frog(&data));
        }
        if let Some(dir) = &export_dir {
            let files =
                uucs_study::export::write_figure_csvs(&data, std::path::Path::new(dir))
                    .expect("write CSVs");
            eprintln!("wrote {} CSV files to {dir}/", files.len());
        }
        if wants("compare") || wants("report") {
            println!(
                "{}",
                report::render_comparisons(
                    "Paper vs measured: comfort metrics",
                    &report::compare_metrics(&data)
                )
            );
            println!(
                "{}",
                report::render_comparisons(
                    "Paper vs measured: noise floors",
                    &report::compare_noise_floors(&data)
                )
            );
        }
    }

    if wants("closedloop") {
        eprintln!("running the closed-loop borrowing evaluation ...");
        let data = uucs_study::closedloop::ClosedLoop::new(
            uucs_study::closedloop::ClosedLoopConfig {
                seed,
                ..Default::default()
            },
        )
        .run();
        println!("{}", uucs_study::closedloop::render_closed_loop(&data));
    }

    if wants("perception") {
        eprintln!("running the calibration-free perception study (full fidelity) ...");
        let records = uucs_study::perception_study::run_perception_study(
            &uucs_study::perception_study::PerceptionStudyConfig {
                seed,
                users: 8,
                ..Default::default()
            },
        );
        println!(
            "{}",
            uucs_study::perception_study::render_perception_study(&records)
        );
    }

    if wants("dynamics") {
        eprintln!("running internet-wide study for the dynamics analysis ...");
        let cfg = InternetStudyConfig {
            seed,
            clients: 120,
            runs_per_client: 30,
            mean_gap_secs: 1200.0,
        };
        let lib = uucs_testcase::generate::Library::internet_sweep(cfg.seed);
        let d = InternetStudy::new(cfg).run();
        println!(
            "{}",
            uucs_study::dynamics::render_dynamics(&d, lib.testcases())
        );
    }

    if wants("internet") {
        eprintln!("running internet-wide study ...");
        let d = InternetStudy::new(InternetStudyConfig {
            seed,
            ..InternetStudyConfig::default()
        })
        .run();
        println!(
            "Internet study: {} clients, {} runs, {:.1} simulated days",
            d.population.len(),
            d.records.len(),
            d.simulated_secs / 86_400.0
        );
        for prefix in ["cpu-", "disk-"] {
            let runs: Vec<_> = d
                .records
                .iter()
                .filter(|r| r.testcase.starts_with(prefix))
                .collect();
            let resource: Resource = prefix.trim_end_matches('-').parse().unwrap();
            let cdf = uucs_comfort::metrics::discomfort_ecdf(runs, resource);
            println!(
                "{}",
                cdf.render_ascii(
                    &format!("Internet-study CDF for {resource} (all testcase kinds)"),
                    60,
                    14
                )
            );
        }
    }
}
