//! Regenerators for Figures 9–16 and 18.

use crate::controlled::StudyData;
use uucs_comfort::metrics::{sensitivity_class, CellMetrics, Sensitivity};
use uucs_protocol::{RunOutcome, RunRecord};
use uucs_stats::Ecdf;
use uucs_testcase::Resource;
use uucs_workloads::Task;

/// Figure 9: breakdown of runs per task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunBreakdown {
    /// Non-blank runs ending in discomfort.
    pub nonblank_df: usize,
    /// Non-blank runs ending in exhaustion.
    pub nonblank_ex: usize,
    /// Blank runs ending in discomfort.
    pub blank_df: usize,
    /// Blank runs ending in exhaustion.
    pub blank_ex: usize,
}

impl RunBreakdown {
    /// "Prob of discomfort from blank testcase" — the noise floor.
    pub fn noise_prob(&self) -> f64 {
        let total = self.blank_df + self.blank_ex;
        if total == 0 {
            0.0
        } else {
            self.blank_df as f64 / total as f64
        }
    }

    fn add(&mut self, other: &RunBreakdown) {
        self.nonblank_df += other.nonblank_df;
        self.nonblank_ex += other.nonblank_ex;
        self.blank_df += other.blank_df;
        self.blank_ex += other.blank_ex;
    }
}

/// Computes Figure 9 from study records.
pub fn fig9(data: &StudyData) -> (Vec<(Task, RunBreakdown)>, RunBreakdown) {
    let mut per_task = Vec::new();
    let mut total = RunBreakdown {
        nonblank_df: 0,
        nonblank_ex: 0,
        blank_df: 0,
        blank_ex: 0,
    };
    for &task in &Task::ALL {
        let mut b = RunBreakdown {
            nonblank_df: 0,
            nonblank_ex: 0,
            blank_df: 0,
            blank_ex: 0,
        };
        for r in data.of_task(task) {
            let blank = r.testcase.contains("blank");
            match (blank, r.outcome) {
                (false, RunOutcome::Discomfort) => b.nonblank_df += 1,
                (false, RunOutcome::Exhausted) => b.nonblank_ex += 1,
                (true, RunOutcome::Discomfort) => b.blank_df += 1,
                (true, RunOutcome::Exhausted) => b.blank_ex += 1,
            }
        }
        total.add(&b);
        per_task.push((task, b));
    }
    (per_task, total)
}

/// Renders Figure 9 as text.
pub fn render_fig9(data: &StudyData) -> String {
    let (per_task, total) = fig9(data);
    let mut out = String::from("Figure 9: Breakdown of runs\n");
    out.push_str(&format!(
        "{:<12} {:>11} {:>11} {:>9} {:>9} {:>7}\n",
        "Task", "NB-Discomf", "NB-Exhaust", "B-Discomf", "B-Exhaust", "Noise"
    ));
    for (task, b) in &per_task {
        out.push_str(&format!(
            "{:<12} {:>11} {:>11} {:>9} {:>9} {:>7.2}\n",
            task.name(),
            b.nonblank_df,
            b.nonblank_ex,
            b.blank_df,
            b.blank_ex,
            b.noise_prob()
        ));
    }
    out.push_str(&format!(
        "{:<12} {:>11} {:>11} {:>9} {:>9} {:>7.2}\n",
        "Total",
        total.nonblank_df,
        total.nonblank_ex,
        total.blank_df,
        total.blank_ex,
        total.noise_prob()
    ));
    out
}

/// The ramp runs of one resource, aggregated over tasks — the data behind
/// Figures 10–12.
pub fn aggregate_ramp_records(data: &StudyData, resource: Resource) -> Vec<&RunRecord> {
    let marker = format!("{resource}-ramp");
    data.records
        .iter()
        .filter(|r| r.testcase.contains(&marker))
        .collect()
}

/// The aggregated discomfort CDF for one resource (Figure 10, 11, or 12).
pub fn aggregate_cdf(data: &StudyData, resource: Resource) -> Ecdf {
    uucs_comfort::metrics::discomfort_ecdf(
        aggregate_ramp_records(data, resource),
        resource,
    )
}

/// Renders Figure 10/11/12 as an ASCII CDF.
pub fn render_aggregate_cdf(data: &StudyData, resource: Resource) -> String {
    let fig_no = match resource {
        Resource::Cpu => 10,
        Resource::Memory => 11,
        Resource::Disk => 12,
        Resource::Network => 0,
    };
    let cdf = aggregate_cdf(data, resource);
    cdf.render_ascii(
        &format!("Figure {fig_no}: CDF of discomfort for {resource}"),
        60,
        16,
    )
}

/// Per-cell metrics (ramp runs), the data behind Figures 14–16 and 18.
pub fn cell_metrics(data: &StudyData, task: Task, resource: Resource) -> CellMetrics {
    let marker = format!(
        "{}-{}-ramp",
        task.name().to_lowercase(),
        resource.name()
    );
    let runs = data.with_id_containing(&marker);
    CellMetrics::from_runs(runs, resource)
}

/// Aggregate (Total) metrics for one resource over all tasks.
pub fn total_metrics(data: &StudyData, resource: Resource) -> CellMetrics {
    CellMetrics::from_runs(aggregate_ramp_records(data, resource), resource)
}

fn opt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.2}"),
        None => "*".to_string(),
    }
}

/// Renders Figure 14 (`f_d`), 15 (`c_0.05`), or 16 (`c_a` with CI) —
/// select with `which` in {14, 15, 16}.
pub fn render_metric_table(data: &StudyData, which: u32) -> String {
    assert!((14..=16).contains(&which));
    let title = match which {
        14 => "Figure 14: f_d by task and resource",
        15 => "Figure 15: c_0.05 by task and resource",
        _ => "Figure 16: c_a by task and resource (95% CI)",
    };
    let mut out = format!(
        "{title}\n{:<12} {:>18} {:>18} {:>18}\n",
        "", "CPU", "Memory", "Disk"
    );
    let fmt_cell = |m: &CellMetrics| -> String {
        match which {
            14 => opt(m.f_d),
            15 => opt(m.c_05),
            _ => match (m.c_a, m.c_a_ci) {
                (Some(ca), Some((lo, hi))) => format!("{ca:.2} ({lo:.2},{hi:.2})"),
                (Some(ca), None) => format!("{ca:.2}"),
                _ => "*".to_string(),
            },
        }
    };
    for &task in &Task::ALL {
        let cells: Vec<String> = Resource::STUDIED
            .iter()
            .map(|&r| fmt_cell(&cell_metrics(data, task, r)))
            .collect();
        out.push_str(&format!(
            "{:<12} {:>18} {:>18} {:>18}\n",
            task.name(),
            cells[0],
            cells[1],
            cells[2]
        ));
    }
    let totals: Vec<String> = Resource::STUDIED
        .iter()
        .map(|&r| fmt_cell(&total_metrics(data, r)))
        .collect();
    out.push_str(&format!(
        "{:<12} {:>18} {:>18} {:>18}\n",
        "Total", totals[0], totals[1], totals[2]
    ));
    out
}

/// Figure 13: the sensitivity grid.
pub fn fig13(data: &StudyData) -> Vec<(Task, [Sensitivity; 3])> {
    Task::ALL
        .iter()
        .map(|&task| {
            let mut row = [Sensitivity::Low; 3];
            for (i, &r) in Resource::STUDIED.iter().enumerate() {
                let m = cell_metrics(data, task, r);
                row[i] = sensitivity_class(r, m.f_d, m.c_a);
            }
            (task, row)
        })
        .collect()
}

/// Renders Figure 13.
pub fn render_fig13(data: &StudyData) -> String {
    let mut out = String::from(
        "Figure 13: User sensitivity by task and resource (Low, Medium, High)\n",
    );
    out.push_str(&format!(
        "{:<12} {:>6} {:>8} {:>6}\n",
        "", "CPU", "Memory", "Disk"
    ));
    for (task, row) in fig13(data) {
        out.push_str(&format!(
            "{:<12} {:>6} {:>8} {:>6}\n",
            task.name(),
            row[0].code(),
            row[1].code(),
            row[2].code()
        ));
    }
    out
}

/// Renders Figure 18: the CDF grid, one panel per (task, resource).
pub fn render_fig18(data: &StudyData) -> String {
    let mut out = String::from("Figure 18: CDFs for each context and resource pair\n\n");
    for &task in &Task::ALL {
        for &resource in &Resource::STUDIED {
            let m = cell_metrics(data, task, resource);
            out.push_str(&m.ecdf.render_ascii(
                &format!("{} / {resource}", task.name()),
                44,
                10,
            ));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controlled::{ControlledStudy, StudyConfig};
    use uucs_comfort::Fidelity;

    fn data() -> StudyData {
        // 150 users: per-cell f_d estimates (sd ~ 0.04) stay inside the
        // classification boundaries.
        ControlledStudy::new(StudyConfig {
            seed: 11,
            users: 150,
            fidelity: Fidelity::Fast,
        })
        .run()
    }

    #[test]
    fn fig9_counts_are_consistent() {
        let d = data();
        let (per_task, total) = fig9(&d);
        let sum: usize = per_task
            .iter()
            .map(|(_, b)| b.nonblank_df + b.nonblank_ex + b.blank_df + b.blank_ex)
            .sum();
        assert_eq!(sum, d.records.len());
        assert_eq!(
            total.nonblank_df + total.nonblank_ex + total.blank_df + total.blank_ex,
            d.records.len()
        );
        // 30 users x 2 blanks per task.
        for (_, b) in &per_task {
            assert_eq!(b.blank_df + b.blank_ex, 300);
            assert_eq!(b.nonblank_df + b.nonblank_ex, 900);
        }
    }

    #[test]
    fn fig9_noise_floor_structure() {
        let d = data();
        let (per_task, _) = fig9(&d);
        let by_task: std::collections::HashMap<_, _> =
            per_task.iter().map(|(t, b)| (*t, *b)).collect();
        assert_eq!(by_task[&Task::Word].noise_prob(), 0.0);
        assert_eq!(by_task[&Task::Powerpoint].noise_prob(), 0.0);
        assert!(by_task[&Task::Ie].noise_prob() > 0.05);
        assert!(by_task[&Task::Quake].noise_prob() > 0.12);
    }

    #[test]
    fn aggregate_cdfs_have_expected_volume() {
        let d = data();
        for r in Resource::STUDIED {
            let cdf = aggregate_cdf(&d, r);
            // 150 users x 4 tasks = 600 ramp runs per resource.
            assert_eq!(cdf.total(), 600);
        }
    }

    #[test]
    fn aggregate_fd_matches_paper_totals_roughly() {
        let d = data();
        // Paper totals (Fig 14): CPU 0.86, Memory 0.21, Disk 0.33.
        let expect = [
            (Resource::Cpu, 0.86),
            (Resource::Memory, 0.21),
            (Resource::Disk, 0.33),
        ];
        for (r, e) in expect {
            let f = total_metrics(&d, r).f_d.unwrap();
            assert!((f - e).abs() < 0.11, "{r}: f_d {f} vs paper {e}");
        }
    }

    #[test]
    fn fig13_matches_paper_grid() {
        let d = data();
        let expected = [
            ["L", "L", "L"],
            ["M", "L", "L"],
            ["M", "M", "H"],
            ["H", "M", "M"],
        ];
        for ((task, row), exp) in fig13(&d).iter().zip(expected) {
            for (i, s) in row.iter().enumerate() {
                assert_eq!(
                    s.code(),
                    exp[i],
                    "{} {} (expected {})",
                    task.name(),
                    Resource::STUDIED[i],
                    exp[i]
                );
            }
        }
    }

    #[test]
    fn renders_do_not_panic_and_mention_key_terms() {
        let d = data();
        assert!(render_fig9(&d).contains("Noise"));
        assert!(render_aggregate_cdf(&d, Resource::Cpu).contains("Figure 10"));
        assert!(render_aggregate_cdf(&d, Resource::Memory).contains("DfCount"));
        assert!(render_metric_table(&d, 14).contains("f_d"));
        assert!(render_metric_table(&d, 15).contains("c_0.05"));
        assert!(render_metric_table(&d, 16).contains("CI"));
        assert!(render_fig13(&d).contains("Medium"));
        assert!(render_fig18(&d).contains("Quake / cpu"));
    }

    #[test]
    fn word_memory_cell_is_starred() {
        let d = data();
        let m = cell_metrics(&d, Task::Word, Resource::Memory);
        assert_eq!(m.c_05, None);
        assert_eq!(m.c_a, None);
        assert_eq!(m.f_d, Some(0.0));
    }
}
