//! The Internet-wide study (§4).
//!
//! "Any individual with a Windows computer is welcome to ... download and
//! run a copy of the UUCS client. ... We currently have about 100 users."
//! Clients are heterogeneous (different CPU speeds — the paper's question
//! 6), hot-sync growing random samples from a >2000-testcase library,
//! execute testcases at Poisson arrivals under whatever task the user
//! happens to be doing, and upload results.

use std::sync::Arc;
use uucs_client::{LocalTransport, UucsClient};
use uucs_comfort::{Fidelity, UserPopulation};
use uucs_protocol::{MachineSnapshot, RunRecord};
use uucs_server::{TestcaseStore, UucsServer};
use uucs_stats::Pcg64;
use uucs_testcase::generate::Library;
use uucs_workloads::Task;

/// Internet study parameters.
#[derive(Debug, Clone)]
pub struct InternetStudyConfig {
    /// Root seed.
    pub seed: u64,
    /// Number of participating clients (the paper had ~100).
    pub clients: usize,
    /// Testcase executions per client over the study window.
    pub runs_per_client: usize,
    /// Mean gap between runs, seconds (Poisson arrivals).
    pub mean_gap_secs: f64,
}

impl Default for InternetStudyConfig {
    fn default() -> Self {
        InternetStudyConfig {
            seed: 42,
            clients: 100,
            runs_per_client: 20,
            mean_gap_secs: 1800.0,
        }
    }
}

/// Internet study outputs.
#[derive(Debug, Clone)]
pub struct InternetStudyData {
    /// All uploaded run records.
    pub records: Vec<RunRecord>,
    /// The simulated participants (one user per client).
    pub population: UserPopulation,
    /// Total simulated study time across clients, seconds.
    pub simulated_secs: f64,
}

/// The Internet-wide study driver.
pub struct InternetStudy {
    config: InternetStudyConfig,
}

impl InternetStudy {
    /// Creates the study.
    pub fn new(config: InternetStudyConfig) -> Self {
        InternetStudy { config }
    }

    /// Runs the study: registration, hot-sync loops, Poisson-scheduled
    /// runs under random tasks, uploads.
    pub fn run(&self) -> InternetStudyData {
        let library = Library::internet_sweep(self.config.seed);
        let server = Arc::new(UucsServer::new(
            TestcaseStore::from_testcases(library.testcases().to_vec()).expect("unique ids"),
            self.config.seed,
        ));
        let population = UserPopulation::generate(self.config.clients, self.config.seed ^ 0xdead);
        let root = Pcg64::new(self.config.seed).split_str("internet-study");
        let mut simulated_secs = 0.0;

        for (i, user) in population.users().iter().enumerate() {
            let mut rng = root.split(i as u64);
            let mut transport = LocalTransport::new(server.clone());
            // Heterogeneous hardware: CPU speeds from 700 MHz to 3.2 GHz.
            let mut snapshot =
                MachineSnapshot::study_machine(format!("internet-host-{i:03}"));
            snapshot.cpu_mhz = rng.range_inclusive(700, 3200) as u32;
            snapshot.mem_mb = *rng.choose(&[256, 512, 1024]) as u32;
            let mut client = UucsClient::new(snapshot, rng.next_u64());
            client.register(&mut transport).expect("local transport");
            client.hot_sync(&mut transport).expect("first sync");

            for run_idx in 0..self.config.runs_per_client {
                // Poisson arrivals of testcase execution.
                simulated_secs += client.next_arrival_gap(self.config.mean_gap_secs);
                // Periodically hot-sync to grow the local sample.
                if run_idx % 5 == 4 {
                    client.hot_sync(&mut transport).expect("sync");
                }
                let Some(tc) = client.choose_testcase() else {
                    continue;
                };
                // The user is doing whatever they happen to be doing.
                let task = *rng.choose(&Task::ALL);
                let run_seed = rng.next_u64();
                client.perform_run(user, task, &tc, Fidelity::Fast, run_seed);
            }
            client.hot_sync(&mut transport).expect("final sync");
        }

        InternetStudyData {
            records: server.results(),
            population,
            simulated_secs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uucs_comfort::metrics::discomfort_ecdf;
    use uucs_protocol::RunOutcome;
    use uucs_testcase::Resource;

    fn small() -> InternetStudyData {
        InternetStudy::new(InternetStudyConfig {
            seed: 5,
            clients: 12,
            runs_per_client: 10,
            mean_gap_secs: 600.0,
        })
        .run()
    }

    #[test]
    fn produces_expected_volume() {
        let d = small();
        assert_eq!(d.records.len(), 12 * 10);
        assert!(d.simulated_secs > 0.0);
        // Clients are distinct.
        let mut clients: Vec<&str> = d.records.iter().map(|r| r.client.as_str()).collect();
        clients.sort_unstable();
        clients.dedup();
        assert_eq!(clients.len(), 12);
    }

    #[test]
    fn is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn covers_diverse_testcases_and_tasks() {
        let d = small();
        let mut testcases: Vec<&str> = d.records.iter().map(|r| r.testcase.as_str()).collect();
        testcases.sort_unstable();
        testcases.dedup();
        assert!(testcases.len() > 40, "diversity: {}", testcases.len());
        for task in Task::ALL {
            assert!(
                d.records.iter().any(|r| r.task == task.name()),
                "missing task {task}"
            );
        }
    }

    #[test]
    fn produces_both_outcomes_and_usable_cdfs() {
        let d = InternetStudy::new(InternetStudyConfig {
            seed: 6,
            clients: 30,
            runs_per_client: 15,
            mean_gap_secs: 600.0,
        })
        .run();
        let df = d
            .records
            .iter()
            .filter(|r| r.outcome == RunOutcome::Discomfort)
            .count();
        assert!(df > 0 && df < d.records.len());
        // CDF estimation over the internet data works for CPU.
        let cpu_runs: Vec<_> = d
            .records
            .iter()
            .filter(|r| r.testcase.starts_with("cpu-"))
            .collect();
        let cdf = discomfort_ecdf(cpu_runs.iter().copied(), Resource::Cpu);
        assert!(cdf.total() > 30);
    }
}
