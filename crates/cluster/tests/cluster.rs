//! Integration tests of the replicated tier over real sockets: WAL
//! shipping leader → follower, backfill edge cases (mid-rotation joins,
//! watermarks behind a compaction), and deterministic promotion.

use std::sync::Arc;
use std::time::{Duration, Instant};
use uucs_cluster::node::{claim_epoch, current_epoch};
use uucs_cluster::{ClusterConfig, ClusterNode, Role};
use uucs_harness::TempDir;
use uucs_protocol::{ClientMsg, MachineSnapshot, MonitorSummary, RunOutcome, RunRecord, ServerMsg};
use uucs_server::{StoreSet, UucsServer};

fn rec(client: &str, tag: &str) -> RunRecord {
    RunRecord {
        client: client.into(),
        user: String::new(),
        testcase: tag.into(),
        task: "IE".into(),
        skill: "Typical".into(),
        outcome: RunOutcome::Discomfort,
        offset_secs: 10.0,
        last_levels: vec![(uucs_testcase::Resource::Cpu, vec![2.0])],
        monitor: MonitorSummary::default(),
    }
}

/// Polls `f` until it holds or `timeout` passes (then panics naming
/// `what`). The replication stream is asynchronous by design, so every
/// convergence assertion goes through here.
fn wait_until(what: &str, timeout: Duration, mut f: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !f() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn fresh_server() -> Arc<UucsServer> {
    Arc::new(UucsServer::with_store_set(StoreSet::plain(4), 9))
}

fn config(
    name: &str,
    cluster_dir: &std::path::Path,
    data_dir: &std::path::Path,
    peers: Vec<String>,
    segment_bytes: u64,
) -> ClusterConfig {
    let mut cfg = ClusterConfig::new(name, cluster_dir, data_dir.join(name));
    cfg.peers = peers;
    cfg.gossip_interval = Duration::from_millis(40);
    cfg.promote_after = 2;
    cfg.segment_bytes = segment_bytes;
    cfg
}

fn register(server: &UucsServer, host: &str) -> String {
    let (reply, _) = server.handle_deferred(&ClientMsg::Register {
        snapshot: MachineSnapshot::study_machine(host),
        token: format!("tok-{host}"),
    });
    match reply {
        ServerMsg::Id { id, .. } => id,
        other => panic!("register answered {other:?}"),
    }
}

fn upload(server: &UucsServer, client: &str, seq: u64, tag: &str) {
    let (reply, _) = server.handle_deferred(&ClientMsg::Upload {
        client: client.into(),
        seq,
        records: vec![rec(client, tag)],
    });
    assert!(matches!(reply, ServerMsg::Ack(1)), "upload answered {reply:?}");
}

/// Each testcase tag must appear exactly once — the store-level
/// spelling of "no acknowledged upload lost, none duplicated".
fn assert_exactly_once(server: &UucsServer, tags: &[String]) {
    let records = server.results();
    assert_eq!(records.len(), tags.len(), "record count");
    for tag in tags {
        let copies = records.iter().filter(|r| &r.testcase == tag).count();
        assert_eq!(copies, 1, "tag {tag} appears {copies} times");
    }
}

/// The base case: a follower connected from the start applies the
/// leader's live stream, converges to the same store, and refuses
/// writes of its own with a `not leader` error the client-side
/// failover recognises.
#[test]
fn follower_applies_the_leaders_stream() {
    let dir = TempDir::new("cluster-stream");
    let leader_srv = fresh_server();
    let leader = ClusterNode::start(
        config("a", &dir.path().join("epochs"), dir.path(), vec![], 1 << 20),
        Arc::clone(&leader_srv),
        "127.0.0.1:0",
        Role::Leader,
    )
    .unwrap();

    let follower_srv = fresh_server();
    let follower = ClusterNode::start(
        config(
            "b",
            &dir.path().join("epochs"),
            dir.path(),
            vec![leader.repl_addr().to_string()],
            1 << 20,
        ),
        Arc::clone(&follower_srv),
        "127.0.0.1:0",
        Role::Follower,
    )
    .unwrap();

    let id = register(&leader_srv, "m1");
    let mut tags = Vec::new();
    for seq in 1..=10u64 {
        let tag = format!("tc-{seq}");
        upload(&leader_srv, &id, seq, &tag);
        tags.push(tag);
    }

    wait_until("follower to apply 10 batches", Duration::from_secs(10), || {
        follower_srv.result_count() == 10
    });
    assert_eq!(follower_srv.client_count(), 1);
    assert_eq!(follower_srv.applied_seq(&id), 10, "seq horizon replicated");
    assert_exactly_once(&follower_srv, &tags);

    // The follower's engine is read-only: writes bounce with the
    // `not leader` marker clients pivot on.
    let (reply, _) = follower_srv.handle_deferred(&ClientMsg::Upload {
        client: id.clone(),
        seq: 99,
        records: vec![rec(&id, "nope")],
    });
    match reply {
        ServerMsg::Error(msg) => assert!(msg.starts_with("not leader"), "got {msg:?}"),
        other => panic!("follower accepted a write: {other:?}"),
    }

    follower.shutdown();
    leader.shutdown();
}

/// Backfill edge case (satellite): a follower that first connects
/// after the leader's replication logs have rotated through several
/// segments tails the whole multi-segment log, then rides the live
/// stream without a seam.
#[test]
fn follower_joining_mid_segment_rotation_tails_the_whole_log() {
    let dir = TempDir::new("cluster-rotate");
    let leader_srv = fresh_server();
    // 256-byte segments: every couple of entries forces a rotation.
    let leader = ClusterNode::start(
        config("a", &dir.path().join("epochs"), dir.path(), vec![], 256),
        Arc::clone(&leader_srv),
        "127.0.0.1:0",
        Role::Leader,
    )
    .unwrap();

    let id = register(&leader_srv, "m1");
    let mut tags = Vec::new();
    for seq in 1..=30u64 {
        let tag = format!("pre-{seq}");
        upload(&leader_srv, &id, seq, &tag);
        tags.push(tag);
    }

    // Join mid-history: everything so far must arrive by log tail.
    let follower_srv = fresh_server();
    let follower = ClusterNode::start(
        config(
            "b",
            &dir.path().join("epochs"),
            dir.path(),
            vec![leader.repl_addr().to_string()],
            256,
        ),
        Arc::clone(&follower_srv),
        "127.0.0.1:0",
        Role::Follower,
    )
    .unwrap();
    wait_until("backfill of 30 batches", Duration::from_secs(10), || {
        follower_srv.result_count() == 30
    });

    // ... and the live stream continues past the backfill seam.
    for seq in 31..=40u64 {
        let tag = format!("post-{seq}");
        upload(&leader_srv, &id, seq, &tag);
        tags.push(tag);
    }
    wait_until("live stream after backfill", Duration::from_secs(10), || {
        follower_srv.result_count() == 40
    });
    assert_exactly_once(&follower_srv, &tags);

    follower.shutdown();
    leader.shutdown();
}

/// Backfill edge case (satellite): a follower whose persisted watermark
/// predates a leader-side checkpoint+compaction cannot be served by log
/// tail — the leader streams a full store snapshot, the follower dedups
/// it against what it already holds, and the watermark jumps past the
/// compacted range. No record is lost or duplicated.
#[test]
fn watermark_behind_a_compaction_gets_snapshot_then_tail() {
    let dir = TempDir::new("cluster-compact");
    let leader_srv = fresh_server();
    let leader = ClusterNode::start(
        config("a", &dir.path().join("epochs"), dir.path(), vec![], 512),
        Arc::clone(&leader_srv),
        "127.0.0.1:0",
        Role::Leader,
    )
    .unwrap();

    let id = register(&leader_srv, "m1");
    let mut tags = Vec::new();

    // Phase 1: follower online, syncs the first 10 batches.
    let follower_srv = fresh_server();
    let follower = ClusterNode::start(
        config(
            "b",
            &dir.path().join("epochs"),
            dir.path(),
            vec![leader.repl_addr().to_string()],
            512,
        ),
        Arc::clone(&follower_srv),
        "127.0.0.1:0",
        Role::Follower,
    )
    .unwrap();
    for seq in 1..=10u64 {
        let tag = format!("early-{seq}");
        upload(&leader_srv, &id, seq, &tag);
        tags.push(tag);
    }
    wait_until("initial sync", Duration::from_secs(10), || {
        follower_srv.result_count() == 10
    });

    // Phase 2: follower partitioned (shut down); the leader keeps
    // committing, then checkpoints and compacts its replication logs,
    // dropping the tail the follower would have wanted.
    follower.shutdown();
    drop(follower);
    for seq in 11..=20u64 {
        let tag = format!("mid-{seq}");
        upload(&leader_srv, &id, seq, &tag);
        tags.push(tag);
    }
    leader.hub().checkpoint_logs().unwrap();
    for seq in 21..=25u64 {
        let tag = format!("late-{seq}");
        upload(&leader_srv, &id, seq, &tag);
        tags.push(tag);
    }

    // Phase 3: the follower returns with its old engine state and its
    // persisted watermark (same data_dir). The watermark predates the
    // checkpoint, so the leader must go snapshot-then-tail; the dedup
    // in `apply_snapshot_entry` keeps the 10 already-held records
    // single copies.
    let follower = ClusterNode::start(
        config(
            "b",
            &dir.path().join("epochs"),
            dir.path(),
            vec![leader.repl_addr().to_string()],
            512,
        ),
        Arc::clone(&follower_srv),
        "127.0.0.1:0",
        Role::Follower,
    )
    .unwrap();
    wait_until("snapshot-then-tail catch-up", Duration::from_secs(10), || {
        follower_srv.result_count() == 25
    });
    assert_eq!(follower_srv.applied_seq(&id), 25);
    assert_exactly_once(&follower_srv, &tags);

    follower.shutdown();
    leader.shutdown();
}

/// Leader death promotes the follower: it notices the silence, wins the
/// takeover file, flips read-write, and starts serving — with every
/// record the old leader acknowledged still present exactly once.
#[test]
fn leader_loss_promotes_the_follower() {
    let dir = TempDir::new("cluster-promote");
    let epochs = dir.path().join("epochs");
    let leader_srv = fresh_server();
    let leader = ClusterNode::start(
        config("a", &epochs, dir.path(), vec![], 1 << 20),
        Arc::clone(&leader_srv),
        "127.0.0.1:0",
        Role::Leader,
    )
    .unwrap();

    let follower_srv = fresh_server();
    let follower = ClusterNode::start(
        config(
            "b",
            &epochs,
            dir.path(),
            vec![leader.repl_addr().to_string()],
            1 << 20,
        ),
        Arc::clone(&follower_srv),
        "127.0.0.1:0",
        Role::Follower,
    )
    .unwrap();

    let id = register(&leader_srv, "m1");
    let mut tags = Vec::new();
    for seq in 1..=8u64 {
        let tag = format!("tc-{seq}");
        upload(&leader_srv, &id, seq, &tag);
        tags.push(tag);
    }
    wait_until("replication before the kill", Duration::from_secs(10), || {
        follower_srv.result_count() == 8
    });

    leader.shutdown();
    wait_until("follower promotion", Duration::from_secs(10), || {
        follower.was_promoted()
    });
    assert_eq!(follower.role(), Role::Leader);
    assert_eq!(current_epoch(&epochs), 2, "promotion claimed epoch 2");
    assert_exactly_once(&follower_srv, &tags);

    // The promoted node serves writes: the client re-registers with its
    // token (same GUID, fast-forwarded seq) and keeps uploading.
    let (reply, _) = follower_srv.handle_deferred(&ClientMsg::Register {
        snapshot: MachineSnapshot::study_machine("m1"),
        token: "tok-m1".into(),
    });
    match reply {
        ServerMsg::Id { id: id2, applied_seq } => {
            assert_eq!(id2, id, "token maps to the same GUID after failover");
            assert_eq!(applied_seq, 8, "seq horizon survives failover");
        }
        other => panic!("re-register answered {other:?}"),
    }
    upload(&follower_srv, &id, 9, "tc-9");
    tags.push("tc-9".into());
    assert_exactly_once(&follower_srv, &tags);

    follower.shutdown();
}

/// The takeover file is atomic: any number of concurrent claimants for
/// the same epoch produce exactly one winner.
#[test]
fn takeover_race_has_exactly_one_winner() {
    let dir = TempDir::new("cluster-race");
    let epochs = dir.path().join("epochs");
    std::fs::create_dir_all(&epochs).unwrap();
    let wins: usize = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let epochs = epochs.clone();
                s.spawn(move || claim_epoch(&epochs, &format!("n{i}"), 1).is_ok())
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|&won| won)
            .count()
    });
    assert_eq!(wins, 1, "exactly one claimant may win an epoch");
    assert_eq!(current_epoch(&epochs), 1);
}
