//! The leader half of WAL shipping: per-shard replication logs, the
//! `REPL` listener, follower fan-out, backfill, and the quorum-ack
//! wait.
//!
//! Every committed mutation routes to a replication shard by the same
//! stable hash the stores use ([`uucs_server::shard_of`]), appends to
//! that shard's replication log (a normal `uucs-wal` log at
//! `SyncPolicy::Never` — it is a retransmission buffer, not the source
//! of truth; losing it merely forces a snapshot backfill), and fans out
//! to every connected follower. The append and the fan-out happen under
//! the shard's log lock, so followers observe each shard's sequence
//! numbers in order with no gaps.
//!
//! A follower that reconnects resumes from its acked watermark: the
//! leader replays the log tail from that sequence. A watermark that
//! predates the log's newest checkpoint — or one earned under a
//! different cluster epoch — cannot be tailed; the leader instead
//! streams a full store snapshot ([`UucsServer::export_entries`]) and
//! jumps the follower's watermark past it (*snapshot-then-tail*).

use crate::gossip::GossipState;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use uucs_protocol::repl::{read_repl_msg, write_repl_msg, ReplMsg};
use uucs_protocol::WalEntry;
use uucs_server::{shard_of, ReplicationSink, UucsServer};
use uucs_telemetry::{metrics, Counter, Gauge};
use uucs_pagecache::CachedIo;
use uucs_wal::{StdIo, SyncPolicy, Wal, WalConfig};

/// When the leader acknowledges a client-visible mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckMode {
    /// Ack once the local store accepted it (lowest latency; a leader
    /// loss in the replication gap is healed by client retry + dedup).
    Local,
    /// Ack only after at least one follower acknowledged the entry —
    /// or after [`HubConfig::ack_timeout`] with no follower able to,
    /// in which case the leader degrades to local acks and counts the
    /// event (`server.repl.quorum_timeouts`) rather than refusing
    /// writes: availability over replication, per the paper's "degraded
    /// advice is acceptable, lost acknowledged uploads are not".
    Quorum,
}

impl AckMode {
    /// Parses a `--repl-ack` value.
    pub fn parse(s: &str) -> Option<AckMode> {
        match s {
            "local" => Some(AckMode::Local),
            "quorum" => Some(AckMode::Quorum),
            _ => None,
        }
    }
}

/// Replication-hub tuning.
#[derive(Debug, Clone)]
pub struct HubConfig {
    /// Ack policy for client-visible mutations.
    pub ack: AckMode,
    /// How long a quorum ack may be waited for before degrading.
    pub ack_timeout: Duration,
    /// Replication-log segment size (small values force rotation in
    /// tests; see the backfill edge-case suite).
    pub segment_bytes: u64,
    /// ARC page-cache capacity (in 4 KiB pages, per shard log) for the
    /// shipping logs. Follower catch-up and snapshot-then-tail backfill
    /// re-read recent segments over and over; a warm cache serves those
    /// from memory. 0 disables (strict passthrough).
    pub cache_pages: usize,
}

impl Default for HubConfig {
    fn default() -> Self {
        HubConfig {
            ack: AckMode::Local,
            ack_timeout: Duration::from_secs(2),
            segment_bytes: 1 << 20,
            cache_pages: 256,
        }
    }
}

/// One connected follower, shared between the fan-out path (sender),
/// its writer thread, and its reader thread.
struct FollowerSlot {
    node: String,
    tx: SyncSender<ReplMsg>,
    /// Per-shard acked watermark (next sequence the follower expects).
    acked: Vec<AtomicU64>,
    alive: AtomicBool,
    /// A shutdown handle on the follower's socket: severing it here
    /// unblocks both the reader thread and the follower's apply loop,
    /// so an in-process leader shutdown looks like a crash to peers.
    sock: TcpStream,
}

struct HubMetrics {
    lag_batches: Gauge,
    follower_connected: Gauge,
    quorum_timeouts: Counter,
    shipped: Counter,
}

/// The replication hub. One per node; dormant (every
/// [`ReplicationSink::replicate`] call is a no-op) until the node
/// leads.
pub struct ReplHub {
    node: String,
    shards: usize,
    config: HubConfig,
    logs: Vec<Mutex<Wal<CachedIo<StdIo>>>>,
    /// Mirror of each log's `next_lsn`, readable without the log lock.
    next_seq: Vec<AtomicU64>,
    /// Sequences below this are folded into the log's checkpoint and no
    /// longer tailable.
    snapshot_upto: Vec<AtomicU64>,
    followers: Mutex<Vec<Arc<FollowerSlot>>>,
    /// Signals quorum waiters whenever any follower ack advances (or a
    /// follower disconnects, so waiters can re-check liveness).
    ack_signal: Condvar,
    ack_lock: Mutex<()>,
    leading: AtomicBool,
    epoch: AtomicU64,
    /// The engine backfill snapshots export from; also the source of
    /// this node's own gossip contribution.
    server: Mutex<Option<Arc<UucsServer>>>,
    gossip: Mutex<GossipState>,
    metrics: HubMetrics,
    shutdown: AtomicBool,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl ReplHub {
    /// Opens (or recovers) the per-shard replication logs under `dir`
    /// and returns a dormant hub.
    pub fn open(
        node: impl Into<String>,
        dir: impl Into<PathBuf>,
        shards: usize,
        config: HubConfig,
    ) -> io::Result<Arc<ReplHub>> {
        let node = node.into();
        let dir = dir.into();
        let mut logs = Vec::with_capacity(shards);
        let mut next_seq = Vec::with_capacity(shards);
        let mut snapshot_upto = Vec::with_capacity(shards);
        for i in 0..shards {
            let shard_dir = dir.join(format!("shard-{i:03}"));
            std::fs::create_dir_all(&shard_dir)?;
            let io = if config.cache_pages > 0 {
                CachedIo::new(StdIo::new(), config.cache_pages, 4096)
            } else {
                CachedIo::passthrough(StdIo::new())
            };
            let (wal, recovery) = Wal::open(
                io,
                shard_dir,
                WalConfig {
                    segment_bytes: config.segment_bytes,
                    sync: SyncPolicy::Never,
                },
            )?;
            next_seq.push(AtomicU64::new(recovery.next_lsn));
            snapshot_upto.push(AtomicU64::new(
                recovery.snapshot.as_ref().map_or(0, |s| s.upto),
            ));
            logs.push(Mutex::new(wal));
        }
        Ok(Arc::new(ReplHub {
            gossip: Mutex::new(GossipState::new(node.clone())),
            node,
            shards,
            config,
            logs,
            next_seq,
            snapshot_upto,
            followers: Mutex::new(Vec::new()),
            ack_signal: Condvar::new(),
            ack_lock: Mutex::new(()),
            leading: AtomicBool::new(false),
            epoch: AtomicU64::new(0),
            server: Mutex::new(None),
            metrics: HubMetrics {
                lag_batches: metrics::gauge("server.repl.lag_batches"),
                follower_connected: metrics::gauge("server.repl.follower_connected"),
                quorum_timeouts: metrics::counter("server.repl.quorum_timeouts"),
                shipped: metrics::counter("server.repl.shipped"),
            },
            shutdown: AtomicBool::new(false),
        }))
    }

    /// The node name this hub replicates for.
    pub fn node(&self) -> &str {
        &self.node
    }

    /// The replication shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The current cluster epoch this hub leads under (0 = not yet).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Whether this hub currently fans out (i.e. the node leads).
    pub fn leading(&self) -> bool {
        self.leading.load(Ordering::SeqCst)
    }

    /// Wires the engine the hub exports backfill snapshots from and
    /// reads gossip contributions off. Must run before [`ReplHub::listen`].
    pub fn set_server(&self, server: Arc<UucsServer>) {
        *lock(&self.server) = Some(server);
    }

    /// Starts leading under `epoch`: replicate-calls fan out from now
    /// on and `HELLO`s are welcomed rather than refused.
    pub fn lead(&self, epoch: u64) {
        self.epoch.store(epoch, Ordering::SeqCst);
        self.leading.store(true, Ordering::SeqCst);
    }

    /// This node's gossip view (shared with the follower runtime, which
    /// absorbs relayed contributions into it).
    pub fn gossip(&self) -> &Mutex<GossipState> {
        &self.gossip
    }

    /// Checkpoints and compacts every replication log. Sequences below
    /// the checkpoint stop being tailable: a follower behind it gets a
    /// snapshot-then-tail backfill on its next connect. The checkpoint
    /// state is empty on purpose — backfill always exports the *live*
    /// store, so the log never has to carry a second copy of it.
    pub fn checkpoint_logs(&self) -> io::Result<()> {
        for i in 0..self.shards {
            let mut wal = lock(&self.logs[i]);
            let upto = wal.snapshot(b"")?;
            wal.compact()?;
            self.snapshot_upto[i].store(upto, Ordering::SeqCst);
        }
        Ok(())
    }

    /// Names of the currently connected followers.
    pub fn follower_nodes(&self) -> Vec<String> {
        lock(&self.followers)
            .iter()
            .filter(|s| s.alive.load(Ordering::SeqCst))
            .map(|s| s.node.clone())
            .collect()
    }

    /// The acked watermark of the most-behind connected follower, per
    /// shard — `None` with no follower connected.
    pub fn min_acked(&self, shard: usize) -> Option<u64> {
        lock(&self.followers)
            .iter()
            .filter(|s| s.alive.load(Ordering::SeqCst))
            .map(|s| s.acked[shard].load(Ordering::SeqCst))
            .min()
    }

    fn update_lag(&self) {
        let mut lag = 0i64;
        for i in 0..self.shards {
            let head = self.next_seq[i].load(Ordering::SeqCst);
            if let Some(acked) = self.min_acked(i) {
                lag = lag.max(head.saturating_sub(acked) as i64);
            }
        }
        self.metrics.lag_batches.set(lag);
    }

    fn fan_out(&self, msg: &ReplMsg) {
        let followers = lock(&self.followers);
        for slot in followers.iter() {
            if slot.alive.load(Ordering::SeqCst) && slot.tx.try_send(msg.clone()).is_err() {
                // Overflowed or hung up: drop the follower; it will
                // reconnect and catch up from its watermark.
                slot.alive.store(false, Ordering::SeqCst);
            }
        }
    }

    /// Blocks until any live follower acked past `seq` on `shard`, the
    /// configured timeout passes (degrade + count), or no follower is
    /// left to wait for.
    fn wait_quorum(&self, shard: usize, seq: u64) {
        let deadline = Instant::now() + self.config.ack_timeout;
        let mut guard = lock(&self.ack_lock);
        loop {
            let satisfied = lock(&self.followers)
                .iter()
                .filter(|s| s.alive.load(Ordering::SeqCst))
                .any(|s| s.acked[shard].load(Ordering::SeqCst) > seq);
            if satisfied {
                return;
            }
            let connected = lock(&self.followers)
                .iter()
                .any(|s| s.alive.load(Ordering::SeqCst));
            let now = Instant::now();
            if !connected || now >= deadline {
                self.metrics.quorum_timeouts.inc();
                return;
            }
            let (g, _) = self
                .ack_signal
                .wait_timeout(guard, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            guard = g;
        }
    }

    /// Accepts followers on `addr` until shutdown. Returns the bound
    /// address and the accept-thread handle.
    pub fn listen(
        self: &Arc<Self>,
        addr: &str,
    ) -> io::Result<(SocketAddr, JoinHandle<()>)> {
        let listener = TcpListener::bind(addr)?;
        let bound = listener.local_addr()?;
        let hub = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("repl-accept-{}", self.node))
            .spawn(move || {
                for conn in listener.incoming() {
                    if hub.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let hub2 = Arc::clone(&hub);
                    let _ = std::thread::Builder::new()
                        .name("repl-conn".into())
                        .spawn(move || {
                            let _ = hub2.serve_follower(stream);
                        });
                }
            })?;
        Ok((bound, handle))
    }

    /// Stops accepting, severs every follower connection, and wakes
    /// every waiter — from a peer's point of view indistinguishable
    /// from the leader process dying.
    pub fn shutdown(&self, bound: SocketAddr) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.leading.store(false, Ordering::SeqCst);
        {
            let mut followers = lock(&self.followers);
            for slot in followers.drain(..) {
                slot.alive.store(false, Ordering::SeqCst);
                let _ = slot.sock.shutdown(std::net::Shutdown::Both);
                // Wake a writer parked on an empty fan-out channel so
                // it observes `alive == false` and exits.
                let _ = slot.tx.try_send(ReplMsg::Ping { epoch: 0 });
            }
            self.metrics.follower_connected.set(0);
        }
        // Unblock the accept loop.
        let _ = TcpStream::connect(bound);
        self.ack_signal.notify_all();
    }

    /// One follower connection, end to end: handshake, backfill, then
    /// reader duty (acks + gossip) while a writer thread drains the
    /// fan-out channel.
    fn serve_follower(self: &Arc<Self>, stream: TcpStream) -> io::Result<()> {
        stream.set_nodelay(true).ok();
        let mut reader = BufReader::new(stream.try_clone()?);
        let hello = match read_repl_msg(&mut reader)? {
            Some(ReplMsg::Hello {
                node,
                epoch,
                watermarks,
            }) => (node, epoch, watermarks),
            _ => return Err(io::Error::new(io::ErrorKind::InvalidData, "expected HELLO")),
        };
        let mut writer = BufWriter::new(stream.try_clone()?);
        if !self.leading() {
            write_repl_msg(&mut writer, &ReplMsg::NotLeader { epoch: self.epoch() })?;
            return Ok(());
        }
        write_repl_msg(
            &mut writer,
            &ReplMsg::Welcome {
                node: self.node.clone(),
                epoch: self.epoch(),
                shards: self.shards,
            },
        )?;
        // Per-shard resume points; missing shards start from 0.
        let mut wanted = vec![0u64; self.shards];
        for (shard, seq) in &hello.2 {
            if *shard < self.shards {
                wanted[*shard] = *seq;
            }
        }
        // Register the slot *before* reading the join points: every
        // sequence at or past `joined` is guaranteed to reach the
        // channel, so backfill up to `joined` + channel drain covers
        // the stream with no gap (overlaps dedup at the follower).
        let (tx, rx) = sync_channel(4096);
        let slot = Arc::new(FollowerSlot {
            node: hello.0.clone(),
            tx,
            acked: (0..self.shards).map(|_| AtomicU64::new(0)).collect(),
            alive: AtomicBool::new(true),
            sock: stream.try_clone()?,
        });
        {
            let mut followers = lock(&self.followers);
            followers.retain(|s| s.alive.load(Ordering::SeqCst));
            followers.push(Arc::clone(&slot));
            self.metrics.follower_connected.set(followers.len() as i64);
        }
        let joined: Vec<u64> = (0..self.shards)
            .map(|i| lock(&self.logs[i]).next_lsn())
            .collect();
        let snapshot_mode = hello.1 != self.epoch()
            || (0..self.shards)
                .any(|i| wanted[i] < self.snapshot_upto[i].load(Ordering::SeqCst));
        let writer_hub = Arc::clone(self);
        let writer_slot = Arc::clone(&slot);
        let wanted_w = wanted.clone();
        let joined_w = joined.clone();
        let writer_handle = std::thread::Builder::new()
            .name("repl-writer".into())
            .spawn(move || {
                let r = writer_hub.stream_to_follower(
                    &mut writer,
                    &writer_slot,
                    rx,
                    snapshot_mode,
                    &wanted_w,
                    &joined_w,
                );
                if r.is_err() {
                    writer_slot.alive.store(false, Ordering::SeqCst);
                }
            })?;
        // Reader duty: acks and gossip until the follower hangs up.
        let read_result = self.read_from_follower(&mut reader, &slot);
        slot.alive.store(false, Ordering::SeqCst);
        // Wake the writer if it is parked on an empty channel; it sees
        // `alive == false` and exits rather than leaking.
        let _ = slot.tx.try_send(ReplMsg::Ping { epoch: 0 });
        {
            let mut followers = lock(&self.followers);
            followers.retain(|s| !Arc::ptr_eq(s, &slot));
            self.metrics.follower_connected.set(
                followers
                    .iter()
                    .filter(|s| s.alive.load(Ordering::SeqCst))
                    .count() as i64,
            );
        }
        self.ack_signal.notify_all();
        drop(writer_handle);
        read_result
    }

    fn stream_to_follower(
        &self,
        writer: &mut BufWriter<TcpStream>,
        slot: &FollowerSlot,
        rx: Receiver<ReplMsg>,
        snapshot_mode: bool,
        wanted: &[u64],
        joined: &[u64],
    ) -> io::Result<()> {
        if snapshot_mode {
            let server = lock(&self.server)
                .clone()
                .ok_or_else(|| io::Error::other("hub has no server"))?;
            for entry in server.export_entries() {
                let shard = route_key(&entry)
                    .map(|k| shard_of(k, self.shards))
                    .unwrap_or(0);
                write_repl_msg(
                    writer,
                    &ReplMsg::SnapEntry {
                        shard,
                        bytes: entry.encode(),
                    },
                )?;
            }
            for (shard, &upto) in joined.iter().enumerate() {
                write_repl_msg(writer, &ReplMsg::SnapDone { shard, upto })?;
            }
        } else {
            for shard in 0..self.shards {
                let wal = lock(&self.logs[shard]);
                for rec in wal.replay() {
                    let (seq, bytes) = rec?;
                    if seq >= wanted[shard] && seq < joined[shard] {
                        write_repl_msg(writer, &ReplMsg::Entry { shard, seq, bytes })?;
                    }
                }
            }
        }
        writer.flush()?;
        while slot.alive.load(Ordering::SeqCst) {
            match rx.recv() {
                Ok(msg) => {
                    write_repl_msg(writer, &msg)?;
                    self.metrics.shipped.inc();
                }
                Err(_) => break,
            }
        }
        Ok(())
    }

    fn read_from_follower(
        self: &Arc<Self>,
        reader: &mut BufReader<TcpStream>,
        slot: &Arc<FollowerSlot>,
    ) -> io::Result<()> {
        loop {
            match read_repl_msg(reader)? {
                Some(ReplMsg::Commit { shard, upto }) if shard < self.shards => {
                    slot.acked[shard].fetch_max(upto, Ordering::SeqCst);
                    self.ack_signal.notify_all();
                    self.update_lag();
                }
                Some(ReplMsg::Gossip { node, epoch, model }) => {
                    let entries: Vec<ReplMsg> = {
                        let mut gossip = lock(&self.gossip);
                        gossip.absorb(&node, epoch, &model);
                        if let Some(server) = lock(&self.server).clone() {
                            gossip.record_own(&server.model_contribution());
                        }
                        gossip
                            .entries()
                            .map(|(n, e, m)| ReplMsg::Gossip {
                                node: n.to_string(),
                                epoch: e,
                                model: m.to_string(),
                            })
                            .collect()
                    };
                    // Relay the full view back so followers learn every
                    // peer's contribution through the leader.
                    for msg in entries {
                        if slot.tx.try_send(msg).is_err() {
                            break;
                        }
                    }
                }
                Some(ReplMsg::Ping { .. }) => {}
                Some(other) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected follower message {other:?}"),
                    ))
                }
                None => return Ok(()),
            }
        }
    }
}

impl ReplicationSink for ReplHub {
    fn replicate(&self, entry: &WalEntry) -> io::Result<()> {
        if !self.leading() {
            return Ok(());
        }
        let Some(key) = route_key(entry) else {
            return Ok(());
        };
        let shard = shard_of(key, self.shards);
        let bytes = entry.encode();
        let seq;
        {
            let mut wal = lock(&self.logs[shard]);
            seq = wal.append(&bytes)?;
            self.next_seq[shard].store(wal.next_lsn(), Ordering::SeqCst);
            // Fan out under the log lock: per-shard sequence order on
            // every follower channel matches append order, gap-free.
            self.fan_out(&ReplMsg::Entry { shard, seq, bytes });
        }
        self.update_lag();
        if self.config.ack == AckMode::Quorum {
            self.wait_quorum(shard, seq);
        }
        Ok(())
    }
}

/// The replication routing key of an entry — the same key its store
/// shard routes by. `Model` entries return `None`: model state travels
/// by gossip, not by shipping.
pub fn route_key(entry: &WalEntry) -> Option<&str> {
    match entry {
        WalEntry::Batch { client, .. } => Some(client),
        WalEntry::Result(rec) => Some(rec.client.as_str()),
        WalEntry::Client { id, .. } => Some(id),
        WalEntry::Testcase(tc) => Some(tc.id.as_str()),
        WalEntry::Model(_) => None,
    }
}
