//! The `uucs-clusterd` daemon: one node of the replicated server tier.
//!
//! ```text
//! uucs-clusterd --node NAME --cluster-dir DIR
//!               [--addr 127.0.0.1:4004] [--repl-listen 127.0.0.1:4104]
//!               [--follow HOST:PORT[,HOST:PORT...]]
//!               [--repl-ack local|quorum] [--data DIR] [--shards N]
//!               [--library FILE] [--generate-library N-seed]
//! ```
//!
//! Without `--follow` the node boots as the leader: it claims the next
//! takeover epoch in `--cluster-dir` and serves read-write. With
//! `--follow` it boots read-only, streams the leader's WAL over the
//! `REPL` channel at one of the given addresses, and — should every
//! candidate go silent — races for the takeover file and promotes
//! itself.
//!
//! Stores are WAL-backed under `--data` exactly like `uucs-server
//! --wal`; replication logs and follower progress live next to them.
//! A two-node quickstart is in the README ("Running a cluster").

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use uucs_cluster::{AckMode, ClusterConfig, ClusterNode, Role};
use uucs_server::{tcp, StoreSet, TestcaseStore, UucsServer};
use uucs_wal::WalConfig;

fn main() {
    let mut node = String::new();
    let mut cluster_dir: Option<PathBuf> = None;
    let mut addr = "127.0.0.1:4004".to_string();
    let mut repl_listen = "127.0.0.1:4104".to_string();
    let mut follow: Vec<String> = Vec::new();
    let mut ack = AckMode::Local;
    let mut data = PathBuf::from("uucs-cluster-data");
    let mut shards: usize = 4;
    let mut library: Option<PathBuf> = None;
    let mut gen_seed: Option<u64> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--node" => {
                i += 1;
                node = args.get(i).cloned().unwrap_or_default();
            }
            "--cluster-dir" => {
                i += 1;
                cluster_dir = args.get(i).map(PathBuf::from);
            }
            "--addr" => {
                i += 1;
                addr = args.get(i).cloned().unwrap_or(addr);
            }
            "--repl-listen" => {
                i += 1;
                repl_listen = args.get(i).cloned().unwrap_or(repl_listen);
            }
            "--follow" => {
                i += 1;
                follow = args
                    .get(i)
                    .map(|s| s.split(',').map(str::to_string).collect())
                    .unwrap_or_default();
            }
            "--repl-ack" => {
                i += 1;
                ack = args
                    .get(i)
                    .and_then(|s| AckMode::parse(s))
                    .unwrap_or_else(|| {
                        eprintln!("bad --repl-ack (want local or quorum)");
                        std::process::exit(2);
                    });
            }
            "--data" => {
                i += 1;
                data = args.get(i).map(PathBuf::from).unwrap_or(data);
            }
            "--shards" => {
                i += 1;
                shards = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("bad --shards (want an integer >= 1)");
                        std::process::exit(2);
                    });
            }
            "--library" => {
                i += 1;
                library = args.get(i).map(PathBuf::from);
            }
            "--generate-library" => {
                i += 1;
                gen_seed = args.get(i).and_then(|s| s.parse().ok()).or(Some(42));
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if node.is_empty() {
        eprintln!("--node NAME is required (the node's identity in the cluster)");
        std::process::exit(2);
    }
    let Some(cluster_dir) = cluster_dir else {
        eprintln!("--cluster-dir DIR is required (the shared takeover directory)");
        std::process::exit(2);
    };

    eprintln!(
        "recovering journals under {:?} ({shards} shard(s)) ...",
        data.join("wal")
    );
    let (stores, _recoveries) = StoreSet::open(&data.join("wal"), WalConfig::default(), shards)
        .unwrap_or_else(|e| {
            eprintln!("journal is unrecoverable: {e}");
            std::process::exit(1);
        });
    let server = Arc::new(UucsServer::with_store_set(stores, 0x5e17));

    let role = if follow.is_empty() {
        Role::Leader
    } else {
        Role::Follower
    };
    // Only a leader seeds the library; a follower receives it over the
    // replication stream.
    if role == Role::Leader && server.testcase_count() == 0 {
        let testcases = if let Some(path) = &library {
            match TestcaseStore::load(path) {
                Ok(store) => store.all().to_vec(),
                Err(e) => {
                    eprintln!("cannot load library {path:?}: {e}");
                    std::process::exit(1);
                }
            }
        } else {
            let seed = gen_seed.unwrap_or(42);
            eprintln!("generating internet-sweep library (seed {seed}) ...");
            uucs_testcase::generate::Library::internet_sweep(seed)
                .testcases()
                .to_vec()
        };
        for tc in testcases {
            if let Err(e) = server.add_testcase(tc) {
                eprintln!("cannot seed library: {e}");
                std::process::exit(1);
            }
        }
    }

    let mut config = ClusterConfig::new(node.clone(), cluster_dir, data.clone());
    config.peers = follow.clone();
    config.ack = ack;
    let cluster = ClusterNode::start(config, Arc::clone(&server), &repl_listen, role)
        .unwrap_or_else(|e| {
            eprintln!("cannot start cluster node: {e}");
            std::process::exit(1);
        });
    eprintln!(
        "node {node} is {:?} (REPL on {}, epoch dir shared)",
        cluster.role(),
        cluster.repl_addr()
    );

    let handle = tcp::serve(Arc::clone(&server), &addr).unwrap_or_else(|e| {
        eprintln!("cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    eprintln!("serving clients on {} (data dir {data:?})", handle.addr());

    loop {
        std::thread::sleep(Duration::from_secs(30));
        let role = cluster.role();
        if role == Role::Leader {
            // Fold the journals and the replication logs; a follower
            // further behind than this checkpoint gets a snapshot.
            if let Err(e) = server
                .compact()
                .and_then(|_| cluster.hub().checkpoint_logs())
            {
                eprintln!("checkpoint failed: {e}");
                continue;
            }
        }
        eprintln!(
            "{role:?}: {} clients, {} results, {} follower(s)",
            server.client_count(),
            server.result_count(),
            cluster.hub().follower_nodes().len()
        );
    }
}
