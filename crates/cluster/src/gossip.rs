//! State-based comfort-model gossip.
//!
//! Every node owns exactly one *contribution*: the fold of its own
//! model shards, stamped with a monotone epoch (the shard-epoch sum).
//! Gossip exchanges contributions; a receiver keeps, per origin node,
//! the entry with the highest epoch it has seen. The merged cluster
//! view is the fold of all retained contributions **in sorted node-name
//! order**.
//!
//! That pair of rules makes convergence order-independent:
//!
//! * *Keeping the max-epoch entry per origin* is a join in the lattice
//!   of per-node versions — commutative, associative, idempotent — so
//!   any gossip schedule that eventually delivers every node's latest
//!   contribution leaves every receiver with the same map.
//! * *Folding in canonical order over exact sketch merges* means equal
//!   maps produce byte-identical [`ComfortModel::encode`] output: the
//!   quantile sketches merge exactly (no approximation, see
//!   `uucs-modelsvc`), cohorts live in a `BTreeMap`, and the fold
//!   visits contributions in `BTreeMap` key order.
//!
//! The property test in this module drives random schedules, shard
//! counts, and delivery orders to hold both claims to "byte-identical".

use std::collections::BTreeMap;
use uucs_modelsvc::{ComfortModel, QuantileSketch};

/// Folds any number of comfort models into one: epochs sum, cohort
/// sketches merge per key. The fold is exact and input-order
/// independent (sketch merge is commutative/associative; the cohort map
/// is ordered), so it can double as both the node-local shard fold and
/// the cluster-wide contribution fold.
pub fn fold_models<I>(models: I) -> ComfortModel
where
    I: IntoIterator<Item = ComfortModel>,
{
    let mut epoch = 0u64;
    let mut cohorts: BTreeMap<_, QuantileSketch> = BTreeMap::new();
    for model in models {
        let (e, parts) = model.into_parts();
        epoch += e;
        for (key, sketch) in parts {
            match cohorts.entry(key) {
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(sketch);
                }
                std::collections::btree_map::Entry::Occupied(mut o) => {
                    o.get_mut()
                        .merge(&sketch)
                        .expect("cohort sketches of one key share a config");
                }
            }
        }
    }
    ComfortModel::from_parts(epoch, cohorts)
}

/// One node's view of the cluster's comfort-model contributions.
#[derive(Debug, Clone)]
pub struct GossipState {
    node: String,
    /// origin node → (epoch, `ComfortModel::encode` text). Own entry
    /// included once recorded.
    contributions: BTreeMap<String, (u64, String)>,
}

impl GossipState {
    /// An empty view for `node`.
    pub fn new(node: impl Into<String>) -> Self {
        GossipState {
            node: node.into(),
            contributions: BTreeMap::new(),
        }
    }

    /// The owning node's name.
    pub fn node(&self) -> &str {
        &self.node
    }

    /// Records this node's own contribution. The model's epoch stamps
    /// the entry; peers discard older epochs, so a node's contribution
    /// only ever moves forward.
    pub fn record_own(&mut self, model: &ComfortModel) {
        let entry = (model.epoch(), model.encode());
        self.absorb_entry(&self.node.clone(), entry.0, entry.1);
    }

    /// Absorbs a peer's contribution (or a relayed third party's).
    /// Returns `true` when the entry was news — a higher epoch than
    /// anything previously seen from that origin.
    pub fn absorb(&mut self, origin: &str, epoch: u64, model: &str) -> bool {
        self.absorb_entry(origin, epoch, model.to_string())
    }

    fn absorb_entry(&mut self, origin: &str, epoch: u64, model: String) -> bool {
        match self.contributions.get(origin) {
            Some((have, _)) if *have >= epoch => false,
            _ => {
                self.contributions.insert(origin.to_string(), (epoch, model));
                true
            }
        }
    }

    /// Every retained contribution, in canonical (sorted-node) order —
    /// what a leader relays to its followers.
    pub fn entries(&self) -> impl Iterator<Item = (&str, u64, &str)> {
        self.contributions
            .iter()
            .map(|(node, (epoch, model))| (node.as_str(), *epoch, model.as_str()))
    }

    /// The sum of retained epochs — a cheap convergence fingerprint
    /// (equal views have equal sums; the property test checks the
    /// stronger byte-identical claim).
    pub fn epoch_sum(&self) -> u64 {
        self.contributions.values().map(|(e, _)| e).sum()
    }

    /// The merged cluster-wide model: decode every contribution and
    /// fold in canonical order. Two nodes with equal contribution maps
    /// get byte-identical `encode()` output from this.
    pub fn merged(&self) -> ComfortModel {
        fold_models(self.contributions.values().map(|(_, text)| {
            ComfortModel::decode(text).expect("gossip entries hold valid model encodings")
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uucs_harness::prelude::*;
    use uucs_modelsvc::Observation;
    use uucs_testcase::Resource;

    fn model_with(samples: &[(f64, bool)], task: &str) -> ComfortModel {
        let mut m = ComfortModel::new();
        let obs: Vec<Observation> = samples
            .iter()
            .map(|&(level, observed)| Observation {
                resource: Resource::Cpu,
                task: task.to_string(),
                skill: String::new(),
                level,
                censored: !observed,
            })
            .collect();
        let delta = m.next_delta(obs);
        m.apply(&delta).unwrap();
        m
    }

    #[test]
    fn absorb_keeps_highest_epoch_per_origin() {
        let mut g = GossipState::new("a");
        assert!(g.absorb("b", 2, "MODEL 2 0\n"));
        assert!(!g.absorb("b", 1, "MODEL 1 0\n"), "older epoch is stale");
        assert!(!g.absorb("b", 2, "MODEL 2 0\n"), "equal epoch is not news");
        assert!(g.absorb("b", 3, "MODEL 3 0\n"));
        assert_eq!(g.epoch_sum(), 3);
    }

    #[test]
    fn merged_folds_in_canonical_order() {
        let ma = model_with(&[(0.4, true), (0.9, false)], "edit");
        let mb = model_with(&[(0.6, true)], "browse");
        let mut g1 = GossipState::new("a");
        g1.absorb("a", ma.epoch(), &ma.encode());
        g1.absorb("b", mb.epoch(), &mb.encode());
        let mut g2 = GossipState::new("b");
        g2.absorb("b", mb.epoch(), &mb.encode());
        g2.absorb("a", ma.epoch(), &ma.encode());
        assert_eq!(g1.merged().encode(), g2.merged().encode());
        assert_eq!(g1.merged().epoch(), ma.epoch() + mb.epoch());
    }

    proptest! {
        #![proptest_config(Config::with_cases(24))]

        /// The headline convergence property: for random node counts,
        /// per-node observation sets, and random delivery schedules
        /// (which entries reach which node, in which order, with
        /// arbitrary re-deliveries), once every node has seen every
        /// origin's latest contribution, all nodes' merged models are
        /// byte-identical and the epoch sum is the sum of the origins'.
        #[test]
        fn random_gossip_schedules_converge(
            nodes in 2usize..5,
            seeds in prop::collection::vec(0u64..1000, 2..5),
            schedule_from in prop::collection::vec(0usize..5, 0..40),
            schedule_to in prop::collection::vec(0usize..5, 0..40),
        ) {
            let nodes = nodes.max(seeds.len());
            // Each node's own contribution: a small deterministic
            // observation set derived from its seed.
            let models: Vec<ComfortModel> = seeds
                .iter()
                .map(|&s| {
                    let samples: Vec<(f64, bool)> = (0..(s % 4 + 1))
                        .map(|i| (((s + i) % 10) as f64 / 10.0, (s + i) % 3 != 0))
                        .collect();
                    model_with(&samples, if s % 2 == 0 { "edit" } else { "browse" })
                })
                .collect();
            let mut states: Vec<GossipState> = (0..nodes)
                .map(|i| {
                    let mut g = GossipState::new(format!("n{i}"));
                    if i < models.len() {
                        g.record_own(&models[i]);
                    }
                    g
                })
                .collect();
            // Random pairwise exchanges: `from` pushes everything it
            // has to `to` (out-of-order, repeated deliveries included).
            for (&from, &to) in schedule_from.iter().zip(&schedule_to) {
                let (from, to) = (from % nodes, to % nodes);
                if from == to {
                    continue;
                }
                let entries: Vec<(String, u64, String)> = states[from]
                    .entries()
                    .map(|(n, e, m)| (n.to_string(), e, m.to_string()))
                    .collect();
                for (n, e, m) in entries {
                    states[to].absorb(&n, e, &m);
                }
            }
            // Close the schedule: deliver every origin's latest entry
            // to every node (the eventual-delivery assumption).
            for (i, model) in models.iter().enumerate() {
                let origin = format!("n{i}");
                for st in states.iter_mut() {
                    st.absorb(&origin, model.epoch(), &model.encode());
                }
            }
            let want_epoch: u64 = models.iter().map(|m| m.epoch()).sum();
            let reference = states[0].merged().encode();
            for st in &states {
                let merged = st.merged();
                prop_assert_eq!(merged.epoch(), want_epoch);
                prop_assert_eq!(merged.encode(), reference.clone());
            }
        }
    }
}
