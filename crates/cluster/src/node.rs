//! Node roles and the deterministic takeover protocol.
//!
//! Leadership is decided by epoch-numbered *takeover files* in a
//! directory every node of the cluster can reach (`cluster_dir`):
//! `takeover-000001`, `takeover-000002`, ... Claiming epoch `E` means
//! creating `takeover-E` with `create_new` — the filesystem's atomic
//! create-if-absent — so exactly one node wins each epoch no matter how
//! many followers detect the leader's death at once. The file's content
//! names the winner and its addresses; losers re-enter the follower
//! loop and find the new leader on their next peer sweep.
//!
//! Promotion itself is three steps, all local: install the merged
//! gossip model (the follower never minted model state of its own),
//! flip the engine out of read-only, and start the replication hub
//! leading under the claimed epoch.

use crate::follower::{FollowerConfig, ReplFollower};
use crate::hub::{AckMode, HubConfig, ReplHub};
use std::io;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;
use uucs_server::UucsServer;

/// A node's current cluster role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Accepts writes, ships WAL entries, welcomes followers.
    Leader,
    /// Read-only engine, applies the leader's stream, gossips.
    Follower,
}

/// Cluster membership configuration for one node.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// This node's name (unique within the cluster).
    pub node: String,
    /// The shared takeover directory (all nodes must see it).
    pub cluster_dir: PathBuf,
    /// This node's own data directory (replication logs and follower
    /// progress live under it).
    pub data_dir: PathBuf,
    /// `REPL` addresses of every peer that might lead.
    pub peers: Vec<String>,
    /// Ack policy when leading.
    pub ack: AckMode,
    /// Quorum-ack wait bound.
    pub ack_timeout: Duration,
    /// Gossip beat (and follower read timeout).
    pub gossip_interval: Duration,
    /// Consecutive leaderless peer sweeps before racing for takeover.
    pub promote_after: u32,
    /// Replication-log segment size (tests shrink it to force rotation).
    pub segment_bytes: u64,
}

impl ClusterConfig {
    /// A config with production-ish defaults for `node` under `data_dir`,
    /// coordinating through `cluster_dir`.
    pub fn new(
        node: impl Into<String>,
        cluster_dir: impl Into<PathBuf>,
        data_dir: impl Into<PathBuf>,
    ) -> ClusterConfig {
        ClusterConfig {
            node: node.into(),
            cluster_dir: cluster_dir.into(),
            data_dir: data_dir.into(),
            peers: Vec::new(),
            ack: AckMode::Local,
            ack_timeout: Duration::from_secs(2),
            gossip_interval: Duration::from_millis(200),
            promote_after: 3,
            segment_bytes: 1 << 20,
        }
    }
}

/// The newest claimed epoch in `cluster_dir` (0 = none yet).
pub fn current_epoch(cluster_dir: &Path) -> u64 {
    let Ok(entries) = std::fs::read_dir(cluster_dir) else {
        return 0;
    };
    entries
        .filter_map(|e| e.ok())
        .filter_map(|e| {
            e.file_name()
                .to_str()
                .and_then(|n| n.strip_prefix("takeover-"))
                .and_then(|n| n.parse::<u64>().ok())
        })
        .max()
        .unwrap_or(0)
}

/// Atomically claims `epoch` for `node`. The epoch is explicit (the
/// caller passes `current_epoch() + 1` as observed *before* racing), so
/// one epoch can only ever have one winner: every concurrent claimant
/// targets the same file and `create_new` picks exactly one. Losers get
/// `AlreadyExists` and must re-observe before trying again — by then
/// the winner is leading and the follower sweep finds it.
pub fn claim_epoch(cluster_dir: &Path, node: &str, epoch: u64) -> io::Result<u64> {
    std::fs::create_dir_all(cluster_dir)?;
    let path = cluster_dir.join(format!("takeover-{epoch:06}"));
    let mut opts = std::fs::OpenOptions::new();
    opts.write(true).create_new(true);
    match opts.open(&path) {
        Ok(mut f) => {
            use std::io::Write;
            writeln!(f, "{node}")?;
            f.sync_all()?;
            Ok(epoch)
        }
        Err(e) => Err(e),
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One node of the replicated tier: an engine, a replication hub, and
/// (in follower mode) the apply loop with its promotion trigger.
pub struct ClusterNode {
    config: ClusterConfig,
    server: Arc<UucsServer>,
    hub: Arc<ReplHub>,
    repl_addr: SocketAddr,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
    follower: Mutex<Option<ReplFollower>>,
    promoted: Arc<AtomicBool>,
}

impl ClusterNode {
    /// Opens the replication hub (recovering its logs), binds the
    /// `REPL` listener on `repl_listen`, and starts in `role`:
    ///
    /// * [`Role::Leader`] claims the next epoch in `cluster_dir`
    ///   (creating `takeover-000001` on a fresh cluster) and starts
    ///   fanning out.
    /// * [`Role::Follower`] flips the engine read-only and starts the
    ///   follower loop against `config.peers`; if the loop later finds
    ///   no leader for `promote_after` sweeps, the node races for the
    ///   takeover file and promotes itself on a win.
    pub fn start(
        config: ClusterConfig,
        server: Arc<UucsServer>,
        repl_listen: &str,
        role: Role,
    ) -> io::Result<Arc<ClusterNode>> {
        let hub = ReplHub::open(
            config.node.clone(),
            config.data_dir.join("repl"),
            server.shard_count(),
            HubConfig {
                ack: config.ack,
                ack_timeout: config.ack_timeout,
                segment_bytes: config.segment_bytes,
                ..HubConfig::default()
            },
        )?;
        hub.set_server(Arc::clone(&server));
        server.set_replication(hub.clone());
        let (repl_addr, accept_thread) = hub.listen(repl_listen)?;
        let node = Arc::new(ClusterNode {
            config,
            server,
            hub,
            repl_addr,
            accept_thread: Mutex::new(Some(accept_thread)),
            follower: Mutex::new(None),
            promoted: Arc::new(AtomicBool::new(false)),
        });
        match role {
            Role::Leader => {
                let next = current_epoch(&node.config.cluster_dir) + 1;
                let epoch = claim_epoch(&node.config.cluster_dir, &node.config.node, next)?;
                node.server.set_read_only(false);
                node.hub.lead(epoch);
            }
            Role::Follower => {
                node.server.set_read_only(true);
                node.start_follower();
            }
        }
        Ok(node)
    }

    /// The bound `REPL` address (follower handshakes connect here).
    pub fn repl_addr(&self) -> SocketAddr {
        self.repl_addr
    }

    /// This node's engine.
    pub fn server(&self) -> &Arc<UucsServer> {
        &self.server
    }

    /// This node's replication hub.
    pub fn hub(&self) -> &Arc<ReplHub> {
        &self.hub
    }

    /// The node's current role.
    pub fn role(&self) -> Role {
        if self.hub.leading() {
            Role::Leader
        } else {
            Role::Follower
        }
    }

    /// Whether this node promoted itself after a leader loss.
    pub fn was_promoted(&self) -> bool {
        self.promoted.load(Ordering::SeqCst)
    }

    fn start_follower(self: &Arc<Self>) {
        let weak = Arc::downgrade(self);
        let follower = ReplFollower::start(
            FollowerConfig {
                node: self.config.node.clone(),
                leaders: self.config.peers.clone(),
                progress_path: self.config.data_dir.join("repl-progress.txt"),
                gossip_interval: self.config.gossip_interval,
                promote_after: self.config.promote_after,
            },
            Arc::clone(&self.server),
            Arc::clone(&self.hub),
            move || weak.upgrade().is_some_and(|node| node.try_promote()),
        );
        *lock(&self.follower) = Some(follower);
    }

    /// Races for the next takeover epoch; on a win, promotes this node
    /// to leader. Returns whether the promotion happened (a lost race
    /// keeps the node a follower; its loop will find the winner).
    pub fn try_promote(&self) -> bool {
        let next = current_epoch(&self.config.cluster_dir) + 1;
        match claim_epoch(&self.config.cluster_dir, &self.config.node, next) {
            Ok(epoch) => {
                // Serve the cluster-wide comfort model from day one of
                // the new reign: the merged gossip view holds every
                // contribution this node has seen, including the dead
                // leader's last beat.
                let merged = lock(self.hub.gossip()).merged();
                if merged.epoch() > 0 {
                    let _ = self.server.install_model(merged);
                }
                self.server.set_read_only(false);
                self.hub.lead(epoch);
                self.promoted.store(true, Ordering::SeqCst);
                true
            }
            Err(_) => false,
        }
    }

    /// Stops the follower loop (if any) and the `REPL` listener.
    pub fn shutdown(&self) {
        if let Some(follower) = lock(&self.follower).take() {
            follower.stop();
        }
        self.hub.shutdown(self.repl_addr);
        if let Some(handle) = lock(&self.accept_thread).take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ClusterNode {
    fn drop(&mut self) {
        self.shutdown();
    }
}
