//! The follower half of WAL shipping: connect to whoever leads, resume
//! from persisted watermarks, apply the stream into the local engine,
//! ack with per-shard commits, and gossip the node's own model
//! contribution on a timer.
//!
//! The follower also doubles as the cluster's failure detector: when a
//! full sweep of the peer list finds no leader (`connect` refused or
//! every node answered `NOTLEADER`) enough times in a row, it reports
//! leader loss to the [`crate::node::ClusterNode`], which races for the
//! takeover file.

use crate::hub::ReplHub;
use std::io::{self, BufReader, BufWriter};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;
use uucs_protocol::repl::{read_repl_msg, write_repl_msg, ReplMsg};
use uucs_protocol::WalEntry;
use uucs_server::UucsServer;
use uucs_telemetry::metrics;

/// Durable follower progress: the cluster epoch the watermarks were
/// earned under and, per leader shard, the next wanted sequence.
/// Persisted as one small text file, rewritten after every applied
/// message — being *behind* on disk is always safe (re-application is
/// idempotent), being ahead never happens.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FollowerProgress {
    /// The cluster epoch of the leader the watermarks came from.
    pub epoch: u64,
    /// Next wanted sequence per leader shard.
    pub watermarks: Vec<u64>,
}

impl FollowerProgress {
    /// Loads progress from `path` (default: never synced).
    pub fn load(path: &std::path::Path) -> FollowerProgress {
        let Ok(text) = std::fs::read_to_string(path) else {
            return FollowerProgress::default();
        };
        let mut lines = text.lines();
        let epoch = lines
            .next()
            .and_then(|l| l.strip_prefix("EPOCH "))
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let watermarks = lines
            .filter_map(|l| l.strip_prefix("SHARD "))
            .filter_map(|l| l.split_whitespace().nth(1))
            .filter_map(|s| s.parse().ok())
            .collect();
        FollowerProgress { epoch, watermarks }
    }

    /// Persists progress to `path` (best-effort; an unwritable file
    /// only costs a bigger backfill after restart).
    pub fn save(&self, path: &std::path::Path) {
        let mut out = format!("EPOCH {}\n", self.epoch);
        for (i, w) in self.watermarks.iter().enumerate() {
            out.push_str(&format!("SHARD {i} {w}\n"));
        }
        let _ = std::fs::write(path, out);
    }
}

/// Configuration for the follower runtime.
#[derive(Debug, Clone)]
pub struct FollowerConfig {
    /// This node's name (the `HELLO` identity).
    pub node: String,
    /// `REPL` addresses of every peer that might lead.
    pub leaders: Vec<String>,
    /// Where [`FollowerProgress`] persists.
    pub progress_path: PathBuf,
    /// Socket read timeout; each expiry sends one gossip beat.
    pub gossip_interval: Duration,
    /// Consecutive no-leader sweeps of the peer list before reporting
    /// leader loss (the promotion trigger).
    pub promote_after: u32,
}

/// The follower runtime: a background thread driving the connect /
/// apply / ack / gossip loop.
pub struct ReplFollower {
    stop: Arc<AtomicBool>,
    handle: Mutex<Option<JoinHandle<()>>>,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl ReplFollower {
    /// Starts following. `on_leader_lost` runs on the follower thread
    /// after `promote_after` consecutive leaderless sweeps; returning
    /// `true` means this node was promoted and the loop must end.
    pub fn start(
        config: FollowerConfig,
        server: Arc<UucsServer>,
        hub: Arc<ReplHub>,
        on_leader_lost: impl Fn() -> bool + Send + 'static,
    ) -> ReplFollower {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name(format!("repl-follower-{}", config.node))
            .spawn(move || {
                run_follower(&config, &server, &hub, &stop2, on_leader_lost);
            })
            .expect("spawn follower thread");
        ReplFollower {
            stop,
            handle: Mutex::new(Some(handle)),
        }
    }

    /// Stops the loop and joins the thread.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = lock(&self.handle).take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ReplFollower {
    fn drop(&mut self) {
        self.stop();
    }
}

fn run_follower(
    config: &FollowerConfig,
    server: &Arc<UucsServer>,
    hub: &Arc<ReplHub>,
    stop: &AtomicBool,
    on_leader_lost: impl Fn() -> bool,
) {
    let mut leaderless_sweeps = 0u32;
    while !stop.load(Ordering::SeqCst) {
        let mut synced_any = false;
        for addr in &config.leaders {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            if let Ok(true) = follow_once(config, server, hub, stop, addr) {
                synced_any = true;
                leaderless_sweeps = 0;
            }
        }
        if stop.load(Ordering::SeqCst) {
            return;
        }
        if !synced_any {
            leaderless_sweeps += 1;
            if leaderless_sweeps >= config.promote_after {
                if on_leader_lost() {
                    return;
                }
                leaderless_sweeps = 0;
            }
            // Brief pause between sweeps so a restarting leader has a
            // chance to bind before the next round (and the promotion
            // count reflects real time, not a hot loop).
            std::thread::sleep(Duration::from_millis(50));
        }
    }
}

/// Reads the next framed message without losing stream sync to the
/// gossip timer: the read timeout only applies *between* frames (a
/// `fill_buf` peek); once a frame's first byte arrived the rest is read
/// with no deadline — the sender writes whole frames with one flush, so
/// the wait is bounded by the leader's liveness, which is exactly what
/// a blocked read should be bounded by.
///
/// Returns `Ok(None)` on a timeout beat, `Ok(Some(None))` on clean EOF,
/// `Ok(Some(Some(msg)))` on a message.
#[allow(clippy::option_option)]
fn next_msg(
    reader: &mut BufReader<TcpStream>,
    sock: &TcpStream,
    timeout: Duration,
) -> io::Result<Option<Option<ReplMsg>>> {
    use std::io::BufRead;
    match reader.fill_buf() {
        Ok([]) => Ok(Some(None)),
        Ok(_) => {
            sock.set_read_timeout(None)?;
            let msg = read_repl_msg(reader);
            sock.set_read_timeout(Some(timeout))?;
            msg.map(Some)
        }
        Err(e) if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            Ok(None)
        }
        Err(e) => Err(e),
    }
}

/// One connection attempt against one candidate leader. `Ok(true)`
/// means a session was established and later ended (leader died or we
/// are stopping); `Ok(false)` means this peer is not the leader.
fn follow_once(
    config: &FollowerConfig,
    server: &Arc<UucsServer>,
    hub: &Arc<ReplHub>,
    stop: &AtomicBool,
    addr: &str,
) -> io::Result<bool> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(config.gossip_interval))?;
    let sock = stream.try_clone()?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut progress = FollowerProgress::load(&config.progress_path);
    write_repl_msg(
        &mut writer,
        &ReplMsg::Hello {
            node: config.node.clone(),
            epoch: progress.epoch,
            watermarks: progress
                .watermarks
                .iter()
                .enumerate()
                .map(|(i, &w)| (i, w))
                .collect(),
        },
    )?;
    let (epoch, shards) = loop {
        match next_msg(&mut reader, &sock, config.gossip_interval) {
            Ok(Some(Some(ReplMsg::Welcome { epoch, shards, .. }))) => break (epoch, shards),
            Ok(Some(_)) => return Ok(false),
            Ok(None) => {
                if stop.load(Ordering::SeqCst) {
                    return Ok(false);
                }
            }
            Err(_) => return Ok(false),
        }
    };
    if progress.epoch != epoch || progress.watermarks.len() != shards {
        // New leader (or first contact): the old sequence space is
        // meaningless. The leader will send a snapshot; expect from 0.
        progress = FollowerProgress {
            epoch,
            watermarks: vec![0; shards],
        };
        progress.save(&config.progress_path);
    }
    let applied = metrics::counter("server.repl.applied");
    // The apply / ack / gossip loop. A read timeout is the gossip beat;
    // a torn frame or reset ends the session (the leader died).
    let session = loop {
        if stop.load(Ordering::SeqCst) {
            break true;
        }
        match next_msg(&mut reader, &sock, config.gossip_interval) {
            Ok(Some(Some(ReplMsg::Entry { shard, seq, bytes }))) => {
                if shard >= shards {
                    break true;
                }
                let expected = progress.watermarks[shard];
                if seq < expected {
                    continue; // Backfill overlap: already applied.
                }
                if seq > expected {
                    break true; // Gap: resync via reconnect.
                }
                let entry = WalEntry::decode(&bytes)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                server.apply_entry(&entry)?;
                applied.inc();
                progress.watermarks[shard] = seq + 1;
                progress.save(&config.progress_path);
                write_repl_msg(
                    &mut writer,
                    &ReplMsg::Commit {
                        shard,
                        upto: seq + 1,
                    },
                )?;
            }
            Ok(Some(Some(ReplMsg::SnapEntry { bytes, .. }))) => {
                let entry = WalEntry::decode(&bytes)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                server.apply_snapshot_entry(&entry)?;
                applied.inc();
            }
            Ok(Some(Some(ReplMsg::SnapDone { shard, upto }))) => {
                if shard >= shards {
                    break true;
                }
                progress.watermarks[shard] = progress.watermarks[shard].max(upto);
                progress.save(&config.progress_path);
                write_repl_msg(
                    &mut writer,
                    &ReplMsg::Commit {
                        shard,
                        upto: progress.watermarks[shard],
                    },
                )?;
            }
            Ok(Some(Some(ReplMsg::Gossip { node, epoch, model }))) => {
                lock(hub.gossip()).absorb(&node, epoch, &model);
            }
            Ok(Some(Some(ReplMsg::Ping { .. }))) => {}
            Ok(Some(_)) => break true,
            Ok(None) => {
                // Gossip beat: send our own latest contribution.
                let own = server.model_contribution();
                lock(hub.gossip()).record_own(&own);
                if write_repl_msg(
                    &mut writer,
                    &ReplMsg::Gossip {
                        node: config.node.clone(),
                        epoch: own.epoch(),
                        model: own.encode(),
                    },
                )
                .is_err()
                {
                    break true;
                }
            }
            Err(_) => break true, // Torn frame / reset: leader died.
        }
    };
    Ok(session)
}
