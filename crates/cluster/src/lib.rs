//! The UUCS replicated server tier.
//!
//! A single sharded engine (PR 6) leaves one failure mode standing:
//! lose the box, lose the service. This crate closes that gap with a
//! deliberately small design — one leader, N followers, and three
//! mechanisms:
//!
//! * **WAL shipping** ([`hub`]): the leader appends every committed
//!   mutation to per-shard replication logs and streams the entries to
//!   connected followers over the `REPL` channel
//!   ([`uucs_protocol::repl`]), CRC-framed like on-disk WAL records.
//!   Followers acknowledge with per-shard watermarks; `--repl-ack=quorum`
//!   makes the leader wait for a follower ack before acking the client.
//! * **Model gossip** ([`gossip`]): every node periodically broadcasts
//!   its *own* comfort-model contribution (epoch-versioned); receivers
//!   keep the highest epoch per origin node and fold contributions in
//!   sorted node order. Because sketch merges are exact and the fold
//!   order is canonical, every node converges to byte-identical merged
//!   state regardless of gossip schedule — property-tested in this
//!   crate.
//! * **Deterministic promotion** ([`node`]): on leader death, a
//!   follower claims the next epoch-numbered takeover file in the
//!   shared cluster directory (`create_new` — first writer wins),
//!   flips its engine out of read-only mode, and installs the merged
//!   gossip model. Clients fail over via their multi-address transport
//!   and re-register with their persisted tokens; the per-client
//!   sequence horizon makes the switch exactly-once.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod follower;
pub mod gossip;
pub mod hub;
pub mod node;

pub use follower::ReplFollower;
pub use gossip::GossipState;
pub use hub::{AckMode, ReplHub};
pub use node::{ClusterConfig, ClusterNode, Role};
