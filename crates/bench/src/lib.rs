//! Shared helpers for the benchmark harness.
//!
//! Each bench target regenerates paper artifacts and times the
//! regeneration:
//!
//! * `paper_figures` — one `uucs-harness` bench group per table/figure (Figures 3,
//!   4, 8, 9, 10–12, 13, 14–16, 17, 18, and the §3.3.5 frog analysis);
//!   each group also prints the regenerated artifact once so
//!   `cargo bench | tee` captures the paper reproduction.
//! * `exerciser_accuracy` — the §2.2 verification experiments (CPU to
//!   contention 10, disk to 7).
//! * `substrate` — micro-benches of the machine simulator, memory
//!   manager, statistics kernels, and wire protocol.
//! * `ablations` — design-choice studies: run-engine fidelity, fault
//!   chunking, scheduler quantum vs Quake jitter, and the mixture-aware
//!   calibration fit.

use std::sync::OnceLock;
use uucs_comfort::Fidelity;
use uucs_study::controlled::{ControlledStudy, StudyConfig, StudyData};

/// The canonical study dataset shared by figure benches (33 users, the
/// paper's sample size), built once.
pub fn study_data() -> &'static StudyData {
    static DATA: OnceLock<StudyData> = OnceLock::new();
    DATA.get_or_init(|| {
        ControlledStudy::new(StudyConfig {
            seed: 2004,
            users: 33,
            fidelity: Fidelity::Fast,
        })
        .run()
    })
}

/// A larger dataset for the analyses that need statistical power
/// (Figure 17, frog).
pub fn big_study_data() -> &'static StudyData {
    static DATA: OnceLock<StudyData> = OnceLock::new();
    DATA.get_or_init(|| {
        ControlledStudy::new(StudyConfig {
            seed: 2004,
            users: 240,
            fidelity: Fidelity::Fast,
        })
        .run()
    })
}

/// Prints a regenerated artifact once per process under a banner, so
/// bench output doubles as the reproduction record.
pub fn print_once(name: &str, render: impl FnOnce() -> String) {
    use std::collections::HashSet;
    use std::sync::Mutex;
    static PRINTED: Mutex<Option<HashSet<String>>> = Mutex::new(None);
    let mut guard = PRINTED.lock().unwrap();
    let set = guard.get_or_insert_with(HashSet::new);
    if set.insert(name.to_string()) {
        println!("\n===== {name} =====\n{}", render());
    }
}
