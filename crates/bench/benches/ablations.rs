//! Ablation studies of the design choices DESIGN.md calls out.
//!
//! * **Fidelity** — what the Full machine simulation costs versus the
//!   Fast decision-only path, and confirmation that the decision is
//!   identical (the design invariant that lets the 1056-run study use
//!   Fast).
//! * **Fault chunking** — the `fault_chunk` parameter trades foreground
//!   I/O interleaving against per-request overhead.
//! * **Scheduler quantum** — the paper attributes Quake's blank-run noise
//!   floor to scheduling jitter; quantum size drives that jitter.
//! * **Mixture-aware calibration** — the population solves its base fit
//!   against the skill-multiplied mixture; the ablation quantifies the
//!   quantile error a naive (plain-fit + multipliers) population incurs.

use uucs_harness::{bench_group, bench_main, Criterion};
use std::hint::black_box;
use uucs_bench::print_once;
use uucs_comfort::{calibration, UserPopulation};
use uucs_sim::workload::FnWorkload;
use uucs_sim::{Action, Machine, MachineConfig, SEC};
use uucs_workloads::quake::{FrameStats, QuakeModel};

fn fidelity_ablation(c: &mut Criterion) {
    use uucs_comfort::{execute_run, Fidelity, RunSetup, RunStyle};
    use uucs_testcase::{ExerciseSpec, Resource, Testcase};
    let pop = UserPopulation::generate(8, 1);
    let tc = Testcase::single(
        "abl-cpu-ramp",
        1.0,
        Resource::Cpu,
        ExerciseSpec::Ramp { level: 2.0, duration: 120.0 },
    );
    print_once("Ablation: Fast vs Full fidelity decisions", || {
        let mut out = String::from("user  outcome(fast)==outcome(full)  offset match\n");
        for (i, u) in pop.users().iter().enumerate() {
            let mk = |fidelity| {
                execute_run(&RunSetup {
                    user: u,
                    task: uucs_workloads::Task::Powerpoint,
                    testcase: &tc,
                    style: RunStyle::Ramp,
                    seed: 100 + i as u64,
                    fidelity,
                    client_id: "abl".into(),
                })
            };
            let fast = mk(Fidelity::Fast);
            let full = mk(Fidelity::Full);
            out.push_str(&format!(
                "{:<5} {:<30} {}\n",
                u.id,
                fast.outcome == full.outcome,
                fast.offset_secs == full.offset_secs
            ));
        }
        out
    });
    let mut group = c.benchmark_group("ablation/fidelity");
    group.sample_size(10);
    for (name, fid) in [
        ("fast", uucs_comfort::Fidelity::Fast),
        ("full", uucs_comfort::Fidelity::Full),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let rec = execute_run(&RunSetup {
                    user: &pop.users()[0],
                    task: uucs_workloads::Task::Powerpoint,
                    testcase: &tc,
                    style: RunStyle::Ramp,
                    seed: 55,
                    fidelity: fid,
                    client_id: "abl".into(),
                });
                black_box(rec.offset_secs)
            })
        });
    }
    group.finish();
}

fn fault_chunk_ablation(c: &mut Criterion) {
    // A foreground thread does small reads while a fault storm runs;
    // chunk size determines how often the foreground can interleave.
    let run_with_chunk = |chunk: u32| -> (u64, u64) {
        let cfg = MachineConfig {
            fault_chunk: chunk,
            mem_pages: 20_000,
            seed: 9,
            ..MachineConfig::default()
        };
        let mut m = Machine::new(cfg);
        // Fault storm: touch a big region, evicted by a second one, over
        // and over.
        let mut phase = 0u32;
        let mut r1 = None;
        let mut r2 = None;
        m.spawn(
            "storm",
            Box::new(FnWorkload::new("storm", move |ctx| {
                if r1.is_none() {
                    r1 = Some(ctx.alloc_region(15_000, false));
                    r2 = Some(ctx.alloc_region(15_000, false));
                }
                phase += 1;
                Action::Touch {
                    region: if phase.is_multiple_of(2) { r1.unwrap() } else { r2.unwrap() },
                    count: 15_000,
                    pattern: uucs_sim::TouchPattern::Prefix,
                }
            })),
        );
        let fg = m.spawn(
            "fg",
            Box::new(FnWorkload::new("fg", |_| Action::DiskIo {
                ops: 1,
                bytes_per_op: 4096,
            })),
        );
        m.run_until(30 * SEC);
        (m.thread_stats(fg).disk_ops, m.mem_stats().faults)
    };
    print_once("Ablation: fault chunk size vs foreground interleaving", || {
        let mut out = String::from("chunk  fg_ops  faults\n");
        for chunk in [1u32, 4, 8, 32, 256] {
            let (ops, faults) = run_with_chunk(chunk);
            out.push_str(&format!("{chunk:>5} {ops:>7} {faults:>7}\n"));
        }
        out
    });
    let mut group = c.benchmark_group("ablation/fault_chunk");
    group.sample_size(10);
    for chunk in [1u32, 8, 64] {
        group.bench_function(format!("chunk_{chunk}"), |b| {
            b.iter(|| black_box(run_with_chunk(chunk)))
        });
    }
    group.finish();
}

fn quantum_ablation(c: &mut Criterion) {
    // Quake frame jitter against one competing busy thread, versus
    // scheduler quantum — the mechanism behind the paper's Quake noise
    // floor.
    let jitter_with_quantum = |quantum_us: u64| -> f64 {
        let cfg = MachineConfig {
            quantum_us,
            seed: 10,
            ..MachineConfig::default()
        };
        let mut m = Machine::new(cfg);
        let q = m.spawn("quake", Box::new(QuakeModel::new()));
        m.spawn(
            "bg",
            Box::new(FnWorkload::new("bg", |_| Action::Compute { us: 2_000 })),
        );
        m.run_until(20 * SEC);
        FrameStats::from_latencies(&m.thread_stats(q).latencies_of("frame"))
            .map(|f| f.jitter_us)
            .unwrap_or(0.0)
    };
    print_once("Ablation: scheduler quantum vs Quake frame jitter", || {
        let mut out = String::from("quantum(ms)  frame jitter (us)\n");
        for q in [1_000u64, 5_000, 10_000, 20_000, 50_000] {
            out.push_str(&format!("{:>10} {:>12.0}\n", q / 1000, jitter_with_quantum(q)));
        }
        out
    });
    let mut group = c.benchmark_group("ablation/quantum");
    group.sample_size(10);
    group.bench_function("quake_20simsec_10ms", |b| {
        b.iter(|| black_box(jitter_with_quantum(10_000)))
    });
    group.finish();
}

fn calibration_ablation(c: &mut Criterion) {
    // Quantile accuracy of the mixture-aware population versus the
    // published fit points, cell by cell.
    print_once("Ablation: mixture-aware calibration accuracy", || {
        let pop = UserPopulation::generate(4000, 11);
        let mut out = String::from("cell                target_f_d  pop_f_d   target_c05_mass  pop_c05_mass\n");
        for cell in &calibration::CELLS {
            let Some(c05) = cell.c_05 else { continue };
            if cell.f_d <= 0.051 {
                continue;
            }
            let thresholds: Vec<f64> = pop
                .users()
                .iter()
                .map(|u| u.threshold(cell.task, cell.resource))
                .collect();
            let below_cap = thresholds.iter().filter(|&&t| t <= cell.ramp_ceiling).count() as f64
                / thresholds.len() as f64;
            let below_c05 =
                thresholds.iter().filter(|&&t| t <= c05).count() as f64 / thresholds.len() as f64;
            out.push_str(&format!(
                "{:<20} {:>9.3} {:>8.3} {:>16.3} {:>13.3}\n",
                format!("{}/{}", cell.task.name(), cell.resource),
                cell.f_d,
                below_cap,
                0.05,
                below_c05
            ));
        }
        out
    });
    let mut group = c.benchmark_group("ablation/calibration");
    group.sample_size(10);
    group.bench_function("generate_population_1000", |b| {
        b.iter(|| black_box(UserPopulation::generate(1000, 12).len()))
    });
    group.finish();
}

fn harvest_strategy_ablation(c: &mut Criterion) {
    use uucs_comfort::{run_harvest, FeedbackThrottle, HarvestStrategy};
    let pop = UserPopulation::generate(1, 13);
    let user = &pop.users()[0];
    print_once("Ablation: cycle-stealing strategies (paper §1/§5)", || {
        let mut out = String::from(
            "task        strategy       harvest/s  fg_ratio  fg_ms  clicks\n",
        );
        for task in [uucs_workloads::Task::Word, uucs_workloads::Task::Quake] {
            let strategies: Vec<(&str, HarvestStrategy)> = vec![
                ("screensaver", HarvestStrategy::ScreensaverOnly),
                ("low-priority", HarvestStrategy::LowPriority),
                ("throttled-0.3", HarvestStrategy::Throttled { level: 0.3 }),
                (
                    "feedback",
                    HarvestStrategy::Feedback {
                        throttle: FeedbackThrottle::new(0.05, 6.0, 0.02, 0.5, 40),
                    },
                ),
            ];
            for (name, st) in strategies {
                let o = run_harvest(user, task, st, 180, 14);
                out.push_str(&format!(
                    "{:<11} {:<14} {:>8.2} {:>9.2} {:>6.1} {:>7}\n",
                    task.name(),
                    name,
                    o.harvest_rate(),
                    o.fg_latency_ratio,
                    o.fg_latency_ms,
                    o.clicks
                ));
            }
        }
        out
    });
    let mut group = c.benchmark_group("ablation/harvest");
    group.sample_size(10);
    group.bench_function("low_priority_word_180s", |b| {
        b.iter(|| {
            black_box(
                run_harvest(
                    user,
                    uucs_workloads::Task::Word,
                    HarvestStrategy::LowPriority,
                    180,
                    15,
                )
                .harvested_cpu_secs,
            )
        })
    });
    group.finish();
}

fn perception_validation(c: &mut Criterion) {
    use uucs_comfort::perception::{perception_ramp_run, PerceptionProfile};
    use uucs_stats::Pcg64;
    use uucs_testcase::Resource;
    // A small perception-driven study over the CPU column: no per-cell
    // calibration, only interactivity physics — compare its f_d and c_05
    // with the paper's.
    print_once("Ablation: perception-driven users vs paper (CPU column)", || {
        let pop = UserPopulation::generate(10, 16);
        let mut out = String::from(
            "task        paper_f_d  percept_f_d  paper_c05  percept_c05\n",
        );
        for task in uucs_workloads::Task::ALL {
            let cell = calibration::cell(task, Resource::Cpu);
            let mut rng = Pcg64::new(17).split_str(task.name());
            let records: Vec<_> = pop
                .users()
                .iter()
                .enumerate()
                .map(|(i, u)| {
                    let profile = PerceptionProfile::sample(&mut rng);
                    perception_ramp_run(u, &profile, task, Resource::Cpu, 500 + i as u64)
                })
                .collect();
            let m = uucs_comfort::metrics::CellMetrics::from_runs(records.iter(), Resource::Cpu);
            out.push_str(&format!(
                "{:<11} {:>9.2} {:>12} {:>10} {:>12}\n",
                task.name(),
                cell.f_d,
                m.f_d.map(|x| format!("{x:.2}")).unwrap_or_else(|| "-".into()),
                cell.c_05
                    .map(|x| format!("{x:.2}"))
                    .unwrap_or_else(|| "*".into()),
                m.c_05.map(|x| format!("{x:.2}")).unwrap_or_else(|| "*".into()),
            ));
        }
        out
    });
    let mut group = c.benchmark_group("ablation/perception");
    group.sample_size(10);
    group.bench_function("quake_cpu_ramp_full", |b| {
        let pop = UserPopulation::generate(1, 18);
        let profile = PerceptionProfile {
            tolerance_ratio: 1.8,
            latency_floor_us: 120_000.0,
            jitter_ratio: 2.5,
            patience_secs: 3,
        };
        b.iter(|| {
            black_box(
                perception_ramp_run(
                    &pop.users()[0],
                    &profile,
                    uucs_workloads::Task::Quake,
                    Resource::Cpu,
                    19,
                )
                .offset_secs,
            )
        })
    });
    group.finish();
}

fn priority_ablation(c: &mut Criterion) {
    use uucs_sim::Priority;
    use uucs_workloads::quake::{FrameStats, QuakeModel};
    // The paper's §1: current systems "run at a very low priority" —
    // what does that do to the foreground versus equal priority?
    let run = |equal_priority: bool| -> (f64, f64) {
        let mut m = Machine::study_machine(20);
        let q = m.spawn("quake", Box::new(QuakeModel::new()));
        let worker = Box::new(FnWorkload::new("worker", |_| Action::Compute { us: 1_000 }));
        let w = if equal_priority {
            m.spawn("worker", worker)
        } else {
            m.spawn_with_priority("worker", worker, Priority::Low)
        };
        m.run_until(20 * SEC);
        let fps = FrameStats::from_latencies(&m.thread_stats(q).latencies_of("frame"))
            .map(|f| f.fps)
            .unwrap_or(0.0);
        let harvested = m.thread_stats(w).cpu_us as f64 / m.now() as f64;
        (fps, harvested)
    };
    print_once("Ablation: worker priority vs Quake frame rate", || {
        let (fps_eq, h_eq) = run(true);
        let (fps_low, h_low) = run(false);
        format!(
            "priority  quake_fps  harvest_share\n             equal     {fps_eq:>8.1} {h_eq:>13.2}\n             low       {fps_low:>8.1} {h_low:>13.2}\n"
        )
    });
    let mut group = c.benchmark_group("ablation/priority");
    group.sample_size(10);
    group.bench_function("quake_vs_low_worker_20simsec", |b| {
        b.iter(|| black_box(run(false)))
    });
    group.finish();
}

fn eviction_ablation(c: &mut Criterion) {
    use uucs_comfort::{
        execute_perception_run_configured, Fidelity, PerceptionProfile, RunSetup, RunStyle,
    };
    use uucs_sim::mem::EvictionPolicy;
    use uucs_testcase::{ExerciseSpec, Resource, Testcase};
    let pop = UserPopulation::generate(1, 62);
    let tc = Testcase::single(
        "abl-mem-ramp",
        1.0,
        Resource::Memory,
        ExerciseSpec::Ramp {
            level: 1.0,
            duration: 120.0,
        },
    );
    let profile = PerceptionProfile {
        tolerance_ratio: 1.8,
        latency_floor_us: 100_000.0,
        jitter_ratio: 3.0,
        patience_secs: 3,
    };
    let run = |policy: EvictionPolicy, task: uucs_workloads::Task| {
        execute_perception_run_configured(
            &RunSetup {
                user: &pop.users()[0],
                task,
                testcase: &tc,
                style: RunStyle::Ramp,
                seed: 3,
                fidelity: Fidelity::Full,
                client_id: "abl".into(),
            },
            &profile,
            MachineConfig {
                eviction: policy,
                ..MachineConfig::default()
            },
        )
    };
    print_once(
        "Ablation: eviction policy vs perceived memory ramp (paper Fig 14 memory column)",
        || {
            let mut out =
                String::from("policy         task    perceived at (s)  faults
");
            for policy in [EvictionPolicy::RegionRecency, EvictionPolicy::SecondChance] {
                for task in [
                    uucs_workloads::Task::Quake,
                    uucs_workloads::Task::Ie,
                    uucs_workloads::Task::Word,
                ] {
                    let rec = run(policy, task);
                    out.push_str(&format!(
                        "{:<14} {:<7} {:>15.0} {:>8}
",
                        format!("{policy:?}"),
                        task.name(),
                        rec.offset_secs,
                        rec.monitor.faults
                    ));
                }
            }
            out.push_str(
                "(second chance restores the paper's ordering: Quake < IE < Word)
",
            );
            out
        },
    );
    let mut group = c.benchmark_group("ablation/eviction");
    group.sample_size(10);
    group.bench_function("second_chance_quake_mem_ramp", |b| {
        b.iter(|| {
            black_box(run(EvictionPolicy::SecondChance, uucs_workloads::Task::Quake).offset_secs)
        })
    });
    group.finish();
}

bench_group!(
    benches,
    fidelity_ablation,
    fault_chunk_ablation,
    quantum_ablation,
    calibration_ablation,
    harvest_strategy_ablation,
    perception_validation,
    priority_ablation,
    eviction_ablation
);
bench_main!(benches);
