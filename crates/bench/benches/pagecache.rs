//! Storage-engine benchmarks: what the ARC page cache buys a journal
//! replay (cold backend reads vs warm in-memory pages), and what the
//! disk scheduler's deferred rotation sync takes off the append path
//! when segments roll under load.

use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use uucs_harness::{bench_group, bench_main, Criterion, TempDir, Throughput};
use uucs_pagecache::{CachedIo, DiskScheduler, OpKind};
use uucs_protocol::{MonitorSummary, RunOutcome, RunRecord, WalEntry};
use uucs_wal::{StdIo, SyncPolicy, Wal, WalConfig};

/// A realistic journal payload: one encoded result record, ~200 bytes.
fn payload(i: usize) -> Vec<u8> {
    WalEntry::Result(RunRecord {
        client: "client-0001".into(),
        user: format!("u{i:03}"),
        testcase: "cpu-ramp-7-120".into(),
        task: "Word".into(),
        skill: "Typical".into(),
        outcome: RunOutcome::Discomfort,
        offset_secs: 60.0 + i as f64,
        last_levels: vec![(uucs_testcase::Resource::Cpu, vec![1.0, 1.25, 1.5])],
        monitor: MonitorSummary::default(),
    })
    .encode()
}

/// Cold vs warm recovery replay over a many-segment journal. Small
/// segments make the backend-read count dominate — exactly the shape
/// where replaying a crashed shard's log, resharding, or backfilling a
/// follower pays per-file syscalls uncached and memcpys warm.
fn replay(c: &mut Criterion) {
    const RECORDS: usize = 2000;
    let cfg = WalConfig {
        segment_bytes: 1024,
        sync: SyncPolicy::Never,
    };
    let tmp = TempDir::new("uucs-bench-pagecache-replay");
    {
        let (mut wal, _) = Wal::open(StdIo::new(), tmp.path(), cfg).unwrap();
        for i in 0..RECORDS {
            wal.append(&payload(i)).unwrap();
        }
        wal.sync().unwrap();
    }

    let mut group = c.benchmark_group("pagecache/replay");
    group.sample_size(10);
    group.throughput(Throughput::Elements(RECORDS as u64));
    // The seed engine's shape: every iteration re-reads each segment
    // file from the filesystem.
    group.bench_function("cold_uncached", |b| {
        b.iter(|| {
            let io = CachedIo::passthrough(StdIo::new());
            let (wal, recovery) = Wal::open(io, tmp.path(), cfg).unwrap();
            let mut bytes = 0usize;
            for item in wal.replay() {
                bytes += item.unwrap().1.len();
            }
            black_box((recovery.records, bytes))
        })
    });
    // One shared cache across iterations: the first replay populated
    // it, so every segment read is assembled from resident pages.
    group.bench_function("warm_cached", |b| {
        let io = CachedIo::new(StdIo::new(), 4096, 4096);
        {
            let (wal, _) = Wal::open(io.clone(), tmp.path(), cfg).unwrap();
            for item in wal.replay() {
                item.unwrap();
            }
        }
        b.iter(|| {
            let (wal, recovery) = Wal::open(io.clone(), tmp.path(), cfg).unwrap();
            let mut bytes = 0usize;
            for item in wal.replay() {
                bytes += item.unwrap().1.len();
            }
            black_box((recovery.records, bytes))
        })
    });
    group.finish();
}

/// Spawns the bench's stand-in for the group committer: a pacer thread
/// that submits one `sync` pass to the disk scheduler per interval and
/// waits it out — the same fsync cadence either way, so the only
/// difference between the variants below is *where* rotation fsyncs
/// run.
fn start_committer(
    wal: Arc<Mutex<Wal<StdIo>>>,
    sched: Arc<DiskScheduler>,
    stop: Arc<AtomicBool>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        while !stop.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_micros(200));
            let wal = wal.clone();
            let ticket = sched.submit(OpKind::Fsync, move || {
                let mut wal = wal.lock().unwrap();
                wal.sync().map(|()| 0)
            });
            let _ = ticket.wait();
        }
    })
}

/// Per-append cost on the handler thread while 1 KiB segments roll
/// constantly, with a committer pass fsyncing every 200µs in both
/// variants. Inline, the appends that rotate pay the closing segment's
/// fsync themselves; deferred, they pay create+header and the fsync
/// rides the committer's scheduled pass — the tail (and the amortized
/// median) of the append path is what the scheduler buys.
fn rotation_under_load(c: &mut Criterion) {
    let cfg = WalConfig {
        segment_bytes: 1024,
        sync: SyncPolicy::Never,
    };
    let mut group = c.benchmark_group("pagecache/rotation_under_load");
    group.sample_size(10);
    for (name, defer) in [("inline_sync", false), ("deferred_sched", true)] {
        group.bench_function(name, |b| {
            let tmp = TempDir::new("uucs-bench-pagecache-rot");
            let (mut wal, _) = Wal::open(StdIo::new(), tmp.path(), cfg).unwrap();
            wal.set_deferred_rotation_sync(defer);
            let wal = Arc::new(Mutex::new(wal));
            let sched = Arc::new(DiskScheduler::new(1, 64));
            let stop = Arc::new(AtomicBool::new(false));
            let committer = start_committer(wal.clone(), sched.clone(), stop.clone());
            let entry = payload(0);
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                black_box(wal.lock().unwrap().append(&entry).unwrap())
            });
            stop.store(true, Ordering::Relaxed);
            committer.join().unwrap();
        });
    }
    group.finish();
}

bench_group!(benches, replay, rotation_under_load);
bench_main!(benches);
