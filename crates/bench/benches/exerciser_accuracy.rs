//! The §2.2 exerciser verification experiments: "This exerciser is
//! experimentally verified to a contention level of 10 for equal
//! priority threads" (CPU) and "to a contention level of 7" (disk).
//!
//! Prints the commanded-vs-achieved tables and times single verification
//! points.

use uucs_harness::{bench_group, bench_main, Criterion};
use std::hint::black_box;
use uucs_bench::print_once;
use uucs_exercisers::verify::{render_table, verify_cpu, verify_disk};

fn cpu_verification(c: &mut Criterion) {
    print_once("CPU exerciser verification (to level 10)", || {
        let rows = verify_cpu(&[0.5, 1.0, 1.5, 2.0, 3.0, 5.0, 7.0, 10.0], 30, 1);
        render_table("commanded vs achieved (busy probe)", &rows)
    });
    let mut group = c.benchmark_group("verify_cpu");
    group.sample_size(10);
    group.bench_function("level_2_for_10s", |b| {
        b.iter(|| black_box(verify_cpu(&[2.0], 10, 2)[0].achieved))
    });
    group.finish();
}

fn disk_verification(c: &mut Criterion) {
    print_once("Disk exerciser verification (to level 7)", || {
        let rows = verify_disk(&[0.5, 1.0, 2.0, 3.0, 5.0, 7.0], 120, 3);
        render_table("commanded vs achieved (I/O probe)", &rows)
    });
    let mut group = c.benchmark_group("verify_disk");
    group.sample_size(10);
    group.bench_function("level_3_for_60s", |b| {
        b.iter(|| black_box(verify_disk(&[3.0], 60, 4)[0].achieved))
    });
    group.finish();
}

bench_group!(benches, cpu_verification, disk_verification);
bench_main!(benches);
