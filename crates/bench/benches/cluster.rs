//! Replicated-tier benchmarks: what WAL shipping costs the leader's
//! upload path, as a function of the ack mode.
//!
//! Three points on the same workload (concurrent sequenced uploads
//! through the full engine):
//!
//! * `unreplicated` — the plain engine, no replication sink installed.
//! * `repl_local` — `--repl-ack=local`: the leader appends to its
//!   replication log and fans out to the follower, but acks as soon as
//!   its own store accepted the batch.
//! * `repl_quorum` — `--repl-ack=quorum`: every ack additionally waits
//!   for the follower to apply and commit the entry over TCP.
//!
//! The spread between the first two is the shipping overhead (log
//! append + channel fan-out); between the last two, the round trip a
//! quorum ack buys its durability with.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;
use uucs_cluster::{AckMode, ClusterConfig, ClusterNode, Role};
use uucs_harness::bench::quick_mode;
use uucs_harness::{bench_group, bench_main, Criterion, TempDir, Throughput};
use uucs_protocol::wire::Endpoint;
use uucs_protocol::{
    ClientMsg, MachineSnapshot, MonitorSummary, RunOutcome, RunRecord, ServerMsg,
};
use uucs_server::{StoreSet, UucsServer};

fn record(client: &str, i: usize) -> RunRecord {
    RunRecord {
        client: client.into(),
        user: format!("u{i:03}"),
        testcase: "cpu-ramp-7-120".into(),
        task: "Word".into(),
        skill: "Typical".into(),
        outcome: RunOutcome::Discomfort,
        offset_secs: 60.0,
        last_levels: vec![(uucs_testcase::Resource::Cpu, vec![1.0, 1.25, 1.5])],
        monitor: MonitorSummary::default(),
    }
}

fn plain_server() -> Arc<UucsServer> {
    Arc::new(UucsServer::with_store_set(StoreSet::plain(4), 9).without_model_updates())
}

fn register(server: &UucsServer, host: &str) -> String {
    match server.handle(&ClientMsg::register(MachineSnapshot::study_machine(host))) {
        ServerMsg::Id { id, .. } => id,
        other => panic!("registration failed: {other:?}"),
    }
}

/// A live two-node tier in scratch space: leader under `ack`, follower
/// connected and applying. Returned handles keep both alive.
struct Tier {
    leader: Arc<ClusterNode>,
    follower: Arc<ClusterNode>,
    server: Arc<UucsServer>,
    _tmp: TempDir,
}

impl Tier {
    fn start(ack: AckMode) -> Tier {
        let tmp = TempDir::new("uucs-bench-cluster");
        let mk = |name: &str, peers: Vec<String>, ack: AckMode| {
            let mut cfg =
                ClusterConfig::new(name, tmp.path().join("epochs"), tmp.path().join(name));
            cfg.peers = peers;
            cfg.ack = ack;
            cfg.gossip_interval = Duration::from_millis(100);
            cfg
        };
        let server = plain_server();
        let leader = ClusterNode::start(
            mk("bench-a", Vec::new(), ack),
            Arc::clone(&server),
            "127.0.0.1:0",
            Role::Leader,
        )
        .expect("leader");
        let follower_srv = plain_server();
        let follower = ClusterNode::start(
            mk("bench-b", vec![leader.repl_addr().to_string()], AckMode::Local),
            follower_srv,
            "127.0.0.1:0",
            Role::Follower,
        )
        .expect("follower");
        while leader.hub().follower_nodes().is_empty() {
            std::thread::sleep(Duration::from_millis(5));
        }
        Tier {
            leader,
            follower,
            server,
            _tmp: tmp,
        }
    }
}

impl Drop for Tier {
    fn drop(&mut self) {
        self.follower.shutdown();
        self.leader.shutdown();
    }
}

/// Concurrent acked uploads/sec on the leader, unreplicated vs shipped
/// vs quorum-acked.
fn replication(c: &mut Criterion) {
    let threads = if quick_mode() { 4 } else { 8 };
    let uploads_each = 4usize;
    let mut group = c.benchmark_group("cluster/replication");
    group.sample_size(10);
    group.throughput(Throughput::Elements((threads * uploads_each) as u64));

    let run_rounds = |server: &Arc<UucsServer>, ids: &[String], round: u64| {
        std::thread::scope(|s| {
            for id in ids {
                let server = Arc::clone(server);
                s.spawn(move || {
                    for u in 0..uploads_each {
                        let msg = ClientMsg::Upload {
                            client: id.clone(),
                            seq: round * uploads_each as u64 + u as u64 + 1,
                            records: vec![record(id, u)],
                        };
                        match server.handle(&msg) {
                            ServerMsg::Ack(_) => {}
                            other => panic!("upload not acked: {other:?}"),
                        }
                    }
                });
            }
        });
    };

    group.bench_function(format!("{threads}x{uploads_each}_unreplicated"), |b| {
        let server = plain_server();
        let ids: Vec<String> = (0..threads)
            .map(|t| register(&server, &format!("bench-{t}")))
            .collect();
        let mut round = 0u64;
        b.iter(|| {
            run_rounds(&server, &ids, round);
            round += 1;
            black_box(server.result_count())
        })
    });

    for (name, ack) in [("repl_local", AckMode::Local), ("repl_quorum", AckMode::Quorum)] {
        group.bench_function(format!("{threads}x{uploads_each}_{name}"), |b| {
            let tier = Tier::start(ack);
            let ids: Vec<String> = (0..threads)
                .map(|t| register(&tier.server, &format!("bench-{t}")))
                .collect();
            let mut round = 0u64;
            b.iter(|| {
                run_rounds(&tier.server, &ids, round);
                round += 1;
                black_box(tier.server.result_count())
            })
        });
    }
    group.finish();
}

bench_group!(benches, replication);
bench_main!(benches);
