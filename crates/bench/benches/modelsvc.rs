//! Model-service benchmarks: quantile-sketch insert/merge/query
//! throughput, and what the comfort-model update costs the server's
//! `UPLOAD` path (model updates on versus off).

use std::hint::black_box;
use std::sync::Arc;
use uucs_client::{ClientTransport, LocalTransport};
use uucs_comfort::calibration;
use uucs_harness::{bench_group, bench_main, Criterion, Throughput};
use uucs_modelsvc::{ComfortModel, Observation, QuantileSketch};
use uucs_protocol::{ClientMsg, MonitorSummary, RunOutcome, RunRecord, ServerMsg};
use uucs_server::{TestcaseStore, UucsServer};
use uucs_stats::Pcg64;
use uucs_testcase::Resource;
use uucs_workloads::Task;

/// A deterministic stream of contention levels over the CPU axis.
fn levels(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = Pcg64::new(seed);
    (0..n).map(|_| rng.uniform(0.0, 10.0)).collect()
}

/// Inserts per second into one sketch.
fn sketch_insert(c: &mut Criterion) {
    let values = levels(4096, 11);
    let mut group = c.benchmark_group("modelsvc/sketch");
    group.throughput(Throughput::Elements(values.len() as u64));
    group.bench_function("insert_4096", |b| {
        b.iter(|| {
            let mut sketch = QuantileSketch::for_resource(Resource::Cpu);
            for &v in &values {
                sketch.insert(v);
            }
            black_box(sketch.observed())
        })
    });
    group.finish();
}

/// Pairwise merges per second (the server does one per cohort per
/// `MODEL` query that misses the cache).
fn sketch_merge(c: &mut Criterion) {
    let mut sketches = Vec::new();
    for i in 0..64u64 {
        let mut s = QuantileSketch::for_resource(Resource::Cpu);
        for v in levels(64, i) {
            s.insert(v);
        }
        sketches.push(s);
    }
    let mut group = c.benchmark_group("modelsvc/sketch");
    group.throughput(Throughput::Elements(sketches.len() as u64));
    group.bench_function("merge_64_sketches", |b| {
        b.iter(|| {
            let mut acc = QuantileSketch::for_resource(Resource::Cpu);
            for s in &sketches {
                acc.merge(s).unwrap();
            }
            black_box(acc.total())
        })
    });
    group.finish();
}

/// Quantile queries per second against a populated sketch, plus the
/// encode/decode round-trip cost of a `MODEL` reply body.
fn sketch_query(c: &mut Criterion) {
    let mut sketch = QuantileSketch::for_resource(Resource::Cpu);
    for v in levels(4096, 17) {
        sketch.insert(v);
    }
    let ps: Vec<f64> = (1..100).map(|i| i as f64 / 100.0).collect();
    let mut group = c.benchmark_group("modelsvc/sketch");
    group.throughput(Throughput::Elements(ps.len() as u64));
    group.bench_function("quantile_99_points", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &p in &ps {
                acc += sketch.quantile(p).unwrap_or(0.0);
            }
            black_box(acc)
        })
    });
    group.throughput(Throughput::Elements(1));
    group.bench_function("encode_decode_roundtrip", |b| {
        b.iter(|| {
            let text = sketch.encode();
            black_box(QuantileSketch::decode(&text).unwrap())
        })
    });
    group.finish();
}

/// Model-delta application throughput: what one upload batch costs the
/// cohort model (journal encoding excluded — that's the WAL bench).
fn model_apply(c: &mut Criterion) {
    let observations: Vec<Observation> = levels(256, 23)
        .into_iter()
        .enumerate()
        .map(|(i, level)| Observation {
            resource: Resource::Cpu,
            task: "Word".into(),
            skill: ["Beginner", "Typical", "Power"][i % 3].into(),
            level,
            censored: i % 7 == 0,
        })
        .collect();
    let mut group = c.benchmark_group("modelsvc/model");
    group.throughput(Throughput::Elements(observations.len() as u64));
    group.bench_function("apply_delta_256_obs", |b| {
        b.iter(|| {
            let mut model = ComfortModel::new();
            let delta = model.next_delta(observations.clone());
            model.apply(&delta).unwrap();
            black_box(model.epoch())
        })
    });
    group.finish();
}

/// One upload record with a CPU feedback level.
fn record(i: usize) -> RunRecord {
    RunRecord {
        client: "client-0001".into(),
        user: format!("u{i:03}"),
        testcase: "word-cpu-ramp".into(),
        task: "Word".into(),
        skill: "Typical".into(),
        outcome: RunOutcome::Discomfort,
        offset_secs: 60.0,
        last_levels: vec![(Resource::Cpu, vec![1.0, 2.0, 2.0 + (i % 8) as f64])],
        monitor: MonitorSummary::default(),
    }
}

/// The `UPLOAD` path end to end through a local transport, with the
/// model service folding observations versus disabled — the marginal
/// cost of comfort-model aggregation per acknowledged batch.
fn upload_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("modelsvc/upload");
    group.sample_size(10);
    group.throughput(Throughput::Elements(16));
    for (name, with_models) in [("model_updates_on", true), ("model_updates_off", false)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut server = UucsServer::new(
                    TestcaseStore::from_testcases(calibration::controlled_testcases(Task::Word))
                        .unwrap(),
                    7,
                );
                if !with_models {
                    server = server.without_model_updates();
                }
                let mut transport = LocalTransport::new(Arc::new(server));
                let ServerMsg::Id { id, .. } = transport
                    .exchange(&ClientMsg::register(
                        uucs_protocol::MachineSnapshot::study_machine("bench"),
                    ))
                    .unwrap()
                else {
                    panic!("registration failed")
                };
                let mut acked = 0;
                for seq in 1..=16u64 {
                    let records: Vec<RunRecord> = (0..16)
                        .map(|i| {
                            let mut r = record(i);
                            r.client = id.clone();
                            r.user = format!("u{seq}-{i}");
                            r
                        })
                        .collect();
                    let reply = transport
                        .exchange(&ClientMsg::Upload {
                            client: id.clone(),
                            seq,
                            records,
                        })
                        .unwrap();
                    if let ServerMsg::Ack(n) = reply {
                        acked += n;
                    }
                }
                black_box(acked)
            })
        });
    }
    group.finish();
}

bench_group!(
    benches,
    sketch_insert,
    sketch_merge,
    sketch_query,
    model_apply,
    upload_path
);
bench_main!(benches);
