//! Write-ahead-log benchmarks: append throughput under each sync
//! policy, and recovery (open + full replay) speed. These quantify the
//! durability tax the `--wal` server mode pays per acknowledged upload,
//! and how fast a crashed server comes back.

use std::hint::black_box;
use uucs_harness::{bench_group, bench_main, Criterion, TempDir, Throughput};
use uucs_protocol::{MonitorSummary, RunOutcome, RunRecord, WalEntry};
use uucs_wal::{StdIo, SyncPolicy, Wal, WalConfig, WalReader};

/// A realistic journal payload: one encoded result record, ~200 bytes.
fn payload(i: usize) -> Vec<u8> {
    WalEntry::Result(RunRecord {
        client: "client-0001".into(),
        user: format!("u{i:03}"),
        testcase: "cpu-ramp-7-120".into(),
        task: "Word".into(),
        skill: "Typical".into(),
        outcome: RunOutcome::Discomfort,
        offset_secs: 60.0 + i as f64,
        last_levels: vec![(uucs_testcase::Resource::Cpu, vec![1.0, 1.25, 1.5])],
        monitor: MonitorSummary::default(),
    })
    .encode()
}

fn config(sync: SyncPolicy) -> WalConfig {
    WalConfig {
        segment_bytes: 256 * 1024,
        sync,
    }
}

/// Appends per second under each sync policy. `Always` pays one fsync
/// per record (what an acknowledged upload costs the `--wal` server);
/// `EveryN` amortizes it; `Never` is the framing + buffered-write floor.
fn append(c: &mut Criterion) {
    let batch: Vec<Vec<u8>> = (0..64).map(payload).collect();
    let mut group = c.benchmark_group("wal/append");
    group.sample_size(10);
    group.throughput(Throughput::Elements(batch.len() as u64));
    for (name, sync) in [
        ("always", SyncPolicy::Always),
        ("every_8", SyncPolicy::EveryN(8)),
        ("never", SyncPolicy::Never),
    ] {
        group.bench_function(format!("64_records_{name}"), |b| {
            let tmp = TempDir::new("uucs-bench-wal-append");
            let (mut wal, _) = Wal::open(StdIo::new(), tmp.path(), config(sync)).unwrap();
            b.iter(|| {
                let mut last = 0;
                for p in &batch {
                    last = wal.append(p).unwrap();
                }
                black_box(last)
            })
        });
    }
    group.finish();
}

/// Recovery speed: open a journal of 1000 records (a checkpoint under
/// half of them) and replay everything past the checkpoint, the way the
/// server does on startup — plus the read-only analysis-side scan.
fn replay(c: &mut Criterion) {
    let tmp = TempDir::new("uucs-bench-wal-replay");
    let cfg = config(SyncPolicy::Never);
    {
        let (mut wal, _) = Wal::open(StdIo::new(), tmp.path(), cfg).unwrap();
        for i in 0..500 {
            wal.append(&payload(i)).unwrap();
        }
        wal.snapshot(b"checkpoint-state").unwrap();
        for i in 500..1000 {
            wal.append(&payload(i)).unwrap();
        }
        wal.sync().unwrap();
    }
    let mut group = c.benchmark_group("wal/recover");
    group.sample_size(10);
    group.throughput(Throughput::Elements(500));
    group.bench_function("open_and_replay_500_of_1000", |b| {
        b.iter(|| {
            let (wal, recovery) = Wal::open(StdIo::new(), tmp.path(), cfg).unwrap();
            let mut bytes = 0usize;
            for item in wal.replay() {
                bytes += item.unwrap().1.len();
            }
            black_box((recovery.records, bytes))
        })
    });
    group.bench_function("readonly_scan_500_of_1000", |b| {
        b.iter(|| {
            let reader = WalReader::open(StdIo::new(), tmp.path()).unwrap();
            let mut bytes = 0usize;
            for item in reader.records() {
                bytes += item.unwrap().1.len();
            }
            black_box((reader.record_count(), bytes))
        })
    });
    group.finish();
}

bench_group!(benches, append, replay);
bench_main!(benches);
