//! Telemetry hot-path overhead: what a counter bump, a histogram
//! record, and a span cost on the paths the fleet instruments — and
//! what they cost when telemetry is disabled. The disabled path is the
//! contract that matters: it must collapse to one relaxed atomic load
//! and a branch (single-digit nanoseconds), so shipping instrumented
//! binaries costs nothing when nobody is looking.
//!
//! Pre-registered handles (what the server/client hot paths actually
//! hold, via `OnceLock`) are benchmarked separately from by-name
//! lookups, which pay a registry read-lock + map probe per call.

use std::hint::black_box;
use uucs_harness::{bench_group, bench_main, Criterion, Throughput};
use uucs_telemetry::{metrics, trace};

/// Counter and gauge updates through pre-registered handles.
fn handles(c: &mut Criterion) {
    let counter = metrics::counter("bench.telemetry.counter");
    let gauge = metrics::gauge("bench.telemetry.gauge");
    let hist = metrics::histogram("bench.telemetry.hist");
    let mut group = c.benchmark_group("telemetry/handle");
    group.throughput(Throughput::Elements(1));
    group.bench_function("counter_inc", |b| b.iter(|| counter.inc()));
    group.bench_function("gauge_set", |b| {
        let mut v = 0i64;
        b.iter(|| {
            v = v.wrapping_add(1);
            gauge.set(black_box(v))
        })
    });
    group.bench_function("histogram_record", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(997);
            hist.record(black_box(v))
        })
    });
    group.bench_function("histogram_timer", |b| {
        b.iter(|| drop(hist.start_timer()))
    });
    group.finish();
}

/// By-name lookups: registry read-lock + BTreeMap probe, then the
/// update. This is the cold-path cost a cold caller pays.
fn lookups(c: &mut Criterion) {
    metrics::counter("bench.telemetry.lookup").inc();
    let mut group = c.benchmark_group("telemetry/lookup");
    group.throughput(Throughput::Elements(1));
    group.bench_function("counter_by_name", |b| {
        b.iter(|| metrics::counter(black_box("bench.telemetry.lookup")).inc())
    });
    group.bench_function("span_by_name", |b| {
        b.iter(|| drop(trace::span(black_box("bench.telemetry.span"))))
    });
    group.finish();
}

/// The disabled path: one relaxed load + branch. This is what every
/// instrumented hot path costs when `UUCS_TELEMETRY=0`.
fn disabled(c: &mut Criterion) {
    let counter = metrics::counter("bench.telemetry.disabled.counter");
    let hist = metrics::histogram("bench.telemetry.disabled.hist");
    metrics::set_enabled(false);
    let mut group = c.benchmark_group("telemetry/disabled");
    group.throughput(Throughput::Elements(1));
    group.bench_function("counter_inc", |b| b.iter(|| counter.inc()));
    group.bench_function("histogram_record", |b| {
        b.iter(|| hist.record(black_box(42)))
    });
    group.bench_function("span", |b| {
        b.iter(|| drop(trace::span(black_box("bench.telemetry.disabled.span"))))
    });
    group.bench_function("event", |b| {
        b.iter(|| trace::event(black_box("bench.telemetry.disabled.event"), &[]))
    });
    group.finish();
    metrics::set_enabled(true);
}

/// What a whole instrumented exchange adds: the server's verb wrapper
/// pattern (count + timer around a no-op body).
fn verb_wrapper(c: &mut Criterion) {
    let count = metrics::counter("bench.telemetry.verb.count");
    let ns = metrics::histogram("bench.telemetry.verb.ns");
    let mut group = c.benchmark_group("telemetry/verb_wrapper");
    group.throughput(Throughput::Elements(1));
    group.bench_function("count_plus_timer", |b| {
        b.iter(|| {
            count.inc();
            let t = ns.start_timer();
            black_box(17u64);
            drop(t);
        })
    });
    group.finish();
}

bench_group!(benches, handles, lookups, disabled, verb_wrapper);
bench_main!(benches);
