//! Server-engine benchmarks: what the sharded group-commit worker-pool
//! engine buys over the original design.
//!
//! Two comparisons, each old-vs-new on identical work:
//!
//! * `engine/fsync` — durable upload throughput with per-append fsync
//!   (`SyncPolicy::Always`, the original `--wal` ack path) versus group
//!   commit (appends run unsynced, a commit thread batches all pending
//!   appends into one fsync per shard, acks wait on the watermark).
//!   Same durability guarantee, amortized cost.
//! * `engine/tcp` — pipelined upload rounds over live TCP connections
//!   against the thread-per-connection engine versus the worker pool.

use std::hint::black_box;
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;
use uucs_harness::bench::quick_mode;
use uucs_harness::{bench_group, bench_main, Criterion, TempDir, Throughput};
use uucs_protocol::wire::{read_server_msg, write_client_msg, Endpoint};
use uucs_protocol::{
    ClientMsg, MachineSnapshot, MonitorSummary, RunOutcome, RunRecord, ServerMsg,
};
use uucs_server::tcp::{self, EngineMode, ServeConfig};
use uucs_server::{StoreSet, UucsServer};
use uucs_wal::{SyncPolicy, WalConfig};

fn record(client: &str, i: usize) -> RunRecord {
    RunRecord {
        client: client.into(),
        user: format!("u{i:03}"),
        testcase: "cpu-ramp-7-120".into(),
        task: "Word".into(),
        skill: "Typical".into(),
        outcome: RunOutcome::Discomfort,
        offset_secs: 60.0,
        last_levels: vec![(uucs_testcase::Resource::Cpu, vec![1.0, 1.25, 1.5])],
        monitor: MonitorSummary::default(),
    }
}

fn wal_server(dir: &std::path::Path, shards: usize, group_commit: bool) -> UucsServer {
    let wal = WalConfig {
        segment_bytes: 1024 * 1024,
        sync: if group_commit {
            SyncPolicy::Never
        } else {
            SyncPolicy::Always
        },
    };
    let (stores, _) = StoreSet::open(dir, wal, shards).expect("open sharded stores");
    let server = UucsServer::with_store_set(stores, 9).without_model_updates();
    if group_commit {
        server.with_group_commit(Duration::from_micros(200))
    } else {
        server
    }
}

fn register(server: &UucsServer, host: &str) -> String {
    match server.handle(&ClientMsg::register(MachineSnapshot::study_machine(host))) {
        ServerMsg::Id { id, .. } => id,
        other => panic!("registration failed: {other:?}"),
    }
}

/// Durable acked uploads/sec: per-append fsync vs one batched fsync per
/// group-commit pass. Eight submitter threads ack concurrently — the
/// group committer folds their appends into a shared fsync, the
/// per-append path pays one each.
fn fsync(c: &mut Criterion) {
    let threads = if quick_mode() { 8 } else { 32 };
    let uploads_each = 2usize;
    let mut group = c.benchmark_group("engine/fsync");
    group.sample_size(10);
    group.throughput(Throughput::Elements((threads * uploads_each) as u64));
    for (name, group_commit) in [("per_append", false), ("group_commit", true)] {
        group.bench_function(format!("{threads}x{uploads_each}_uploads_{name}"), |b| {
            let tmp = TempDir::new("uucs-bench-engine-fsync");
            let server = Arc::new(wal_server(tmp.path(), 4, group_commit));
            let ids: Vec<String> = (0..threads)
                .map(|t| register(&server, &format!("bench-{t}")))
                .collect();
            let mut round = 0u64;
            b.iter(|| {
                round += 1;
                std::thread::scope(|s| {
                    for id in &ids {
                        let server = &server;
                        s.spawn(move || {
                            for u in 0..uploads_each {
                                let msg = ClientMsg::Upload {
                                    client: id.clone(),
                                    seq: round * uploads_each as u64 + u as u64,
                                    records: vec![record(id, u)],
                                };
                                match server.handle(&msg) {
                                    ServerMsg::Ack(_) => {}
                                    other => panic!("upload not acked: {other:?}"),
                                }
                            }
                        });
                    }
                });
                black_box(server.result_count())
            })
        });
    }
    group.finish();
}

struct BenchConn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    id: String,
    seq: u64,
}

/// One pipelined upload round over live TCP: thread-per-connection vs
/// the worker pool, same in-memory server state behind both.
fn tcp_round(c: &mut Criterion) {
    let conns = if quick_mode() { 8 } else { 48 };
    let mut group = c.benchmark_group("engine/tcp");
    group.sample_size(10);
    group.throughput(Throughput::Elements(conns as u64));
    for (name, engine) in [
        ("thread_per_conn", EngineMode::ThreadPerConn),
        ("worker_pool", EngineMode::WorkerPool),
    ] {
        group.bench_function(format!("{conns}_conn_upload_round_{name}"), |b| {
            let server = Arc::new(UucsServer::with_store_set(StoreSet::plain(4), 9));
            let handle = tcp::serve_with(
                server,
                "127.0.0.1:0",
                ServeConfig {
                    engine,
                    max_connections: conns + 8,
                    ..ServeConfig::default()
                },
            )
            .expect("serve");
            let mut fleet: Vec<BenchConn> = (0..conns)
                .map(|i| {
                    let stream = TcpStream::connect(handle.addr()).unwrap();
                    stream.set_nodelay(true).unwrap();
                    let writer = stream.try_clone().unwrap();
                    let mut conn = BenchConn {
                        writer,
                        reader: BufReader::new(stream),
                        id: String::new(),
                        seq: 0,
                    };
                    write_client_msg(
                        &mut conn.writer,
                        &ClientMsg::register(MachineSnapshot::study_machine(format!("b{i}"))),
                    )
                    .unwrap();
                    match read_server_msg(&mut conn.reader).unwrap() {
                        ServerMsg::Id { id, .. } => conn.id = id,
                        other => panic!("{other:?}"),
                    }
                    conn
                })
                .collect();
            b.iter(|| {
                // Write an upload on every connection, then drain every
                // ack — the whole fleet is in flight at once.
                for conn in fleet.iter_mut() {
                    conn.seq += 1;
                    write_client_msg(
                        &mut conn.writer,
                        &ClientMsg::Upload {
                            client: conn.id.clone(),
                            seq: conn.seq,
                            records: vec![record(&conn.id, 0)],
                        },
                    )
                    .unwrap();
                }
                let mut acked = 0u32;
                for conn in fleet.iter_mut() {
                    if matches!(read_server_msg(&mut conn.reader).unwrap(), ServerMsg::Ack(_)) {
                        acked += 1;
                    }
                }
                assert_eq!(acked as usize, conns);
                black_box(acked)
            });
            drop(fleet);
            handle.shutdown();
        });
    }
    group.finish();
}

bench_group!(benches, fsync, tcp_round);
bench_main!(benches);
