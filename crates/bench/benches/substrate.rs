//! Micro-benchmarks of the substrates: the machine simulator's scheduler
//! and memory manager, the statistics kernels, and the wire protocol.

use uucs_harness::{bench_group, bench_main, Criterion, Throughput};
use std::hint::black_box;
use uucs_sim::workload::FnWorkload;
use uucs_sim::{Action, Machine, TouchPattern, SEC};
use uucs_stats::{Ecdf, Pcg64};

/// Scheduler throughput: simulated seconds per wall second with 8
/// competing busy threads.
fn scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/scheduler");
    group.throughput(Throughput::Elements(10));
    group.bench_function("10_simsec_8_busy_threads", |b| {
        b.iter(|| {
            let mut m = Machine::study_machine(1);
            for i in 0..8 {
                m.spawn(
                    format!("busy{i}"),
                    Box::new(FnWorkload::new("busy", |_| Action::Compute { us: 1000 })),
                );
            }
            m.run_until(10 * SEC);
            black_box(m.metrics().context_switches)
        })
    });
    group.finish();
}

/// Memory-manager throughput: the exerciser's hot path (full-pool prefix
/// touches).
fn memory_touch(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/memory");
    group.throughput(Throughput::Elements(131_072));
    group.bench_function("prefix_touch_131072_pages_hit", |b| {
        let mut mm = uucs_sim::mem::MemoryManager::new(131_072);
        let r = mm.alloc(0, 131_072, false);
        let mut rng = Pcg64::new(2);
        mm.touch(r, 131_072, TouchPattern::Prefix, 0, &mut rng);
        let mut t = 1;
        b.iter(|| {
            t += 1;
            black_box(mm.touch(r, 131_072, TouchPattern::Prefix, t, &mut rng).hits)
        })
    });
    group.bench_function("eviction_churn", |b| {
        b.iter(|| {
            let mut mm = uucs_sim::mem::MemoryManager::new(10_000);
            let mut rng = Pcg64::new(3);
            let a = mm.alloc(0, 8_000, false);
            let bb = mm.alloc(1, 8_000, false);
            mm.touch(a, 8_000, TouchPattern::Prefix, 0, &mut rng);
            mm.touch(bb, 8_000, TouchPattern::Prefix, 1, &mut rng);
            black_box(mm.stats().evictions)
        })
    });
    group.finish();
}

/// Disk queue behavior under contention.
fn disk_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/disk");
    group.sample_size(20);
    group.bench_function("4_io_threads_30_simsec", |b| {
        b.iter(|| {
            let mut m = Machine::study_machine(4);
            for i in 0..4 {
                m.spawn(
                    format!("io{i}"),
                    Box::new(FnWorkload::new("io", |_| Action::DiskIo {
                        ops: 1,
                        bytes_per_op: 65_536,
                    })),
                );
            }
            m.run_until(30 * SEC);
            black_box(m.disk_stats().ops)
        })
    });
    group.finish();
}

/// A full-fidelity single run (machine + task model + exercisers).
fn full_fidelity_run(c: &mut Criterion) {
    use uucs_comfort::{execute_run, Fidelity, RunSetup, RunStyle, UserPopulation};
    use uucs_testcase::{ExerciseSpec, Resource, Testcase};
    let pop = UserPopulation::generate(1, 5);
    let tc = Testcase::single(
        "bench-cpu-ramp",
        1.0,
        Resource::Cpu,
        ExerciseSpec::Ramp {
            level: 2.0,
            duration: 120.0,
        },
    );
    let mut group = c.benchmark_group("run_engine");
    group.sample_size(10);
    group.bench_function("full_fidelity_ppt_cpu_ramp", |b| {
        b.iter(|| {
            let rec = execute_run(&RunSetup {
                user: &pop.users()[0],
                task: uucs_workloads::Task::Powerpoint,
                testcase: &tc,
                style: RunStyle::Ramp,
                seed: 6,
                fidelity: Fidelity::Full,
                client_id: "bench".into(),
            });
            black_box(rec.monitor.cpu_util)
        })
    });
    group.bench_function("fast_fidelity_ppt_cpu_ramp", |b| {
        b.iter(|| {
            let rec = execute_run(&RunSetup {
                user: &pop.users()[0],
                task: uucs_workloads::Task::Powerpoint,
                testcase: &tc,
                style: RunStyle::Ramp,
                seed: 6,
                fidelity: Fidelity::Fast,
                client_id: "bench".into(),
            });
            black_box(rec.offset_secs)
        })
    });
    group.finish();
}

/// Statistics kernels.
fn stats_kernels(c: &mut Criterion) {
    let mut rng = Pcg64::new(7);
    let sample: Vec<f64> = (0..10_000).map(|_| rng.lognormal(0.3, 0.8)).collect();
    let mut group = c.benchmark_group("stats");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("ecdf_build_10k", |b| {
        b.iter(|| black_box(Ecdf::new(sample.clone(), 100).total()))
    });
    group.bench_function("pcg64_10k_draws", |b| {
        let mut r = Pcg64::new(8);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..10_000 {
                acc ^= r.next_u64();
            }
            black_box(acc)
        })
    });
    let a: Vec<f64> = (0..200).map(|_| rng.normal(0.0, 1.0)).collect();
    let bb: Vec<f64> = (0..200).map(|_| rng.normal(0.2, 1.1)).collect();
    group.bench_function("welch_t_test_200v200", |b| {
        b.iter(|| black_box(uucs_stats::welch_t_test(&a, &bb).unwrap().p))
    });
    group.finish();
}

/// Wire-protocol encode/decode throughput.
fn protocol(c: &mut Criterion) {
    use uucs_protocol::{MonitorSummary, RunOutcome, RunRecord};
    let records: Vec<RunRecord> = (0..100)
        .map(|i| RunRecord {
            client: "client-0001".into(),
            user: format!("u{i:02}"),
            testcase: "quake-cpu-ramp".into(),
            task: "Quake".into(),
            skill: "Power".into(),
            outcome: RunOutcome::Discomfort,
            offset_secs: 63.0 + i as f64,
            last_levels: vec![(uucs_testcase::Resource::Cpu, vec![0.6, 0.62, 0.64, 0.66, 0.68])],
            monitor: MonitorSummary {
                cpu_util: 0.95,
                peak_mem_fraction: 0.7,
                disk_busy: 0.1,
                faults: 12,
                mean_latency_us: Some(22_222.0),
            },
        })
        .collect();
    let mut group = c.benchmark_group("protocol");
    group.throughput(Throughput::Elements(100));
    group.bench_function("emit_100_records", |b| {
        b.iter(|| black_box(RunRecord::emit_many(&records).len()))
    });
    let text = RunRecord::emit_many(&records);
    group.bench_function("parse_100_records", |b| {
        b.iter(|| black_box(RunRecord::parse_many(&text).unwrap().len()))
    });
    group.finish();
}

bench_group!(
    benches,
    scheduler,
    memory_touch,
    disk_queue,
    full_fidelity_run,
    stats_kernels,
    protocol
);
bench_main!(benches);
