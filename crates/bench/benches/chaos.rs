//! Resilience-tax benchmarks: end-to-end sync throughput through the
//! chaos proxy at increasing fault rates. The 0% row is the clean
//! baseline (proxy in the path, no faults); the 1% and 10% rows show
//! what retries, reconnects, and backoff cost when the network
//! misbehaves — the price of the fault-tolerant transport actually
//! doing its job.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;
use uucs_chaos::{ChaosPolicy, ChaosProxy, FaultKind};
use uucs_client::{ClientTransport, ResilientTransport, RetryPolicy};
use uucs_harness::{bench_group, bench_main, Criterion, Throughput};
use uucs_protocol::{ClientMsg, MachineSnapshot, MonitorSummary, RunOutcome, RunRecord, ServerMsg};
use uucs_server::{tcp, TestcaseStore, UucsServer};
use uucs_testcase::{ExerciseSpec, Resource, Testcase};

fn library() -> Vec<Testcase> {
    (0..8)
        .map(|i| {
            Testcase::single(
                format!("bench-tc-{i}"),
                1.0,
                Resource::Cpu,
                ExerciseSpec::Ramp {
                    level: 1.0 + i as f64 * 0.1,
                    duration: 60.0,
                },
            )
        })
        .collect()
}

fn record(i: usize) -> RunRecord {
    RunRecord {
        client: "client-0001".into(),
        user: format!("u{i:03}"),
        testcase: format!("bench-tc-{}", i % 8),
        task: "Word".into(),
        skill: "Typical".into(),
        outcome: RunOutcome::Discomfort,
        offset_secs: 30.0 + i as f64,
        last_levels: vec![(Resource::Cpu, vec![1.0, 1.25])],
        monitor: MonitorSummary::default(),
    }
}

/// One sync round: upload a batch of `n` records, expecting a full ack
/// (retrying the same sequence number until it lands).
fn upload_until_acked(
    transport: &mut ResilientTransport,
    client: &str,
    seq: u64,
    records: &[RunRecord],
) {
    loop {
        match transport.exchange(&ClientMsg::Upload {
            client: client.into(),
            seq,
            records: records.to_vec(),
        }) {
            Ok(ServerMsg::Ack(n)) if n == records.len() => return,
            _ => continue,
        }
    }
}

/// Sync throughput (records acknowledged per second) at 0%, 1% and 10%
/// injected-fault rates. Faults draw from the destructive menu (drops,
/// resets, truncations) so every hit costs a reconnect.
fn sync_throughput(c: &mut Criterion) {
    const BATCH: usize = 16;
    let records: Vec<RunRecord> = (0..BATCH).map(record).collect();
    let mut group = c.benchmark_group("chaos/sync_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(BATCH as u64));
    for (name, rate) in [("fault_0pct", 0.0), ("fault_1pct", 0.01), ("fault_10pct", 0.10)] {
        let server = Arc::new(UucsServer::new(
            TestcaseStore::from_testcases(library()).expect("unique ids"),
            7,
        ));
        let handle = tcp::serve(server.clone(), "127.0.0.1:0").expect("bind");
        let policy = ChaosPolicy {
            rate,
            faults: vec![FaultKind::Drop, FaultKind::Reset, FaultKind::Truncate],
            seed: 0xbe,
            delay: Duration::from_millis(1),
            ..ChaosPolicy::transparent()
        };
        let proxy = ChaosProxy::start(handle.addr(), policy).expect("proxy");
        let mut transport = ResilientTransport::new(proxy.addr().to_string())
            .with_timeout(Duration::from_millis(500))
            .with_policy(RetryPolicy {
                max_attempts: 8,
                base: Duration::from_micros(200),
                cap: Duration::from_millis(2),
                seed: 0xeb,
            });
        let id = match transport
            .exchange(&ClientMsg::register(MachineSnapshot::study_machine("bench")))
            .expect("register")
        {
            ServerMsg::Id { id, .. } => id,
            other => panic!("expected Id, got {other:?}"),
        };
        let mut seq = 0u64;
        group.bench_function(format!("{BATCH}_records_{name}"), |b| {
            b.iter(|| {
                seq += 1;
                upload_until_acked(&mut transport, &id, seq, &records);
                black_box(seq)
            })
        });
        transport.bye();
        proxy.shutdown();
        handle.shutdown();
    }
    group.finish();
}

bench_group!(benches, sync_throughput);
bench_main!(benches);
