//! One bench group per table/figure in the paper. Each group prints the
//! regenerated artifact once (so `cargo bench | tee bench_output.txt`
//! records the full reproduction) and times the regeneration.

use uucs_harness::{bench_group, bench_main, Criterion};
use std::hint::black_box;
use uucs_bench::{big_study_data, print_once, study_data};
use uucs_study::{figures, frog, report, skill};
use uucs_testcase::{ExerciseSpec, Resource};
use uucs_workloads::Task;

/// Figure 3: the exercise-function catalog — render every kind.
fn fig03_exercise_functions(c: &mut Criterion) {
    print_once("Figure 3: exercise function catalog", || {
        let specs: Vec<(&str, ExerciseSpec)> = vec![
            ("step(2.0,120,40)", ExerciseSpec::Step { level: 2.0, duration: 120.0, start: 40.0 }),
            ("ramp(2.0,120)", ExerciseSpec::Ramp { level: 2.0, duration: 120.0 }),
            ("sin", ExerciseSpec::Sin { amplitude: 1.0, offset: 1.0, period: 30.0, duration: 120.0 }),
            ("saw", ExerciseSpec::Saw { level: 2.0, period: 30.0, duration: 120.0 }),
            ("expexp (M/M/1)", ExerciseSpec::ExpExp { arrival_rate: 0.4, mean_job: 1.0, duration: 120.0, seed: 1 }),
            ("exppar (M/G/1)", ExerciseSpec::ExpPar { arrival_rate: 0.25, x_min: 0.5, alpha: 1.5, duration: 120.0, seed: 2 }),
        ];
        let mut out = String::new();
        for (name, spec) in &specs {
            let f = spec.sample(Resource::Cpu, 1.0);
            out.push_str(&format!(
                "{name:<18} n={} mean={:.2} peak={:.2}\n",
                f.values.len(),
                f.mean(),
                f.peak()
            ));
        }
        out
    });
    c.bench_function("fig03/sample_all_kinds", |b| {
        b.iter(|| {
            let f = ExerciseSpec::ExpExp {
                arrival_rate: 0.4,
                mean_job: 1.0,
                duration: 120.0,
                seed: 1,
            }
            .sample(Resource::Cpu, 1.0);
            black_box(f.values.len())
        })
    });
}

/// Figure 4: the step and ramp example series.
fn fig04_step_ramp(c: &mut Criterion) {
    print_once("Figure 4: step(2.0,120,40) and ramp(2.0,120)", || {
        let step = ExerciseSpec::Step { level: 2.0, duration: 120.0, start: 40.0 }
            .sample(Resource::Cpu, 1.0);
        let ramp = ExerciseSpec::Ramp { level: 2.0, duration: 120.0 }.sample(Resource::Cpu, 1.0);
        let mut out = String::from("t(s)  step  ramp\n");
        for t in (0..=120).step_by(20) {
            out.push_str(&format!(
                "{t:>4} {:>5.2} {:>5.2}\n",
                step.value_at(t as f64).unwrap_or(0.0),
                ramp.value_at(t as f64).unwrap_or(0.0)
            ));
        }
        out
    });
    c.bench_function("fig04/sample_step_and_ramp", |b| {
        b.iter(|| {
            let s = ExerciseSpec::Step { level: 2.0, duration: 120.0, start: 40.0 }
                .sample(Resource::Cpu, 1.0);
            let r = ExerciseSpec::Ramp { level: 2.0, duration: 120.0 }.sample(Resource::Cpu, 1.0);
            black_box((s.peak(), r.peak()))
        })
    });
}

/// Figure 8: the controlled-study testcase table.
fn fig08_testcase_table(c: &mut Criterion) {
    print_once("Figure 8: controlled-study testcases", || {
        let mut out = String::new();
        for task in Task::ALL {
            for tc in uucs_comfort::calibration::controlled_testcases(task) {
                out.push_str(&format!("{}\n", tc.id));
            }
        }
        out
    });
    c.bench_function("fig08/build_library", |b| {
        b.iter(|| {
            let lib = uucs_study::controlled::ControlledStudy::library();
            black_box(lib.len())
        })
    });
}

/// Figure 9: the run breakdown.
fn fig09_run_breakdown(c: &mut Criterion) {
    let data = study_data();
    print_once("Figure 9: breakdown of runs", || figures::render_fig9(data));
    c.bench_function("fig09/breakdown", |b| {
        b.iter(|| black_box(figures::fig9(data)))
    });
}

/// Figures 10-12: aggregated CDFs.
fn fig10_12_aggregate_cdfs(c: &mut Criterion) {
    let data = study_data();
    for (fig, r) in [(10, Resource::Cpu), (11, Resource::Memory), (12, Resource::Disk)] {
        print_once(&format!("Figure {fig}: CDF of discomfort for {r}"), || {
            figures::render_aggregate_cdf(data, r)
        });
        c.bench_function(format!("fig{fig}/cdf_{r}"), |b| {
            b.iter(|| black_box(figures::aggregate_cdf(data, r).total()))
        });
    }
}

/// Figure 13: the sensitivity grid.
fn fig13_sensitivity(c: &mut Criterion) {
    let data = study_data();
    print_once("Figure 13: sensitivity grid", || figures::render_fig13(data));
    c.bench_function("fig13/classify", |b| {
        b.iter(|| black_box(figures::fig13(data)))
    });
}

/// Figures 14-16: the metric tables.
fn fig14_16_metric_tables(c: &mut Criterion) {
    let data = study_data();
    for which in [14u32, 15, 16] {
        print_once(&format!("Figure {which}"), || {
            figures::render_metric_table(data, which)
        });
    }
    c.bench_function("fig14_16/all_cell_metrics", |b| {
        b.iter(|| {
            for task in Task::ALL {
                for r in Resource::STUDIED {
                    black_box(figures::cell_metrics(data, task, r).f_d);
                }
            }
        })
    });
}

/// Figure 17: skill-class t-tests (on the high-power dataset).
fn fig17_skill(c: &mut Criterion) {
    let data = big_study_data();
    print_once("Figure 17: skill-class differences (240 users)", || {
        skill::render_fig17(data, 0.05)
    });
    c.bench_function("fig17/t_tests", |b| {
        b.iter(|| black_box(skill::fig17(data, 0.05).len()))
    });
}

/// Figure 18: the per-cell CDF grid.
fn fig18_cdf_grid(c: &mut Criterion) {
    let data = study_data();
    print_once("Figure 18: per-cell CDF grid", || figures::render_fig18(data));
    c.bench_function("fig18/grid", |b| {
        b.iter(|| {
            for task in Task::ALL {
                for r in Resource::STUDIED {
                    black_box(figures::cell_metrics(data, task, r).ecdf.total());
                }
            }
        })
    });
}

/// §3.3.5: the frog-in-the-pot analysis.
fn frog_in_pot(c: &mut Criterion) {
    let data = big_study_data();
    print_once("Frog in the pot (ramp vs step, 240 users)", || {
        frog::render_frog(data)
    });
    c.bench_function("frog/all_cells", |b| {
        b.iter(|| black_box(frog::frog_all(data).len()))
    });
}

/// The paper-vs-measured comparison (EXPERIMENTS.md data).
fn paper_comparison(c: &mut Criterion) {
    let data = study_data();
    print_once("Paper vs measured", || {
        report::render_comparisons("comfort metrics", &report::compare_metrics(data))
    });
    c.bench_function("compare/agreement", |b| {
        b.iter(|| black_box(report::agreement_fraction(data, 0.5)))
    });
}

/// End-to-end: the full 33-user controlled study (the paper's headline
/// experiment), through client/server.
fn full_controlled_study(c: &mut Criterion) {
    let mut group = c.benchmark_group("study");
    group.sample_size(10);
    group.bench_function("controlled_33_users_fast", |b| {
        b.iter(|| {
            let data = uucs_study::controlled::ControlledStudy::new(
                uucs_study::controlled::StudyConfig {
                    seed: 99,
                    users: 33,
                    fidelity: uucs_comfort::Fidelity::Fast,
                },
            )
            .run();
            black_box(data.records.len())
        })
    });
    group.finish();
}

bench_group!(
    benches,
    fig03_exercise_functions,
    fig04_step_ramp,
    fig08_testcase_table,
    fig09_run_breakdown,
    fig10_12_aggregate_cdfs,
    fig13_sensitivity,
    fig14_16_metric_tables,
    fig17_skill,
    fig18_cdf_grid,
    frog_in_pot,
    paper_comparison,
    full_controlled_study,
);
bench_main!(benches);
