//! Wire-protocol benchmarks: what the negotiated binary framing buys
//! over the legacy text lines, against the same live TCP server.
//!
//! * `wire/uploads` — acked uploads through one connection: `text`
//!   (v1 lines, one request in flight), `binary` (v2 frames, one in
//!   flight), and `binary_pipelined_x8` (v2 frames, a burst kept in
//!   flight and drained in request order). The text→binary spread is
//!   the codec; binary→pipelined is what reply correlation buys.
//! * `wire/model_sync` — one model download per iteration on a warm
//!   model: `full` ships the whole encoded sketch, `delta` the
//!   steady-state `MODELDELTA` poll (nothing changed since the
//!   client's epoch, so the reply is a handful of bytes).

use std::hint::black_box;
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::Arc;
use uucs_harness::bench::quick_mode;
use uucs_harness::{bench_group, bench_main, Criterion, Throughput};
use uucs_protocol::wire::{read_server_msg, write_client_msg};
use uucs_protocol::{
    ClientMsg, MachineSnapshot, MonitorSummary, RunOutcome, RunRecord, ServerMsg,
    WIRE_VERSION_BINARY,
};
use uucs_server::{tcp, StoreSet, UucsServer};
use uucs_testcase::Resource;
use uucs_wire::conn::{negotiate, Negotiated};
use uucs_wire::crc32;
use uucs_wire::frame::{read_server_frame, write_client_frame};

fn record(id: &str, seq: u64, i: u64) -> RunRecord {
    RunRecord {
        client: id.to_string(),
        user: format!("u{i:03}"),
        testcase: "cpu-ramp-7-120".into(),
        task: "Word".into(),
        skill: "Typical".into(),
        outcome: RunOutcome::Discomfort,
        offset_secs: 60.0,
        last_levels: vec![(Resource::Cpu, vec![(seq % 7) as f64 + 0.5])],
        monitor: MonitorSummary::default(),
    }
}

/// One registered connection to a live server, over either framing.
struct Conn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    id: String,
    seq: u64,
}

fn dial(addr: std::net::SocketAddr, binary: bool, name: &str) -> Conn {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    if binary {
        let got = negotiate(&mut writer, &mut reader, WIRE_VERSION_BINARY).expect("negotiate");
        assert_eq!(got, Negotiated::Version(WIRE_VERSION_BINARY));
    }
    let register = ClientMsg::Register {
        snapshot: MachineSnapshot::study_machine(name),
        token: format!("bench-{name}"),
    };
    let reply = if binary {
        write_client_frame(&mut writer, 0, &register).unwrap();
        read_server_frame(&mut reader).unwrap().1
    } else {
        write_client_msg(&mut writer, &register).unwrap();
        read_server_msg(&mut reader).unwrap()
    };
    let ServerMsg::Id { id, .. } = reply else {
        panic!("registration failed: {reply:?}");
    };
    Conn {
        writer,
        reader,
        id,
        seq: 0,
    }
}

impl Conn {
    fn next_upload(&mut self) -> ClientMsg {
        self.seq += 1;
        ClientMsg::Upload {
            client: self.id.clone(),
            seq: self.seq,
            records: vec![record(&self.id, self.seq, self.seq % 8)],
        }
    }
}

/// Acked uploads through one connection: text vs binary vs pipelined
/// binary on the same server.
fn uploads(c: &mut Criterion) {
    let per_iter: u64 = if quick_mode() { 16 } else { 64 };
    let depth: u64 = 8;
    let server =
        Arc::new(UucsServer::with_store_set(StoreSet::plain(4), 9).without_model_updates());
    let handle = tcp::serve(server, "127.0.0.1:0").expect("bind");
    let mut group = c.benchmark_group("wire/uploads");
    group.sample_size(10);
    group.throughput(Throughput::Elements(per_iter));

    group.bench_function("text", |b| {
        let mut conn = dial(handle.addr(), false, "text");
        b.iter(|| {
            for _ in 0..per_iter {
                let msg = conn.next_upload();
                write_client_msg(&mut conn.writer, &msg).unwrap();
                match read_server_msg(&mut conn.reader).unwrap() {
                    ServerMsg::Ack(n) => black_box(n),
                    other => panic!("upload not acked: {other:?}"),
                };
            }
        })
    });

    group.bench_function("binary", |b| {
        let mut conn = dial(handle.addr(), true, "binary");
        b.iter(|| {
            for _ in 0..per_iter {
                let msg = conn.next_upload();
                let req = conn.seq as u32;
                write_client_frame(&mut conn.writer, req, &msg).unwrap();
                let (got, reply) = read_server_frame(&mut conn.reader).unwrap();
                assert_eq!(got, req, "reply must echo the request id");
                match reply {
                    ServerMsg::Ack(n) => black_box(n),
                    other => panic!("upload not acked: {other:?}"),
                };
            }
        })
    });

    group.bench_function(format!("binary_pipelined_x{depth}"), |b| {
        let mut conn = dial(handle.addr(), true, "pipelined");
        b.iter(|| {
            let mut done = 0u64;
            while done < per_iter {
                let burst = depth.min(per_iter - done);
                let first = conn.seq + 1;
                for _ in 0..burst {
                    let msg = conn.next_upload();
                    let req = conn.seq as u32;
                    write_client_frame(&mut conn.writer, req, &msg).unwrap();
                }
                for k in 0..burst {
                    let (got, reply) = read_server_frame(&mut conn.reader).unwrap();
                    assert_eq!(got as u64, first + k, "replies must stay in request order");
                    match reply {
                        ServerMsg::Ack(n) => black_box(n),
                        other => panic!("upload not acked: {other:?}"),
                    };
                }
                done += burst;
            }
        })
    });
    group.finish();
    handle.shutdown();
}

/// One model download per iteration on a warm model: the full sketch
/// vs the steady-state epoch-delta poll.
fn model_sync(c: &mut Criterion) {
    let server = Arc::new(UucsServer::with_store_set(StoreSet::plain(4), 9));
    let handle = tcp::serve(server, "127.0.0.1:0").expect("bind");
    let mut conn = dial(handle.addr(), true, "model");

    // Warm the model with a spread of comfort observations, then grab
    // the current epoch and sketch so the delta poll has a valid base.
    let seed_uploads = if quick_mode() { 8 } else { 32 };
    for _ in 0..seed_uploads {
        let msg = conn.next_upload();
        let req = conn.seq as u32;
        write_client_frame(&mut conn.writer, req, &msg).unwrap();
        let (_, reply) = read_server_frame(&mut conn.reader).unwrap();
        assert!(matches!(reply, ServerMsg::Ack(_)), "seed upload: {reply:?}");
    }
    let model_ask = ClientMsg::Model {
        resource: Resource::Cpu,
        task: None,
    };
    write_client_frame(&mut conn.writer, 9000, &model_ask).unwrap();
    let (_, reply) = read_server_frame(&mut conn.reader).unwrap();
    let ServerMsg::Model { epoch, sketch, .. } = reply else {
        panic!("MODEL failed: {reply:?}");
    };
    let basecrc = crc32(sketch.as_bytes());

    let mut group = c.benchmark_group("wire/model_sync");
    group.sample_size(10);
    group.throughput(Throughput::Elements(1));
    let mut req = 10_000u32;

    group.bench_function("full", |b| {
        b.iter(|| {
            req += 1;
            write_client_frame(&mut conn.writer, req, &model_ask).unwrap();
            let (_, reply) = read_server_frame(&mut conn.reader).unwrap();
            match reply {
                ServerMsg::Model { sketch, .. } => black_box(sketch.len()),
                other => panic!("MODEL failed: {other:?}"),
            };
        })
    });

    group.bench_function("delta", |b| {
        let ask = ClientMsg::ModelDelta {
            resource: Resource::Cpu,
            task: None,
            since: epoch,
            basecrc,
        };
        b.iter(|| {
            req += 1;
            write_client_frame(&mut conn.writer, req, &ask).unwrap();
            let (_, reply) = read_server_frame(&mut conn.reader).unwrap();
            match reply {
                ServerMsg::ModelDelta { delta, .. } => black_box(delta.len()),
                // A base the server stopped retaining would fall back
                // to the full sketch and defeat the comparison.
                other => panic!("delta not served: {other:?}"),
            };
        })
    });
    group.finish();
    write_client_frame(&mut conn.writer, 0, &ClientMsg::Bye).ok();
    handle.shutdown();
}

bench_group!(benches, uploads, model_sync);
bench_main!(benches);
