//! Std-only observability for the UUCS fleet: metrics, tracing, and a
//! flight recorder.
//!
//! The paper's client is itself an in-the-field monitoring system, and
//! the in-the-field monitoring literature's hard constraint is bounded,
//! *quantified* overhead on interactive workloads. This crate is built
//! around that constraint:
//!
//! * [`metrics`] — a process-global, lock-cheap registry of counters,
//!   gauges, and log-bucketed histograms (p50/p90/p99/max). Handles are
//!   cheap `Arc`s around atomics; the registry lock is touched only at
//!   registration. [`metrics::snapshot_json`] encodes the whole registry
//!   as one stable (sorted-key, integer-valued, single-line) JSON
//!   object — the payload of the server's `STATS` wire verb.
//! * [`clock`] — the monotonic nanosecond clock every timestamp comes
//!   from. Pluggable: installing the *virtual* clock makes time a plain
//!   atomic that deterministic tests (and `uucs-sim`, which can drive it
//!   from simulated time) control exactly, so two runs under the same
//!   seed produce byte-identical traces.
//! * [`trace`] — lightweight spans (RAII timers recording into a latency
//!   histogram) and events (appended to the flight recorder). When
//!   telemetry is disabled the whole surface degrades to a single
//!   relaxed atomic load per call — nanoseconds, proven by the
//!   `telemetry_overhead` bench.
//! * [`flight`] — a fixed-capacity ring buffer of recent events, dumped
//!   as JSONL to a store directory on error paths and on demand, so a
//!   failed chaos run leaves a post-mortem artifact.
//!
//! Env knobs: `UUCS_TELEMETRY=0` disables all recording at startup;
//! `UUCS_FLIGHT_CAPACITY=N` sizes the global flight-recorder ring
//! (default 1024 events).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod clock;
pub mod flight;
mod json;
pub mod metrics;
pub mod trace;

pub use flight::{EventRecord, FlightRecorder};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry, Timer};
