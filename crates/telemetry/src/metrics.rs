//! The metrics registry: counters, gauges, and log-bucketed histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap clones of
//! `Arc`ed atomics. The registry's lock is touched only when a handle
//! is looked up by name; hot paths hold their handles and update with a
//! single relaxed atomic op. When telemetry is disabled (globally, via
//! [`set_enabled`] or `UUCS_TELEMETRY=0`), every update degrades to one
//! relaxed load and a branch — the nanosecond no-op the
//! `telemetry_overhead` bench pins down.
//!
//! [`snapshot_json`] encodes the whole registry as a single-line JSON
//! object with sorted keys and integer values only, so two snapshots of
//! identical state are byte-identical — the payload the server returns
//! for the `STATS` wire verb.

use crate::json::escape;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError, RwLock};

/// Global recording switch. Defaults on; `UUCS_TELEMETRY=0` (checked at
/// first registry touch) or [`set_enabled`] turns it off.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether telemetry recording is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enables or disables all telemetry recording process-wide. Handles
/// stay valid either way; updates made while disabled are dropped.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// A monotonically increasing counter.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: an instantaneous signed value (queue depth, live
/// connections).
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        if enabled() {
            self.0.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        if enabled() {
            self.0.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts 1.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Power-of-two bucket count: bucket `i` holds values whose
/// `floor(log2(max(v, 1)))` is `i`, covering the full `u64` range.
const BUCKETS: usize = 64;

#[derive(Debug)]
struct HistogramCore {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn zero(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// A point-in-time digest of a histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Values recorded.
    pub count: u64,
    /// Mean of recorded values (integer division; 0 when empty).
    pub mean: u64,
    /// Median estimate (log-bucket upper bound, capped at `max`).
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
    /// Exact maximum recorded value.
    pub max: u64,
}

/// A log-bucketed latency/size histogram with p50/p90/p99/max.
///
/// Quantiles are estimated as the upper bound of the power-of-two
/// bucket containing the target rank (capped at the exact observed
/// maximum): at most a 2x overestimate, which is the standard trade for
/// fixed-size lock-free buckets.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Records one value.
    #[inline]
    pub fn record(&self, value: u64) {
        if !enabled() {
            return;
        }
        let bucket = 63 - (value | 1).leading_zeros() as usize;
        self.0.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
        self.0.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Starts a timer that records elapsed nanoseconds (per the
    /// telemetry [`clock`](crate::clock)) into this histogram on drop.
    pub fn start_timer(&self) -> Timer {
        if enabled() {
            Timer {
                hist: Some(self.clone()),
                t0_ns: crate::clock::now_ns(),
            }
        } else {
            Timer {
                hist: None,
                t0_ns: 0,
            }
        }
    }

    /// Values recorded so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Exact maximum recorded value.
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// A consistent-enough point-in-time digest. Quantiles are computed
    /// from a single pass over the bucket array; concurrent records may
    /// land between loads, skewing ranks by at most the in-flight count.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        let max = self.0.max.load(Ordering::Relaxed);
        let sum = self.0.sum.load(Ordering::Relaxed);
        let mean = sum.checked_div(count).unwrap_or(0);
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let target = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut cum = 0u64;
            for (i, n) in buckets.iter().enumerate() {
                cum += n;
                if cum >= target {
                    let upper = if i >= 63 { u64::MAX } else { (1u64 << (i + 1)) - 1 };
                    return upper.min(max);
                }
            }
            max
        };
        HistogramSnapshot {
            count,
            mean,
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
            max,
        }
    }
}

/// RAII span timer from [`Histogram::start_timer`] (or
/// [`trace::span`](crate::trace::span)): records the elapsed telemetry
/// time into its histogram when dropped. Inert when telemetry was
/// disabled at creation.
#[derive(Debug)]
pub struct Timer {
    hist: Option<Histogram>,
    t0_ns: u64,
}

impl Timer {
    /// An inert timer that records nothing — the disabled fast path.
    pub(crate) fn inert() -> Timer {
        Timer {
            hist: None,
            t0_ns: 0,
        }
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        if let Some(hist) = &self.hist {
            hist.record(crate::clock::now_ns().saturating_sub(self.t0_ns));
        }
    }
}

fn read_lock<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

fn write_lock<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

/// A metrics registry. The process-global one (via [`counter`],
/// [`gauge`], [`histogram`], [`snapshot_json`]) is what the fleet
/// instruments; tests needing isolation build their own with
/// [`Registry::new`].
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Counter>>,
    gauges: RwLock<BTreeMap<String, Gauge>>,
    histograms: RwLock<BTreeMap<String, Histogram>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter registered under `name`, creating it if absent.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = read_lock(&self.counters).get(name) {
            return c.clone();
        }
        write_lock(&self.counters)
            .entry(name.to_string())
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// The gauge registered under `name`, creating it if absent.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = read_lock(&self.gauges).get(name) {
            return g.clone();
        }
        write_lock(&self.gauges)
            .entry(name.to_string())
            .or_insert_with(|| Gauge(Arc::new(AtomicI64::new(0))))
            .clone()
    }

    /// The histogram registered under `name`, creating it if absent.
    pub fn histogram(&self, name: &str) -> Histogram {
        if let Some(h) = read_lock(&self.histograms).get(name) {
            return h.clone();
        }
        write_lock(&self.histograms)
            .entry(name.to_string())
            .or_insert_with(|| Histogram(Arc::new(HistogramCore::new())))
            .clone()
    }

    /// Zeroes every metric's value. Registrations (and outstanding
    /// handles) stay valid — `STATS RESET` must not invalidate the
    /// handles hot paths are holding.
    pub fn reset(&self) {
        for c in read_lock(&self.counters).values() {
            c.0.store(0, Ordering::Relaxed);
        }
        for g in read_lock(&self.gauges).values() {
            g.0.store(0, Ordering::Relaxed);
        }
        for h in read_lock(&self.histograms).values() {
            h.0.zero();
        }
    }

    /// Encodes the registry as one line of JSON with sorted keys and
    /// integer values: identical state, identical bytes.
    pub fn snapshot_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, c)) in read_lock(&self.counters).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", escape(name), c.get()));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, g)) in read_lock(&self.gauges).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", escape(name), g.get()));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in read_lock(&self.histograms).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let s = h.snapshot();
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"mean_ns\":{},\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
                escape(name),
                s.count,
                s.mean,
                s.p50,
                s.p90,
                s.p99,
                s.max
            ));
        }
        out.push_str("}}");
        out
    }
}

/// The process-global registry. First touch applies `UUCS_TELEMETRY=0`.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        if std::env::var("UUCS_TELEMETRY").is_ok_and(|v| v == "0" || v.eq_ignore_ascii_case("off"))
        {
            set_enabled(false);
        }
        Registry::new()
    })
}

/// Global-registry counter lookup (see [`Registry::counter`]).
pub fn counter(name: &str) -> Counter {
    global().counter(name)
}

/// Global-registry gauge lookup (see [`Registry::gauge`]).
pub fn gauge(name: &str) -> Gauge {
    global().gauge(name)
}

/// Global-registry histogram lookup (see [`Registry::histogram`]).
pub fn histogram(name: &str) -> Histogram {
    global().histogram(name)
}

/// Zeroes the global registry (the `STATS RESET` verb).
pub fn reset() {
    global().reset();
}

/// JSON snapshot of the global registry (the `STATS` verb payload).
pub fn snapshot_json() -> String {
    global().snapshot_json()
}

/// Serializes tests that toggle [`set_enabled`] or the global clock
/// against tests asserting recorded values. Process-global state needs
/// process-global test discipline; the lock is public to this crate's
/// test modules only in spirit — other crates' test binaries each get
/// their own process.
#[doc(hidden)]
pub fn test_guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_update_and_reset() {
        let guard = test_guard();
        let reg = Registry::new();
        let c = reg.counter("c.hits");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(reg.counter("c.hits").get(), 5, "same name, same cell");
        let g = reg.gauge("g.depth");
        g.set(7);
        g.add(-3);
        g.inc();
        g.dec();
        assert_eq!(g.get(), 4);
        reg.reset();
        assert_eq!(c.get(), 0, "reset zeroes through outstanding handles");
        assert_eq!(g.get(), 0);
        drop(guard);
    }

    #[test]
    fn histogram_quantiles_bracket_the_data() {
        let guard = test_guard();
        let reg = Registry::new();
        let h = reg.histogram("h.lat");
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 1000);
        assert_eq!(s.mean, 500);
        // Log-bucket estimates: upper bound of the target's bucket, so
        // within [exact, 2*exact), capped at max.
        assert!(s.p50 >= 500 && s.p50 < 1024, "p50 {}", s.p50);
        assert!(s.p90 >= 900 && s.p90 <= 1000, "p90 {}", s.p90);
        assert!(s.p99 >= 990 && s.p99 <= 1000, "p99 {}", s.p99);
        // Zero and huge values land in the end buckets without panicking.
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        drop(guard);
    }

    #[test]
    fn empty_histogram_snapshot_is_zeroes() {
        let reg = Registry::new();
        let s = reg.histogram("h.empty").snapshot();
        assert_eq!(
            s,
            HistogramSnapshot {
                count: 0,
                mean: 0,
                p50: 0,
                p90: 0,
                p99: 0,
                max: 0
            }
        );
    }

    #[test]
    fn snapshot_json_is_stable_and_sorted() {
        let guard = test_guard();
        let reg = Registry::new();
        reg.counter("b.second").add(2);
        reg.counter("a.first").add(1);
        reg.gauge("z.gauge").set(-3);
        reg.histogram("m.hist").record(5);
        let one = reg.snapshot_json();
        let two = reg.snapshot_json();
        assert_eq!(one, two, "identical state must encode identically");
        assert!(one.find("a.first").unwrap() < one.find("b.second").unwrap());
        assert!(one.contains("\"z.gauge\":-3"));
        assert!(one.contains(
            "\"m.hist\":{\"count\":1,\"mean_ns\":5,\"p50_ns\":5,\"p90_ns\":5,\"p99_ns\":5,\"max_ns\":5}"
        ));
        assert!(!one.contains('\n'), "wire payload must be one line");
        drop(guard);
    }

    #[test]
    fn disabled_telemetry_drops_updates() {
        let guard = test_guard();
        let reg = Registry::new();
        let c = reg.counter("d.count");
        let h = reg.histogram("d.hist");
        set_enabled(false);
        c.inc();
        h.record(9);
        let t = h.start_timer();
        drop(t);
        set_enabled(true);
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        c.inc();
        assert_eq!(c.get(), 1, "re-enabling restores recording");
        drop(guard);
    }

    #[test]
    fn timer_records_elapsed_virtual_time() {
        let guard = test_guard();
        let reg = Registry::new();
        let h = reg.histogram("t.span");
        crate::clock::install_virtual(100);
        let t = h.start_timer();
        crate::clock::advance_virtual(250);
        drop(t);
        crate::clock::uninstall_virtual();
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 250);
        drop(guard);
    }
}
