//! Lightweight tracing: spans that time themselves into histograms, and
//! events that land in the flight recorder.
//!
//! Both entry points check the global enabled flag *first*: with
//! telemetry off, [`span`] is one relaxed load plus an inert struct, and
//! [`event`] is one relaxed load — no clock read, no registry lookup, no
//! allocation. Hot paths that run many times per request should instead
//! pre-register a [`Histogram`](crate::Histogram) handle and use
//! [`Histogram::start_timer`](crate::Histogram::start_timer), skipping
//! even the name lookup.

use crate::metrics::{self, Timer};

/// Opens a span named `name`: an RAII timer that records its elapsed
/// nanoseconds into the global histogram `name` when dropped.
///
/// ```
/// let _span = uucs_telemetry::trace::span("demo.span");
/// // ... work ...
/// // drop records elapsed ns into histogram "demo.span"
/// ```
pub fn span(name: &str) -> Timer {
    if !metrics::enabled() {
        return Timer::inert();
    }
    metrics::histogram(name).start_timer()
}

/// Records a point event with key/value fields into the global flight
/// recorder, stamped with the telemetry clock.
///
/// ```
/// uucs_telemetry::trace::event("demo.event", &[("phase", "warmup")]);
/// ```
pub fn event(name: &str, fields: &[(&str, &str)]) {
    if !metrics::enabled() {
        return;
    }
    crate::flight::global().record(name, fields);
}

#[cfg(test)]
mod tests {
    use crate::metrics;

    #[test]
    fn span_times_into_named_histogram() {
        let guard = metrics::test_guard();
        crate::clock::install_virtual(0);
        {
            let _span = super::span("trace.test.span");
            crate::clock::advance_virtual(42);
        }
        crate::clock::uninstall_virtual();
        let h = metrics::histogram("trace.test.span");
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 42);
        drop(guard);
    }

    #[test]
    fn disabled_span_and_event_are_inert() {
        let guard = metrics::test_guard();
        let before = crate::flight::global().len();
        metrics::set_enabled(false);
        {
            let _span = super::span("trace.test.disabled");
            super::event("trace.test.disabled.event", &[("k", "v")]);
        }
        metrics::set_enabled(true);
        assert_eq!(metrics::histogram("trace.test.disabled").count(), 0);
        assert_eq!(crate::flight::global().len(), before);
        drop(guard);
    }
}
