//! The telemetry clock: monotonic nanoseconds, pluggable for
//! determinism.
//!
//! Every telemetry timestamp — span durations, flight-recorder event
//! stamps — comes from [`now_ns`]. In the default *real* mode that is
//! nanoseconds since the first call, measured with
//! [`std::time::Instant`]. Installing the *virtual* clock replaces it
//! with a plain atomic the caller advances explicitly: deterministic
//! tests (and `uucs-sim`, which mirrors simulated time into it via
//! [`set_virtual_ns`]) then produce byte-identical traces under a fixed
//! seed, because no wall-clock jitter ever reaches a timestamp.
//!
//! The mode is process-global — one fleet component's traces should all
//! share one timeline — so tests that install the virtual clock must
//! not run concurrently with tests asserting real-clock behaviour.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

const REAL: u8 = 0;
const VIRTUAL: u8 = 1;

static MODE: AtomicU8 = AtomicU8::new(REAL);
static VIRT_NS: AtomicU64 = AtomicU64::new(0);

fn real_base() -> Instant {
    static BASE: OnceLock<Instant> = OnceLock::new();
    *BASE.get_or_init(Instant::now)
}

/// Current time in nanoseconds: monotonic process time in real mode,
/// the explicitly driven counter in virtual mode.
pub fn now_ns() -> u64 {
    if MODE.load(Ordering::Relaxed) == VIRTUAL {
        VIRT_NS.load(Ordering::Relaxed)
    } else {
        real_base().elapsed().as_nanos() as u64
    }
}

/// Switches the process to the virtual clock, starting at `start_ns`.
pub fn install_virtual(start_ns: u64) {
    VIRT_NS.store(start_ns, Ordering::Relaxed);
    MODE.store(VIRTUAL, Ordering::Relaxed);
}

/// Switches back to the real monotonic clock.
pub fn uninstall_virtual() {
    MODE.store(REAL, Ordering::Relaxed);
}

/// Whether the virtual clock is installed.
pub fn is_virtual() -> bool {
    MODE.load(Ordering::Relaxed) == VIRTUAL
}

/// Advances the virtual clock by `delta_ns`. No-op in real mode.
pub fn advance_virtual(delta_ns: u64) {
    if is_virtual() {
        VIRT_NS.fetch_add(delta_ns, Ordering::Relaxed);
    }
}

/// Sets the virtual clock to an absolute value. No-op in real mode, so
/// a driver (the simulator's event loop) can call it unconditionally.
pub fn set_virtual_ns(ns: u64) {
    if is_virtual() {
        VIRT_NS.store(ns, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_is_monotonic() {
        // Runs under whatever mode other tests left — only meaningful
        // when real, and the virtual-clock test below restores realness.
        let guard = crate::metrics::test_guard();
        uninstall_virtual();
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
        drop(guard);
    }

    #[test]
    fn virtual_clock_is_driven_exactly() {
        let guard = crate::metrics::test_guard();
        install_virtual(1_000);
        assert!(is_virtual());
        assert_eq!(now_ns(), 1_000);
        advance_virtual(500);
        assert_eq!(now_ns(), 1_500);
        set_virtual_ns(9_999);
        assert_eq!(now_ns(), 9_999);
        uninstall_virtual();
        assert!(!is_virtual());
        // set_virtual_ns must be inert in real mode.
        set_virtual_ns(5);
        assert!(now_ns() > 5);
        drop(guard);
    }
}
