//! Minimal JSON string escaping shared by the snapshot encoder and the
//! flight recorder. Std-only; only what our own emitters need.

/// Escapes `s` as the contents of a JSON string (no surrounding quotes).
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn escapes_controls_and_quotes() {
        assert_eq!(super::escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
        assert_eq!(super::escape("plain"), "plain");
    }
}
