//! The flight recorder: a fixed-capacity ring of recent events, dumped
//! as JSONL for post-mortems.
//!
//! A crashing or chaos-faulted run rarely gets to attach a debugger;
//! what it *can* do is leave the last N interesting events on disk. The
//! recorder keeps them in a bounded ring (old events are dropped, and
//! the drop count is itself recorded), and [`FlightRecorder::dump_to_dir`]
//! writes them as one JSON object per line to `flight-recorder.jsonl`
//! in a store directory — the same directory the client/server already
//! own, so no new filesystem surface.
//!
//! Timestamps come from the telemetry [`clock`](crate::clock): under the
//! virtual clock two identically seeded runs dump byte-identical files.

use crate::json::escape;
use std::collections::VecDeque;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock, PoisonError};

/// Default ring capacity; override with `UUCS_FLIGHT_CAPACITY=N`.
pub const DEFAULT_CAPACITY: usize = 1024;

/// One recorded event: a clock stamp, a name, and ordered string fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Telemetry-clock timestamp in nanoseconds.
    pub t_ns: u64,
    /// Event name, e.g. `"chaos.fault"`.
    pub name: String,
    /// Key/value fields in recording order.
    pub fields: Vec<(String, String)>,
}

impl EventRecord {
    /// Encodes the event as one line of JSON (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"t_ns\":{},\"event\":\"{}\"", self.t_ns, escape(&self.name));
        out.push_str(",\"fields\":{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":\"{}\"", escape(k), escape(v)));
        }
        out.push_str("}}");
        out
    }
}

#[derive(Debug, Default)]
struct Ring {
    events: VecDeque<EventRecord>,
    dropped: u64,
}

/// A bounded ring buffer of [`EventRecord`]s.
///
/// The process-global one (via [`global`]) is what
/// [`trace::event`](crate::trace::event) feeds; tests needing isolation
/// construct their own.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    ring: Mutex<Ring>,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            ring: Mutex::new(Ring::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Ring> {
        self.ring.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Records an event stamped with the current telemetry clock,
    /// evicting the oldest event if the ring is full.
    pub fn record(&self, name: &str, fields: &[(&str, &str)]) {
        if !crate::metrics::enabled() {
            return;
        }
        let rec = EventRecord {
            t_ns: crate::clock::now_ns(),
            name: name.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        };
        let mut ring = self.lock();
        if ring.events.len() == self.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(rec);
    }

    /// Events currently held (oldest first).
    pub fn events(&self) -> Vec<EventRecord> {
        self.lock().events.iter().cloned().collect()
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.lock().events.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted due to capacity since the last [`clear`](Self::clear).
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Empties the ring and zeroes the dropped count.
    pub fn clear(&self) {
        let mut ring = self.lock();
        ring.events.clear();
        ring.dropped = 0;
    }

    /// Encodes the ring as JSONL: one event per line, oldest first. If
    /// any events were evicted, the first line is a `flight.dropped`
    /// marker event carrying the count.
    pub fn to_jsonl(&self) -> String {
        let ring = self.lock();
        let mut out = String::new();
        if ring.dropped > 0 {
            out.push_str(&format!(
                "{{\"t_ns\":0,\"event\":\"flight.dropped\",\"fields\":{{\"count\":\"{}\"}}}}\n",
                ring.dropped
            ));
        }
        for ev in &ring.events {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }

    /// Writes [`to_jsonl`](Self::to_jsonl) to `dir/flight-recorder.jsonl`
    /// (creating `dir` if needed) and returns the path. Best-effort by
    /// design — dump sites are error paths, and a dump failure must not
    /// mask the original error.
    pub fn dump_to_dir(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join("flight-recorder.jsonl");
        let mut f = std::fs::File::create(&path)?;
        f.write_all(self.to_jsonl().as_bytes())?;
        f.sync_all()?;
        Ok(path)
    }
}

/// The process-global flight recorder, sized by `UUCS_FLIGHT_CAPACITY`
/// (default [`DEFAULT_CAPACITY`]) at first touch.
pub fn global() -> &'static FlightRecorder {
    static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let cap = std::env::var("UUCS_FLIGHT_CAPACITY")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(DEFAULT_CAPACITY);
        FlightRecorder::new(cap)
    })
}

/// Dumps the global recorder to `dir` (see [`FlightRecorder::dump_to_dir`]).
pub fn dump_global_to_dir(dir: &Path) -> std::io::Result<PathBuf> {
    global().dump_to_dir(dir)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let guard = crate::metrics::test_guard();
        let fr = FlightRecorder::new(3);
        for i in 0..5 {
            fr.record("ev", &[("i", &i.to_string())]);
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.dropped(), 2);
        let names: Vec<String> = fr
            .events()
            .iter()
            .map(|e| e.fields[0].1.clone())
            .collect();
        assert_eq!(names, ["2", "3", "4"]);
        fr.clear();
        assert!(fr.is_empty());
        assert_eq!(fr.dropped(), 0);
        drop(guard);
    }

    #[test]
    fn jsonl_dump_is_deterministic_under_virtual_clock() {
        let guard = crate::metrics::test_guard();
        crate::clock::install_virtual(10);
        let dump = |fr: &FlightRecorder| {
            crate::clock::set_virtual_ns(10);
            fr.record("start", &[("phase", "a")]);
            crate::clock::advance_virtual(5);
            fr.record("stop", &[("phase", "b"), ("ok", "true")]);
            fr.to_jsonl()
        };
        let one = dump(&FlightRecorder::new(8));
        let two = dump(&FlightRecorder::new(8));
        crate::clock::uninstall_virtual();
        assert_eq!(one, two, "same seed, same bytes");
        assert_eq!(
            one,
            "{\"t_ns\":10,\"event\":\"start\",\"fields\":{\"phase\":\"a\"}}\n\
             {\"t_ns\":15,\"event\":\"stop\",\"fields\":{\"phase\":\"b\",\"ok\":\"true\"}}\n"
        );
        drop(guard);
    }

    #[test]
    fn dump_to_dir_writes_jsonl_file() {
        let guard = crate::metrics::test_guard();
        let fr = FlightRecorder::new(4);
        fr.record("disk", &[]);
        let dir = std::env::temp_dir().join(format!("uucs-flight-{}", std::process::id()));
        let path = fr.dump_to_dir(&dir).expect("dump");
        let body = std::fs::read_to_string(&path).expect("read back");
        assert!(body.contains("\"event\":\"disk\""));
        std::fs::remove_dir_all(&dir).ok();
        drop(guard);
    }
}
