//! Record framing: `[len: u32 LE][crc: u32 LE][payload]`.
//!
//! The CRC covers the length bytes *and* the payload, so a corrupted
//! length field is caught as a checksum mismatch rather than silently
//! re-framing the rest of the segment.
//!
//! The scanner distinguishes the two ways a frame can be bad, because
//! recovery treats them oppositely:
//!
//! * **Torn** — the frame is cut short by the end of the file: fewer
//!   than 8 header bytes remain, or the declared payload extends past
//!   EOF. Under the prefix-persistence model (append-only file, crash
//!   drops a suffix) this is the signature of an interrupted append.
//!   Recovery truncates it away.
//! * **Corrupt** — the frame is fully present but its checksum fails,
//!   or its declared length is implausible. A crash cannot produce
//!   this; bit rot or foreign writes can. Recovery reports it.

/// Bytes of frame header (`len` + `crc`).
pub const FRAME_HEADER: usize = 8;

/// Upper bound on a payload; larger declared lengths are corruption.
pub const MAX_FRAME: u32 = 64 << 20;

/// Why a frame failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The frame is cut short by EOF (interrupted append).
    Torn {
        /// Offset of the frame start within the scanned region.
        offset: usize,
        /// What exactly was missing.
        reason: &'static str,
    },
    /// The frame is complete but fails validation (bit corruption).
    Corrupt {
        /// Offset of the frame start within the scanned region.
        offset: usize,
        /// What exactly failed.
        detail: String,
    },
}

/// Appends one encoded frame to `out` and returns its encoded length.
pub fn encode_frame_into(payload: &[u8], out: &mut Vec<u8>) -> usize {
    let len = payload.len() as u32;
    let len_bytes = len.to_le_bytes();
    let mut hasher = crate::crc::Crc32::new();
    hasher.update(&len_bytes);
    hasher.update(payload);
    out.extend_from_slice(&len_bytes);
    out.extend_from_slice(&hasher.finish().to_le_bytes());
    out.extend_from_slice(payload);
    FRAME_HEADER + payload.len()
}

/// Encodes one frame.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    encode_frame_into(payload, &mut out);
    out
}

/// Streaming decoder over a byte region (a segment body).
///
/// Yields `(frame_start_offset, payload)` per good frame; the first bad
/// frame ends iteration with its [`FrameError`]. [`FrameScanner::offset`]
/// is then the end of the last good frame — the truncation point for
/// torn-tail recovery.
#[derive(Debug)]
pub struct FrameScanner<'a> {
    data: &'a [u8],
    offset: usize,
    done: bool,
}

impl<'a> FrameScanner<'a> {
    /// Scans `data` from the beginning.
    pub fn new(data: &'a [u8]) -> FrameScanner<'a> {
        FrameScanner {
            data,
            offset: 0,
            done: false,
        }
    }

    /// End of the last successfully decoded frame.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl<'a> Iterator for FrameScanner<'a> {
    type Item = Result<(usize, &'a [u8]), FrameError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let start = self.offset;
        let remaining = &self.data[start..];
        if remaining.is_empty() {
            self.done = true;
            return None;
        }
        if remaining.len() < FRAME_HEADER {
            self.done = true;
            return Some(Err(FrameError::Torn {
                offset: start,
                reason: "incomplete frame header",
            }));
        }
        let len = u32::from_le_bytes(remaining[..4].try_into().unwrap());
        if len > MAX_FRAME {
            self.done = true;
            return Some(Err(FrameError::Corrupt {
                offset: start,
                detail: format!("implausible frame length {len}"),
            }));
        }
        let total = FRAME_HEADER + len as usize;
        if remaining.len() < total {
            self.done = true;
            return Some(Err(FrameError::Torn {
                offset: start,
                reason: "payload extends past end of segment",
            }));
        }
        let stored_crc = u32::from_le_bytes(remaining[4..8].try_into().unwrap());
        let payload = &remaining[FRAME_HEADER..total];
        let mut hasher = crate::crc::Crc32::new();
        hasher.update(&remaining[..4]);
        hasher.update(payload);
        let actual = hasher.finish();
        if actual != stored_crc {
            self.done = true;
            return Some(Err(FrameError::Corrupt {
                offset: start,
                detail: format!("crc mismatch (stored {stored_crc:08x}, computed {actual:08x})"),
            }));
        }
        self.offset = start + total;
        Some(Ok((start, payload)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(data: &[u8]) -> (Vec<Vec<u8>>, usize, Option<FrameError>) {
        let mut scanner = FrameScanner::new(data);
        let mut frames = Vec::new();
        let mut err = None;
        for item in scanner.by_ref() {
            match item {
                Ok((_, p)) => frames.push(p.to_vec()),
                Err(e) => err = Some(e),
            }
        }
        (frames, scanner.offset(), err)
    }

    #[test]
    fn roundtrip_several_frames() {
        let mut data = Vec::new();
        encode_frame_into(b"one", &mut data);
        encode_frame_into(b"", &mut data);
        encode_frame_into(&[0xAB; 1000], &mut data);
        let (frames, end, err) = collect(&data);
        assert_eq!(err, None);
        assert_eq!(end, data.len());
        assert_eq!(frames, vec![b"one".to_vec(), vec![], vec![0xAB; 1000]]);
    }

    #[test]
    fn every_prefix_truncation_is_torn_never_corrupt() {
        let mut data = Vec::new();
        encode_frame_into(b"alpha", &mut data);
        encode_frame_into(b"beta-beta", &mut data);
        let first_len = FRAME_HEADER + 5;
        for cut in 0..data.len() {
            let (frames, end, err) = collect(&data[..cut]);
            // Whole frames before the cut decode; the remainder is torn.
            let whole = if cut >= data.len() {
                2
            } else if cut >= first_len {
                1
            } else {
                0
            };
            assert_eq!(frames.len(), whole, "cut at {cut}");
            if cut == 0 || cut == first_len {
                assert_eq!(err, None, "cut at {cut} is clean");
            } else {
                assert!(
                    matches!(err, Some(FrameError::Torn { .. })),
                    "cut at {cut}: {err:?}"
                );
            }
            assert_eq!(end, if whole == 1 { first_len } else { 0 });
        }
    }

    #[test]
    fn bit_flip_is_corrupt_not_torn() {
        // Flips in the crc field or payload are always Corrupt. (A flip
        // in the *length* field may instead read as Torn when the bogus
        // length points past EOF — that ambiguity is inherent, and
        // recovery errs toward truncation only in the final segment.)
        let mut data = Vec::new();
        encode_frame_into(b"alpha", &mut data); // frame 1: bytes 0..13
        encode_frame_into(b"beta", &mut data); // frame 2: bytes 13..25
        for bad in [4usize, 6, 9, 12, 22] {
            let mut copy = data.clone();
            copy[bad] ^= 0x10;
            let (_, _, err) = collect(&copy);
            assert!(
                matches!(err, Some(FrameError::Corrupt { .. })),
                "flip at {bad}: {err:?}"
            );
        }
        // A length flipped to a *smaller* value is caught by the crc.
        let mut copy = data.clone();
        copy[0] ^= 0x01; // 5 -> 4
        let (_, _, err) = collect(&copy);
        assert!(matches!(err, Some(FrameError::Corrupt { .. })));
    }

    #[test]
    fn implausible_length_is_corrupt() {
        let mut data = (MAX_FRAME + 1).to_le_bytes().to_vec();
        data.extend_from_slice(&[0u8; 12]);
        let (_, _, err) = collect(&data);
        assert!(matches!(err, Some(FrameError::Corrupt { .. })));
    }
}
