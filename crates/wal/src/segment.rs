//! Segment and snapshot file naming and headers.
//!
//! A WAL directory contains three kinds of files:
//!
//! * `<first_lsn:016x>.wal` — a log segment holding the frames for
//!   records `first_lsn, first_lsn+1, ...` in order. The 16-byte header
//!   repeats the first LSN so a misnamed file is detected.
//! * `<upto:016x>.snap` — a checkpoint: the store's folded state
//!   covering every record with `lsn < upto`, CRC-framed.
//! * `*.tmp` — an in-flight snapshot that did not reach its atomic
//!   rename; removed on recovery.

use crate::frame::{encode_frame_into, FrameError, FrameScanner, FRAME_HEADER};
use crate::Lsn;
use std::io;

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"UUCSWAL1";

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"UUCSNAP1";

/// Bytes of segment header (magic + first LSN).
pub const SEGMENT_HEADER: usize = 16;

/// File name of the segment whose first record is `first_lsn`.
pub fn segment_name(first_lsn: Lsn) -> String {
    format!("{first_lsn:016x}.wal")
}

/// Parses a segment file name back to its first LSN.
pub fn parse_segment_name(name: &str) -> Option<Lsn> {
    let hex = name.strip_suffix(".wal")?;
    if hex.len() != 16 {
        return None;
    }
    Lsn::from_str_radix(hex, 16).ok()
}

/// File name of the snapshot covering records `lsn < upto`.
pub fn snapshot_name(upto: Lsn) -> String {
    format!("{upto:016x}.snap")
}

/// Parses a snapshot file name back to its coverage bound.
pub fn parse_snapshot_name(name: &str) -> Option<Lsn> {
    let hex = name.strip_suffix(".snap")?;
    if hex.len() != 16 {
        return None;
    }
    Lsn::from_str_radix(hex, 16).ok()
}

/// The 16-byte segment header.
pub fn segment_header(first_lsn: Lsn) -> [u8; SEGMENT_HEADER] {
    let mut h = [0u8; SEGMENT_HEADER];
    h[..8].copy_from_slice(SEGMENT_MAGIC);
    h[8..].copy_from_slice(&first_lsn.to_le_bytes());
    h
}

/// Validates a segment header against the LSN its name declares.
pub fn check_segment_header(data: &[u8], expect_first: Lsn) -> io::Result<()> {
    debug_assert!(data.len() >= SEGMENT_HEADER);
    if &data[..8] != SEGMENT_MAGIC {
        return Err(corrupt("bad segment magic"));
    }
    let first = Lsn::from_le_bytes(data[8..16].try_into().unwrap());
    if first != expect_first {
        return Err(corrupt(format!(
            "segment header lsn {first} disagrees with file name ({expect_first})"
        )));
    }
    Ok(())
}

/// Serializes a snapshot file: magic, coverage bound, CRC-framed state.
pub fn encode_snapshot(upto: Lsn, state: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + FRAME_HEADER + state.len());
    out.extend_from_slice(SNAPSHOT_MAGIC);
    out.extend_from_slice(&upto.to_le_bytes());
    encode_frame_into(state, &mut out);
    out
}

/// Parses and validates a snapshot file, returning its state payload.
pub fn decode_snapshot(data: &[u8], expect_upto: Lsn) -> io::Result<Vec<u8>> {
    if data.len() < 16 || &data[..8] != SNAPSHOT_MAGIC {
        return Err(corrupt("bad snapshot magic"));
    }
    let upto = Lsn::from_le_bytes(data[8..16].try_into().unwrap());
    if upto != expect_upto {
        return Err(corrupt(format!(
            "snapshot header lsn {upto} disagrees with file name ({expect_upto})"
        )));
    }
    let mut scanner = FrameScanner::new(&data[16..]);
    let state = match scanner.next() {
        Some(Ok((_, payload))) => payload.to_vec(),
        Some(Err(FrameError::Torn { reason, .. })) => {
            return Err(corrupt(format!("snapshot truncated: {reason}")))
        }
        Some(Err(FrameError::Corrupt { detail, .. })) => {
            return Err(corrupt(format!("snapshot corrupt: {detail}")))
        }
        None => return Err(corrupt("snapshot has no state frame")),
    };
    if scanner.next().is_some() {
        return Err(corrupt("snapshot has trailing data"));
    }
    Ok(state)
}

pub(crate) fn corrupt(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        assert_eq!(segment_name(0), "0000000000000000.wal");
        assert_eq!(parse_segment_name("0000000000000000.wal"), Some(0));
        assert_eq!(parse_segment_name(&segment_name(0xdead_beef)), Some(0xdead_beef));
        assert_eq!(parse_snapshot_name(&snapshot_name(42)), Some(42));
        assert_eq!(parse_segment_name("x.wal"), None);
        assert_eq!(parse_segment_name("0000000000000000.snap"), None);
        assert_eq!(parse_snapshot_name("0000000000000000.wal"), None);
        assert_eq!(parse_segment_name("0000000000000000.wal.tmp"), None);
    }

    #[test]
    fn segment_header_roundtrip() {
        let h = segment_header(7);
        check_segment_header(&h, 7).unwrap();
        assert!(check_segment_header(&h, 8).is_err());
        let mut bad = h;
        bad[0] = b'X';
        assert!(check_segment_header(&bad, 7).is_err());
    }

    #[test]
    fn snapshot_roundtrip_and_validation() {
        let enc = encode_snapshot(9, b"state bytes");
        assert_eq!(decode_snapshot(&enc, 9).unwrap(), b"state bytes");
        assert!(decode_snapshot(&enc, 10).is_err(), "name mismatch");
        assert!(decode_snapshot(&enc[..enc.len() - 1], 9).is_err(), "torn");
        let mut flipped = enc.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 1;
        assert!(decode_snapshot(&flipped, 9).is_err(), "corrupt");
        assert!(decode_snapshot(b"short", 0).is_err());
    }
}
