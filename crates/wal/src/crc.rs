//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`), the checksum
//! framing every WAL record and snapshot payload.
//!
//! Slicing-by-8: eight lookup tables built at compile time, consuming
//! the input eight bytes per step (with a byte-at-a-time tail), which
//! checksums several times faster than the classic one-table loop —
//! recovery replay and segment scans are CRC-bound once the page cache
//! serves the reads from memory. The workspace is std-only, so the
//! implementation lives here rather than pulling in a registry crate
//! for a page of arithmetic.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// `TABLES[0]` is the classic byte-at-a-time table; `TABLES[k][b]` is
/// the CRC of byte `b` followed by `k` zero bytes, which is what lets
/// eight adjacent input bytes fold into one state update.
static TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut i = 0;
    while i < 256 {
        let mut crc = tables[0][i];
        let mut t = 1;
        while t < 8 {
            crc = (crc >> 8) ^ tables[0][(crc & 0xFF) as usize];
            tables[t][i] = crc;
            t += 1;
        }
        i += 1;
    }
    tables
}

/// Extends a running (pre-inverted) CRC state with more bytes.
///
/// Start from [`crc32`] for one-shot use; use `Crc32` for incremental
/// hashing across multiple slices.
fn update(mut state: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ state;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        state = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        state = (state >> 8) ^ TABLES[0][((state ^ b as u32) & 0xFF) as usize];
    }
    state
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Incremental CRC-32 over several slices.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh hasher.
    pub fn new() -> Crc32 {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds more bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.state = update(self.state, data);
    }

    /// The digest of everything fed so far.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The one-table reference loop the sliced version must match.
    fn crc32_bytewise(data: &[u8]) -> u32 {
        let mut state = 0xFFFF_FFFFu32;
        for &b in data {
            state = (state >> 8) ^ TABLES[0][((state ^ b as u32) & 0xFF) as usize];
        }
        state ^ 0xFFFF_FFFF
    }

    #[test]
    fn known_vectors() {
        // The classic check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sliced_matches_bytewise_at_every_length() {
        // Cover the remainder loop at every phase (0..8 leftover
        // bytes) and multi-block inputs.
        let data: Vec<u8> = (0..257u32).map(|i| (i.wrapping_mul(31) >> 3) as u8).collect();
        for len in 0..data.len() {
            assert_eq!(
                crc32(&data[..len]),
                crc32_bytewise(&data[..len]),
                "mismatch at length {len}"
            );
        }
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in [0, 1, 7, 8, 9, 16, data.len()] {
            let mut h = Crc32::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), crc32(data));
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = b"hello wal, nine bytes and then some".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), clean, "flip at {byte}.{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
