//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`), the checksum
//! framing every WAL record and snapshot payload.
//!
//! Table-driven, one table built at compile time. The workspace is
//! std-only, so the implementation lives here rather than pulling in a
//! registry crate for forty lines of arithmetic.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// The byte-at-a-time lookup table.
static TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Extends a running (pre-inverted) CRC state with more bytes.
///
/// Start from [`crc32`] for one-shot use; use `Crc32` for incremental
/// hashing across multiple slices.
fn update(mut state: u32, data: &[u8]) -> u32 {
    for &b in data {
        state = (state >> 8) ^ TABLE[((state ^ b as u32) & 0xFF) as usize];
    }
    state
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Incremental CRC-32 over several slices.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh hasher.
    pub fn new() -> Crc32 {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds more bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.state = update(self.state, data);
    }

    /// The digest of everything fed so far.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in [0, 1, 7, data.len()] {
            let mut h = Crc32::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), crc32(data));
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = b"hello wal".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), clean, "flip at {byte}.{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
