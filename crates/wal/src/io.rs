//! The storage backend abstraction the WAL writes through.
//!
//! [`Wal`](crate::Wal) is generic over [`Io`] so the same recovery code
//! runs against two backends:
//!
//! * [`StdIo`] — real files via `std::fs`, with a cached append handle
//!   per path so the hot append path does not reopen the file.
//! * [`MemIo`] — an in-memory filesystem that models the volatile page
//!   cache (bytes written but not yet synced) and injects faults at the
//!   Nth mutating operation: a plain failure, a short write, or both.
//!   [`MemIo::crash`] then simulates power loss: every file keeps its
//!   synced prefix plus a caller-chosen fraction of its unsynced tail,
//!   which is exactly how torn frames arise on real disks.
//!
//! The model deliberately assumes *prefix* persistence: an unsynced tail
//! survives a crash only as a contiguous prefix, never as scattered
//! garbage. Append-only files on journaling filesystems behave this way
//! (data is flushed in order); the recovery policy in
//! [`wal`](crate::wal) leans on it to tell a torn tail apart from bit
//! corruption.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError};

/// Filesystem operations the WAL needs, all path-addressed.
pub trait Io {
    /// Creates a directory and its parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// File names (not paths) directly under `dir`.
    fn list(&self, dir: &Path) -> io::Result<Vec<String>>;
    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Creates (or truncates) an empty file.
    fn create(&self, path: &Path) -> io::Result<()>;
    /// Appends bytes at the end of a file, creating it if missing.
    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Forces the file's contents to stable storage.
    fn sync(&self, path: &Path) -> io::Result<()>;
    /// Truncates the file to `len` bytes.
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;
    /// Atomically renames `from` to `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes a file.
    fn remove(&self, path: &Path) -> io::Result<()>;
    /// The file's length in bytes.
    fn len(&self, path: &Path) -> io::Result<u64>;
    /// Reads up to `len` bytes starting at byte `offset`. Reading past
    /// the end of the file is not an error — the result is simply
    /// shorter (possibly empty). The default implementation reads the
    /// whole file and slices; backends with positional reads should
    /// override it.
    fn read_at(&self, path: &Path, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        let bytes = self.read(path)?;
        let start = (offset as usize).min(bytes.len());
        let end = start.saturating_add(len).min(bytes.len());
        Ok(bytes[start..end].to_vec())
    }
}

// ---------------------------------------------------------------------------
// StdIo
// ---------------------------------------------------------------------------

/// The real-filesystem backend.
///
/// Append handles are cached per path (and evicted on truncate, rename
/// and remove) so that a `SyncPolicy::Always` workload costs one
/// `write` + one `fsync` per record, not an `open` as well.
#[derive(Debug, Default, Clone)]
pub struct StdIo {
    handles: Arc<Mutex<HashMap<PathBuf, File>>>,
}

impl StdIo {
    /// A fresh backend with an empty handle cache.
    pub fn new() -> StdIo {
        StdIo::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<PathBuf, File>> {
        self.handles.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn evict(&self, path: &Path) {
        self.lock().remove(path);
    }
}

impl Io for StdIo {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        Ok(names)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn create(&self, path: &Path) -> io::Result<()> {
        self.evict(path);
        drop(File::create(path)?);
        Ok(())
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut handles = self.lock();
        let file = match handles.entry(path.to_path_buf()) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(OpenOptions::new().create(true).append(true).open(path)?)
            }
        };
        file.write_all(data)
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        let mut handles = self.lock();
        if let Some(file) = handles.get_mut(path) {
            return file.sync_all();
        }
        File::open(path)?.sync_all()
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        self.evict(path);
        OpenOptions::new().write(true).open(path)?.set_len(len)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.evict(from);
        self.evict(to);
        std::fs::rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.evict(path);
        std::fs::remove_file(path)
    }

    fn len(&self, path: &Path) -> io::Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }

    fn read_at(&self, path: &Path, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        use std::io::{Read, Seek, SeekFrom};
        let mut file = File::open(path)?;
        let end = file.seek(SeekFrom::End(0))?;
        if offset >= end {
            return Ok(Vec::new());
        }
        file.seek(SeekFrom::Start(offset))?;
        let want = len.min((end - offset) as usize);
        let mut buf = vec![0u8; want];
        file.read_exact(&mut buf)?;
        Ok(buf)
    }
}

// ---------------------------------------------------------------------------
// MemIo
// ---------------------------------------------------------------------------

/// What to inject at the Nth mutating operation (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Index of the mutating operation that fails. Reads never count.
    pub fail_at: u64,
    /// If the failing operation is an append, keep only this many bytes
    /// of it in the (volatile) file image — a short write. `None` keeps
    /// the whole write buffered, as when the process dies after `write`
    /// returned but before `fsync`.
    pub short_write: Option<usize>,
}

#[derive(Debug, Default, Clone)]
struct MemFile {
    /// Full content, including the unsynced tail.
    bytes: Vec<u8>,
    /// Length of the prefix that has reached stable storage.
    synced_len: usize,
}

#[derive(Debug, Default)]
struct MemState {
    files: BTreeMap<PathBuf, MemFile>,
    dirs: BTreeSet<PathBuf>,
    mutating_ops: u64,
    plan: Option<FaultPlan>,
    /// Set once a fault fired; every later operation fails until
    /// [`MemIo::crash`] "reboots" the machine.
    dead: bool,
}

/// The in-memory fault-injection backend. Cloning shares the state, so
/// a test keeps a handle to the same "disk" its `Wal` writes to.
#[derive(Debug, Default, Clone)]
pub struct MemIo {
    inner: Arc<Mutex<MemState>>,
}

fn injected(msg: &str) -> io::Error {
    io::Error::other(format!("injected fault: {msg}"))
}

fn not_found(path: &Path) -> io::Error {
    io::Error::new(io::ErrorKind::NotFound, format!("{path:?} not found"))
}

impl MemIo {
    /// An empty in-memory filesystem with no fault planned.
    pub fn new() -> MemIo {
        MemIo::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MemState> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Arms (or disarms) the fault plan.
    pub fn set_fault(&self, plan: Option<FaultPlan>) {
        self.lock().plan = plan;
    }

    /// Mutating operations performed so far — the domain of
    /// [`FaultPlan::fail_at`].
    pub fn mutating_ops(&self) -> u64 {
        self.lock().mutating_ops
    }

    /// True once an injected fault has fired.
    pub fn is_dead(&self) -> bool {
        self.lock().dead
    }

    /// Simulates power loss and reboot: every file keeps its synced
    /// prefix plus the first `flush_frac` (0.0–1.0) of its unsynced
    /// tail, the fault plan is cleared, and operations work again.
    pub fn crash(&self, flush_frac: f64) {
        let mut state = self.lock();
        let frac = flush_frac.clamp(0.0, 1.0);
        for file in state.files.values_mut() {
            let volatile = file.bytes.len() - file.synced_len;
            let kept = (volatile as f64 * frac).floor() as usize;
            file.bytes.truncate(file.synced_len + kept);
            file.synced_len = file.bytes.len();
        }
        state.plan = None;
        state.dead = false;
    }

    /// Flips one bit of a file's *durable* image — bit corruption, as
    /// opposed to the prefix truncation a crash produces.
    pub fn corrupt(&self, path: &Path, offset: usize) {
        let mut state = self.lock();
        if let Some(file) = state.files.get_mut(path) {
            if offset < file.bytes.len() {
                file.bytes[offset] ^= 0x40;
            }
        }
    }

    /// The current full content of a file (test inspection).
    pub fn contents(&self, path: &Path) -> Option<Vec<u8>> {
        self.lock().files.get(path).map(|f| f.bytes.clone())
    }

    /// Gates a mutating operation through the fault plan. Returns
    /// `Ok(fault_now)`: `fault_now = true` means *this* operation is the
    /// failing one (the caller applies its partial effect, then errors).
    fn gate(state: &mut MemState) -> io::Result<bool> {
        if state.dead {
            return Err(injected("backend offline until crash()+reopen"));
        }
        let op = state.mutating_ops;
        state.mutating_ops += 1;
        if state.plan.is_some_and(|p| p.fail_at == op) {
            state.dead = true;
            return Ok(true);
        }
        Ok(false)
    }

    fn read_gate(state: &MemState) -> io::Result<()> {
        if state.dead {
            return Err(injected("backend offline until crash()+reopen"));
        }
        Ok(())
    }
}

impl Io for MemIo {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        let mut state = self.lock();
        if Self::gate(&mut state)? {
            return Err(injected("create_dir_all"));
        }
        state.dirs.insert(dir.to_path_buf());
        Ok(())
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let state = self.lock();
        Self::read_gate(&state)?;
        if !state.dirs.contains(dir) && !state.files.keys().any(|p| p.parent() == Some(dir)) {
            return Err(not_found(dir));
        }
        Ok(state
            .files
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .filter_map(|p| p.file_name())
            .map(|n| n.to_string_lossy().into_owned())
            .collect())
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let state = self.lock();
        Self::read_gate(&state)?;
        state
            .files
            .get(path)
            .map(|f| f.bytes.clone())
            .ok_or_else(|| not_found(path))
    }

    fn create(&self, path: &Path) -> io::Result<()> {
        let mut state = self.lock();
        if Self::gate(&mut state)? {
            return Err(injected("create"));
        }
        state.files.insert(path.to_path_buf(), MemFile::default());
        Ok(())
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut state = self.lock();
        let fault = Self::gate(&mut state)?;
        let short = state.plan.and_then(|p| p.short_write);
        let file = state.files.entry(path.to_path_buf()).or_default();
        if fault {
            // The write reached the page cache only partially (short
            // write) or fully-but-unsynced; either way the caller sees
            // an error and the bytes are volatile.
            let keep = short.unwrap_or(data.len()).min(data.len());
            file.bytes.extend_from_slice(&data[..keep]);
            return Err(injected("append"));
        }
        file.bytes.extend_from_slice(data);
        Ok(())
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        let mut state = self.lock();
        if Self::gate(&mut state)? {
            return Err(injected("sync"));
        }
        let file = state.files.get_mut(path).ok_or_else(|| not_found(path))?;
        file.synced_len = file.bytes.len();
        Ok(())
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let mut state = self.lock();
        if Self::gate(&mut state)? {
            return Err(injected("truncate"));
        }
        let file = state.files.get_mut(path).ok_or_else(|| not_found(path))?;
        file.bytes.truncate(len as usize);
        file.synced_len = file.synced_len.min(file.bytes.len());
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut state = self.lock();
        if Self::gate(&mut state)? {
            return Err(injected("rename"));
        }
        let file = state.files.remove(from).ok_or_else(|| not_found(from))?;
        state.files.insert(to.to_path_buf(), file);
        Ok(())
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        let mut state = self.lock();
        if Self::gate(&mut state)? {
            return Err(injected("remove"));
        }
        state.files.remove(path).ok_or_else(|| not_found(path))?;
        Ok(())
    }

    fn len(&self, path: &Path) -> io::Result<u64> {
        let state = self.lock();
        Self::read_gate(&state)?;
        state
            .files
            .get(path)
            .map(|f| f.bytes.len() as u64)
            .ok_or_else(|| not_found(path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memio_models_durable_and_volatile() {
        let io = MemIo::new();
        let p = Path::new("/w/a.wal");
        io.create_dir_all(Path::new("/w")).unwrap();
        io.append(p, b"synced").unwrap();
        io.sync(p).unwrap();
        io.append(p, b"-volatile").unwrap();
        assert_eq!(io.read(p).unwrap(), b"synced-volatile");
        // Power loss with nothing flushed: the volatile tail vanishes.
        io.crash(0.0);
        assert_eq!(io.read(p).unwrap(), b"synced");
    }

    #[test]
    fn crash_keeps_a_prefix_of_the_volatile_tail() {
        let io = MemIo::new();
        let p = Path::new("/w/a.wal");
        io.append(p, b"dd").unwrap();
        io.sync(p).unwrap();
        io.append(p, b"0123456789").unwrap();
        io.crash(0.5);
        assert_eq!(io.read(p).unwrap(), b"dd01234");
    }

    #[test]
    fn fault_fires_at_the_nth_op_and_kills_the_backend() {
        let io = MemIo::new();
        let p = Path::new("/w/a.wal");
        io.set_fault(Some(FaultPlan {
            fail_at: 1,
            short_write: Some(3),
        }));
        io.append(p, b"first").unwrap(); // op 0
        let err = io.append(p, b"second").unwrap_err(); // op 1: fails short
        assert!(err.to_string().contains("injected"));
        assert!(io.is_dead());
        assert!(io.sync(p).is_err(), "everything fails until reboot");
        io.crash(1.0); // flush everything that made it to the cache
        assert_eq!(io.read(p).unwrap(), b"firstsec");
    }

    #[test]
    fn list_and_rename_and_remove() {
        let io = MemIo::new();
        let dir = Path::new("/w");
        io.create_dir_all(dir).unwrap();
        io.create(&dir.join("a")).unwrap();
        io.create(&dir.join("b.tmp")).unwrap();
        io.rename(&dir.join("b.tmp"), &dir.join("b")).unwrap();
        let mut names = io.list(dir).unwrap();
        names.sort();
        assert_eq!(names, vec!["a", "b"]);
        io.remove(&dir.join("a")).unwrap();
        assert_eq!(io.list(dir).unwrap(), vec!["b"]);
        assert!(io.read(&dir.join("a")).is_err());
    }

    #[test]
    fn read_at_clamps_to_eof_on_both_backends() {
        let mem = MemIo::new();
        let p = Path::new("/w/a.wal");
        mem.append(p, b"0123456789").unwrap();
        assert_eq!(mem.read_at(p, 2, 4).unwrap(), b"2345");
        assert_eq!(mem.read_at(p, 8, 100).unwrap(), b"89");
        assert_eq!(mem.read_at(p, 50, 4).unwrap(), b"");

        let tmp = uucs_harness::TempDir::new("uucs-wal-read-at");
        let io = StdIo::new();
        let q = tmp.path().join("x.wal");
        io.append(&q, b"0123456789").unwrap();
        assert_eq!(io.read_at(&q, 2, 4).unwrap(), b"2345");
        assert_eq!(io.read_at(&q, 8, 100).unwrap(), b"89");
        assert_eq!(io.read_at(&q, 50, 4).unwrap(), b"");
    }

    #[test]
    fn stdio_roundtrip() {
        let tmp = uucs_harness::TempDir::new("uucs-wal-stdio");
        let dir = tmp.path().to_path_buf();
        let io = StdIo::new();
        io.create_dir_all(&dir).unwrap();
        let p = dir.join("x.wal");
        io.create(&p).unwrap();
        io.append(&p, b"hello ").unwrap();
        io.append(&p, b"wal").unwrap();
        io.sync(&p).unwrap();
        assert_eq!(io.read(&p).unwrap(), b"hello wal");
        assert_eq!(io.len(&p).unwrap(), 9);
        io.truncate(&p, 5).unwrap();
        assert_eq!(io.read(&p).unwrap(), b"hello");
        // Truncation evicted the append handle; appends continue at the
        // new end.
        io.append(&p, b"!").unwrap();
        assert_eq!(io.read(&p).unwrap(), b"hello!");
        io.rename(&p, &dir.join("y.wal")).unwrap();
        assert_eq!(io.list(&dir).unwrap(), vec!["y.wal"]);
        io.remove(&dir.join("y.wal")).unwrap();
    }
}
