//! # uucs-wal — a durable, crash-recoverable write-ahead log
//!
//! The paper's server "hot-syncs" discomfort records from clients in
//! the field and keeps them "on permanent storage in text files". A
//! whole-file rewrite per checkpoint loses every record uploaded since
//! the last rewrite if the server dies, and costs O(total records) per
//! sync. This crate gives the server stores the usual database answer:
//! an append-only, segment-rotated log with CRC32-framed records, a
//! snapshot+compaction path, and recovery that replays committed
//! records and truncates a torn tail instead of erroring.
//!
//! * [`Wal`] — the writer: `append(&[u8]) -> Lsn`, a configurable
//!   [`SyncPolicy`] (`Always` / `EveryN(n)` / `Never`), segment
//!   rotation at a size threshold, `snapshot()` / `compact()`, and an
//!   iterator-based `replay()`.
//! * [`WalReader`] — read-only validation + replay of a directory
//!   another process owns (no truncation, no writes).
//! * [`Io`] — the injectable storage backend: [`StdIo`] for real
//!   files, [`MemIo`] for deterministic fault injection (fail, short
//!   write, or crash at the Nth operation) so recovery is testable
//!   without a real power cut.
//!
//! File format, naming, and the recovery algorithm are documented in
//! the repository's `DESIGN.md` §5b; the durability contract is on
//! [`wal`](crate::wal) and [`SyncPolicy`].

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod crc;
pub mod frame;
pub mod io;
pub mod segment;
pub mod wal;

/// Log sequence number: the 0-based index of a record in the log.
pub type Lsn = u64;

pub use crate::io::{FaultPlan, Io, MemIo, StdIo};
pub use crate::wal::{
    Recovery, Replay, Snapshot, SyncPolicy, TornTail, Wal, WalConfig, WalObserver, WalReader,
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn cfg(segment_bytes: u64, sync: SyncPolicy) -> WalConfig {
        WalConfig {
            segment_bytes,
            sync,
        }
    }

    fn collect<I: Io>(replay: Replay<'_, I>) -> Vec<(Lsn, Vec<u8>)> {
        replay.map(|r| r.expect("replay item")).collect()
    }

    /// A recording observer sees every successful I/O class exactly as
    /// often as the log performed it — the contract the server's
    /// telemetry hookup builds on.
    #[test]
    fn observer_sees_appends_syncs_rotations_snapshots_compactions() {
        use std::sync::{Arc, Mutex};

        #[derive(Default, Debug)]
        struct Tally {
            appends: usize,
            append_bytes: usize,
            syncs: usize,
            rotations: usize,
            snapshots: usize,
            compactions: usize,
            removed: usize,
        }
        struct Recorder(Arc<Mutex<Tally>>);
        impl WalObserver for Recorder {
            fn on_append(&mut self, bytes: usize, _dur_ns: u64) {
                let mut t = self.0.lock().unwrap();
                t.appends += 1;
                t.append_bytes += bytes;
            }
            fn on_sync(&mut self, _dur_ns: u64) {
                self.0.lock().unwrap().syncs += 1;
            }
            fn on_rotate(&mut self) {
                self.0.lock().unwrap().rotations += 1;
            }
            fn on_snapshot(&mut self, _bytes: usize, _dur_ns: u64) {
                self.0.lock().unwrap().snapshots += 1;
            }
            fn on_compact(&mut self, removed: usize, _dur_ns: u64) {
                let mut t = self.0.lock().unwrap();
                t.compactions += 1;
                t.removed += removed;
            }
        }

        let tally = Arc::new(Mutex::new(Tally::default()));
        let io = MemIo::new();
        // Tiny segments force rotations; Always-sync makes sync counts
        // deterministic (one per append, plus rotation/snapshot syncs).
        let (mut wal, _) = Wal::open(io, "/w", cfg(96, SyncPolicy::Always)).unwrap();
        wal.set_observer(Box::new(Recorder(tally.clone())));
        for i in 0..6u8 {
            wal.append(&[i; 8]).unwrap();
        }
        wal.snapshot(b"state").unwrap();
        let removed = wal.compact().unwrap();
        assert!(removed > 0, "compaction had covered segments to drop");
        let t = tally.lock().unwrap();
        assert_eq!(t.appends, 6);
        assert!(t.append_bytes >= 6 * 8, "frame bytes include payloads");
        assert!(t.rotations > 0, "96-byte segments must have rotated");
        assert!(t.syncs >= t.appends, "Always policy syncs every append");
        assert_eq!(t.snapshots, 1);
        assert_eq!(t.compactions, 1);
        assert_eq!(t.removed, removed);
    }

    #[test]
    fn append_assigns_sequential_lsns_and_replays_in_order() {
        let io = MemIo::new();
        let (mut wal, rec) = Wal::open(io, "/w", WalConfig::default()).unwrap();
        assert_eq!(rec.next_lsn, 0);
        assert!(rec.snapshot.is_none());
        for i in 0..10u8 {
            assert_eq!(wal.append(&[i]).unwrap(), i as Lsn);
        }
        let got = collect(wal.replay());
        assert_eq!(got.len(), 10);
        for (i, (lsn, payload)) in got.iter().enumerate() {
            assert_eq!(*lsn, i as Lsn);
            assert_eq!(payload, &vec![i as u8]);
        }
    }

    #[test]
    fn reopen_recovers_everything_without_a_crash() {
        let io = MemIo::new();
        let (mut wal, _) = Wal::open(io.clone(), "/w", WalConfig::default()).unwrap();
        for i in 0..5u8 {
            wal.append(&[i, i]).unwrap();
        }
        drop(wal);
        let (wal, rec) = Wal::open(io, "/w", WalConfig::default()).unwrap();
        assert_eq!(rec.next_lsn, 5);
        assert_eq!(rec.records, 5);
        assert!(rec.torn_tail.is_none());
        assert_eq!(collect(wal.replay()).len(), 5);
        assert_eq!(wal.next_lsn(), 5);
    }

    #[test]
    fn rotation_splits_the_log_across_segments() {
        let io = MemIo::new();
        // Tiny segments: every ~2 records rotate.
        let (mut wal, _) = Wal::open(io.clone(), "/w", cfg(100, SyncPolicy::Always)).unwrap();
        for i in 0..20u8 {
            wal.append(&[i; 30]).unwrap();
        }
        assert!(
            wal.segment_count() > 3,
            "expected several segments, got {}",
            wal.segment_count()
        );
        // Everything still replays, across the rotation boundaries.
        let got = collect(wal.replay());
        assert_eq!(got.len(), 20);
        // And a reopen sees the same thing.
        drop(wal);
        let (wal, rec) = Wal::open(io, "/w", cfg(100, SyncPolicy::Always)).unwrap();
        assert_eq!(rec.records, 20);
        assert_eq!(collect(wal.replay()).len(), 20);
    }

    #[test]
    fn oversized_record_still_appends() {
        let io = MemIo::new();
        let (mut wal, _) = Wal::open(io, "/w", cfg(100, SyncPolicy::Always)).unwrap();
        wal.append(&[7u8; 500]).unwrap(); // larger than a whole segment
        wal.append(b"next").unwrap();
        let got = collect(wal.replay());
        assert_eq!(got[0].1.len(), 500);
        assert_eq!(got[1].1, b"next");
    }

    #[test]
    fn snapshot_and_compact_fold_the_prefix() {
        let io = MemIo::new();
        let (mut wal, _) = Wal::open(io.clone(), "/w", cfg(80, SyncPolicy::Always)).unwrap();
        for i in 0..12u8 {
            wal.append(&[i; 20]).unwrap();
        }
        let before = wal.segment_count();
        assert!(before > 1);
        let upto = wal.snapshot(b"folded-state-of-12").unwrap();
        assert_eq!(upto, 12);
        let removed = wal.compact().unwrap();
        assert!(removed >= before - 1, "compaction freed {removed} files");
        assert_eq!(wal.segment_count(), 1);
        // Records after the snapshot replay; records before are folded.
        wal.append(b"thirteen").unwrap();
        let got = collect(wal.replay());
        assert_eq!(got, vec![(12, b"thirteen".to_vec())]);
        // Reopen: snapshot state comes back, replay starts after it.
        drop(wal);
        let (wal, rec) = Wal::open(io, "/w", cfg(80, SyncPolicy::Always)).unwrap();
        let snap = rec.snapshot.expect("snapshot survives reopen");
        assert_eq!(snap.upto, 12);
        assert_eq!(snap.state, b"folded-state-of-12");
        assert_eq!(collect(wal.replay()), vec![(12, b"thirteen".to_vec())]);
    }

    #[test]
    fn repeated_snapshots_supersede_each_other() {
        let io = MemIo::new();
        let (mut wal, _) = Wal::open(io.clone(), "/w", WalConfig::default()).unwrap();
        wal.append(b"a").unwrap();
        wal.snapshot(b"s1").unwrap();
        wal.append(b"b").unwrap();
        wal.snapshot(b"s2").unwrap();
        wal.compact().unwrap();
        drop(wal);
        let (_, rec) = Wal::open(io, "/w", WalConfig::default()).unwrap();
        let snap = rec.snapshot.unwrap();
        assert_eq!(snap.upto, 2);
        assert_eq!(snap.state, b"s2");
        assert_eq!(rec.records, 0);
    }

    #[test]
    fn torn_tail_is_truncated_not_propagated() {
        let io = MemIo::new();
        let (mut wal, _) = Wal::open(io.clone(), "/w", WalConfig::default()).unwrap();
        wal.append(b"committed-1").unwrap();
        wal.append(b"committed-2").unwrap();
        // A crash mid-append: the failing write keeps 5 bytes.
        io.set_fault(Some(FaultPlan {
            fail_at: io.mutating_ops(),
            short_write: Some(5),
        }));
        assert!(wal.append(b"never-acked").is_err());
        io.crash(1.0); // even the torn bytes reach the platter
        let (wal, rec) = Wal::open(io, "/w", WalConfig::default()).unwrap();
        let torn = rec.torn_tail.expect("torn tail detected");
        assert_eq!(torn.lost_bytes, 5);
        assert_eq!(rec.next_lsn, 2);
        assert_eq!(
            collect(wal.replay()),
            vec![(0, b"committed-1".to_vec()), (1, b"committed-2".to_vec())]
        );
    }

    #[test]
    fn broken_wal_refuses_further_appends_until_reopen() {
        let io = MemIo::new();
        let (mut wal, _) = Wal::open(io.clone(), "/w", WalConfig::default()).unwrap();
        wal.append(b"ok").unwrap();
        io.set_fault(Some(FaultPlan {
            fail_at: io.mutating_ops(),
            short_write: None,
        }));
        assert!(wal.append(b"fails").is_err());
        io.crash(0.0);
        // The in-process handle stays poisoned even though the backend
        // recovered: building on a half-applied append could interleave
        // a fresh frame after a torn one.
        let err = wal.append(b"again").unwrap_err();
        assert!(err.to_string().contains("reopen"), "{err}");
        let (mut wal, _) = Wal::open(io, "/w", WalConfig::default()).unwrap();
        wal.append(b"again").unwrap();
    }

    #[test]
    fn mid_log_corruption_is_reported_not_truncated() {
        let io = MemIo::new();
        let (mut wal, _) = Wal::open(io.clone(), "/w", WalConfig::default()).unwrap();
        wal.append(b"aaaa").unwrap();
        wal.append(b"bbbb").unwrap();
        wal.append(b"cccc").unwrap();
        drop(wal);
        // Flip a bit inside the *middle* record's payload.
        let seg = Path::new("/w/0000000000000000.wal");
        let len = io.contents(seg).unwrap().len();
        io.corrupt(seg, len - 16);
        let err = Wal::open(io, "/w", WalConfig::default()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("corrupt"), "{err}");
    }

    #[test]
    fn torn_frame_in_non_final_segment_is_an_error() {
        let io = MemIo::new();
        let (mut wal, _) = Wal::open(io.clone(), "/w", cfg(80, SyncPolicy::Always)).unwrap();
        for i in 0..8u8 {
            wal.append(&[i; 20]).unwrap();
        }
        assert!(wal.segment_count() >= 2);
        drop(wal);
        // Chop the FIRST segment short: records it committed are gone,
        // and later segments prove they were committed.
        let first = Path::new("/w/0000000000000000.wal");
        let len = io.contents(first).unwrap().len() as u64;
        io.truncate(first, len - 3).unwrap();
        let err = Wal::open(io, "/w", WalConfig::default()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn crash_during_rotation_recovers_cleanly() {
        let io = MemIo::new();
        let (mut wal, _) = Wal::open(io.clone(), "/w", cfg(80, SyncPolicy::Always)).unwrap();
        for i in 0..4u8 {
            wal.append(&[i; 20]).unwrap();
        }
        // Fail the create() of the next rotated segment.
        io.set_fault(Some(FaultPlan {
            fail_at: io.mutating_ops() + 1, // sync-of-old, then create-of-new
            short_write: None,
        }));
        assert!(wal.append(&[9u8; 20]).is_err());
        io.crash(0.0);
        let (wal, rec) = Wal::open(io, "/w", cfg(80, SyncPolicy::Always)).unwrap();
        assert_eq!(rec.next_lsn, 4);
        assert_eq!(collect(wal.replay()).len(), 4);
    }

    #[test]
    fn crash_before_new_segment_header_is_flushed() {
        let io = MemIo::new();
        let (mut wal, _) = Wal::open(io.clone(), "/w", cfg(80, SyncPolicy::Never)).unwrap();
        for i in 0..4u8 {
            wal.append(&[i; 20]).unwrap();
        }
        wal.sync().unwrap();
        // Force a rotation whose header write stays volatile, then lose it.
        wal.append(&[9u8; 40]).unwrap();
        io.crash(0.0);
        let (wal, rec) = Wal::open(io.clone(), "/w", cfg(80, SyncPolicy::Never)).unwrap();
        // The headerless file is removed; the synced prefix replays.
        assert_eq!(rec.next_lsn, 4);
        assert_eq!(collect(wal.replay()).len(), 4);
        drop(wal);
    }

    /// Deferred rotation sync: rotations stop fsyncing inline, but a
    /// later `sync()` drains the closed-segment backlog oldest-first,
    /// so a crash after that sync loses nothing and recovery never sees
    /// a committed gap.
    #[test]
    fn deferred_rotation_sync_is_drained_by_the_next_sync() {
        let io = MemIo::new();
        let (mut wal, _) = Wal::open(io.clone(), "/w", cfg(80, SyncPolicy::Never)).unwrap();
        wal.set_deferred_rotation_sync(true);
        // Cross several rotation boundaries without ever syncing.
        for i in 0..10u8 {
            wal.append(&[i; 20]).unwrap();
        }
        assert!(wal.segment_count() > 2, "tiny segments must have rotated");
        wal.sync().unwrap();
        io.crash(0.0); // drop everything unsynced
        let (wal, rec) = Wal::open(io, "/w", cfg(80, SyncPolicy::Never)).unwrap();
        assert_eq!(rec.next_lsn, 10, "synced records survive across rotations");
        assert_eq!(collect(wal.replay()).len(), 10);
    }

    /// Without the drain, a crash between rotations under deferral
    /// would lose the unsynced tail — but never produce a mid-log gap:
    /// recovery still opens cleanly on the synced prefix.
    #[test]
    fn deferred_rotation_crash_before_sync_keeps_a_clean_prefix() {
        let io = MemIo::new();
        let (mut wal, _) = Wal::open(io.clone(), "/w", cfg(80, SyncPolicy::Never)).unwrap();
        wal.set_deferred_rotation_sync(true);
        for i in 0..4u8 {
            wal.append(&[i; 20]).unwrap();
        }
        wal.sync().unwrap();
        for i in 4..10u8 {
            wal.append(&[i; 20]).unwrap(); // rotations with deferred fsync
        }
        io.crash(0.0);
        let (wal, rec) = Wal::open(io, "/w", cfg(80, SyncPolicy::Never)).unwrap();
        assert_eq!(rec.next_lsn, 4, "only the explicitly synced prefix survives");
        assert_eq!(collect(wal.replay()).len(), 4);
    }

    /// The rotation-stall hook fires once per rotation, and deferral
    /// removes the fsync from the appending thread: under `Never` with
    /// deferral, no `on_sync` fires until the explicit `sync()` call,
    /// which then drains one fsync per closed segment plus the active.
    #[test]
    fn rotation_stall_hook_fires_and_deferral_moves_syncs_off_append() {
        use std::sync::{Arc, Mutex};
        #[derive(Default)]
        struct Tally {
            rotations: usize,
            stalls: usize,
            syncs: usize,
        }
        struct Recorder(Arc<Mutex<Tally>>);
        impl WalObserver for Recorder {
            fn on_rotate(&mut self) {
                self.0.lock().unwrap().rotations += 1;
            }
            fn on_rotate_stall(&mut self, _dur_ns: u64) {
                self.0.lock().unwrap().stalls += 1;
            }
            fn on_sync(&mut self, _dur_ns: u64) {
                self.0.lock().unwrap().syncs += 1;
            }
        }
        let tally = Arc::new(Mutex::new(Tally::default()));
        let io = MemIo::new();
        let (mut wal, _) = Wal::open(io, "/w", cfg(80, SyncPolicy::Never)).unwrap();
        wal.set_deferred_rotation_sync(true);
        wal.set_observer(Box::new(Recorder(tally.clone())));
        for i in 0..10u8 {
            wal.append(&[i; 20]).unwrap();
        }
        let rotations = wal.segment_count() - 1;
        {
            let t = tally.lock().unwrap();
            assert!(rotations > 0);
            assert_eq!(t.rotations, rotations);
            assert_eq!(t.stalls, rotations, "one stall sample per rotation");
            assert_eq!(t.syncs, 0, "deferral keeps fsync off the append path");
        }
        wal.sync().unwrap();
        let t = tally.lock().unwrap();
        assert_eq!(
            t.syncs,
            rotations + 1,
            "drain syncs every closed segment, then the active one"
        );
    }

    #[test]
    fn sync_policies_trade_durability_for_speed() {
        for (policy, expect_survivors) in [
            (SyncPolicy::Always, 7u64),
            (SyncPolicy::EveryN(3), 6), // syncs fired after records 2 and 5
            (SyncPolicy::Never, 0),
        ] {
            let io = MemIo::new();
            let (mut wal, _) = Wal::open(io.clone(), "/w", cfg(1 << 20, policy)).unwrap();
            for i in 0..7u8 {
                wal.append(&[i]).unwrap();
            }
            io.crash(0.0); // nothing unsynced survives
            let (_, rec) = Wal::open(io, "/w", cfg(1 << 20, policy)).unwrap();
            assert_eq!(
                rec.next_lsn, expect_survivors,
                "{policy}: {} records survived",
                rec.next_lsn
            );
        }
    }

    #[test]
    fn reader_tolerates_torn_tail_without_writing() {
        let io = MemIo::new();
        let (mut wal, _) = Wal::open(io.clone(), "/w", WalConfig::default()).unwrap();
        wal.append(b"one").unwrap();
        wal.append(b"two").unwrap();
        io.set_fault(Some(FaultPlan {
            fail_at: io.mutating_ops(),
            short_write: Some(4),
        }));
        assert!(wal.append(b"torn").is_err());
        io.crash(1.0);
        let seg = Path::new("/w/0000000000000000.wal");
        let len_before = io.contents(seg).unwrap().len();
        let reader = WalReader::open(io.clone(), "/w").unwrap();
        assert!(reader.torn_tail().is_some());
        assert_eq!(reader.record_count(), 2);
        let got: Vec<_> = reader.records().map(|r| r.unwrap().1).collect();
        assert_eq!(got, vec![b"one".to_vec(), b"two".to_vec()]);
        // Read-only: the torn bytes are still on disk afterwards.
        assert_eq!(io.contents(seg).unwrap().len(), len_before);
    }

    #[test]
    fn sync_policy_parsing() {
        assert_eq!(SyncPolicy::parse("always"), Some(SyncPolicy::Always));
        assert_eq!(SyncPolicy::parse("never"), Some(SyncPolicy::Never));
        assert_eq!(SyncPolicy::parse("every=64"), Some(SyncPolicy::EveryN(64)));
        assert_eq!(SyncPolicy::parse("every=0"), None);
        assert_eq!(SyncPolicy::parse("sometimes"), None);
        assert_eq!(SyncPolicy::EveryN(8).to_string(), "every=8");
    }

    #[test]
    fn empty_payloads_and_interleaved_snapshot() {
        let io = MemIo::new();
        let (mut wal, _) = Wal::open(io.clone(), "/w", WalConfig::default()).unwrap();
        wal.append(b"").unwrap();
        wal.append(b"x").unwrap();
        wal.snapshot(b"two folded").unwrap();
        wal.append(b"").unwrap();
        drop(wal);
        let (wal, rec) = Wal::open(io, "/w", WalConfig::default()).unwrap();
        assert_eq!(rec.snapshot.as_ref().unwrap().upto, 2);
        assert_eq!(collect(wal.replay()), vec![(2, Vec::new())]);
    }

    #[test]
    fn stdio_end_to_end() {
        let tmp = uucs_harness::TempDir::new("uucs-wal-e2e");
        let dir = tmp.join("wal");
        let (mut wal, _) =
            Wal::open(StdIo::new(), &dir, cfg(256, SyncPolicy::EveryN(4))).unwrap();
        for i in 0..50u32 {
            wal.append(&i.to_le_bytes()).unwrap();
        }
        wal.snapshot(b"25-and-counting").unwrap();
        for i in 50..60u32 {
            wal.append(&i.to_le_bytes()).unwrap();
        }
        wal.compact().unwrap();
        drop(wal);
        let (wal, rec) = Wal::open(StdIo::new(), &dir, WalConfig::default()).unwrap();
        assert_eq!(rec.snapshot.as_ref().unwrap().upto, 50);
        assert_eq!(rec.snapshot.as_ref().unwrap().state, b"25-and-counting");
        let got = collect(wal.replay());
        assert_eq!(got.len(), 10);
        assert_eq!(got[0].0, 50);
        assert_eq!(got[9].1, 59u32.to_le_bytes());
    }
}
