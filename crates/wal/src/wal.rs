//! The write-ahead log: append, rotate, recover, snapshot, compact.
//!
//! # Durability contract
//!
//! * Under [`SyncPolicy::Always`], `append` returns only after the
//!   record's frame is on stable storage: every acknowledged append
//!   survives a crash.
//! * Under [`SyncPolicy::EveryN`], at most `n - 1` acknowledged appends
//!   (plus the in-flight one) can be lost.
//! * Under [`SyncPolicy::Never`], the log is only as durable as the
//!   page cache; rotation and snapshots still sync their own files.
//!
//! # Recovery policy
//!
//! Replaying a directory distinguishes an *interrupted append* from
//! *corruption* (see [`frame`](crate::frame)):
//!
//! * A torn frame at the tail of the **final** segment is the expected
//!   residue of a crash — [`Wal::open`] silently truncates it and
//!   reports it in [`Recovery::torn_tail`]. A final segment cut short
//!   before its header is complete is removed the same way.
//! * A bad frame **anywhere else** — mid-segment checksum mismatch, a
//!   torn frame in a non-final segment, a gap in the LSN chain — is
//!   reported as `InvalidData` and recovery refuses to proceed, because
//!   committed data is missing rather than merely unflushed.

use crate::frame::{encode_frame, FrameError, FrameScanner, FRAME_HEADER};
use crate::io::Io;
use crate::segment::{
    check_segment_header, corrupt, decode_snapshot, encode_snapshot, parse_segment_name,
    parse_snapshot_name, segment_header, segment_name, snapshot_name, SEGMENT_HEADER,
};
use crate::Lsn;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Observation hooks for a [`Wal`]'s I/O: appends, fsyncs, rotations,
/// snapshots, compactions, each with the bytes involved and the wall
/// time the underlying I/O took.
///
/// Every method has a no-op default, so observers implement only what
/// they chart. The WAL itself stays dependency-free: a telemetry stack
/// (or a test) plugs in via [`Wal::set_observer`], and when no observer
/// is installed no clock is ever read — observation costs nothing
/// unless asked for.
///
/// Hooks fire only for I/O that *succeeded*; a failed operation marks
/// the log broken and reports through its `Err` instead.
///
/// `Send + Sync` because a `Wal` travels with its store behind the
/// server's shared locks.
pub trait WalObserver: Send + Sync {
    /// One record's frame was appended: `bytes` on disk, in `dur_ns`.
    fn on_append(&mut self, bytes: usize, dur_ns: u64) {
        let _ = (bytes, dur_ns);
    }
    /// The active segment was fsynced in `dur_ns`.
    fn on_sync(&mut self, dur_ns: u64) {
        let _ = dur_ns;
    }
    /// The active segment was closed and a fresh one started.
    fn on_rotate(&mut self) {}
    /// Rotation held the appending thread for `dur_ns` of wall time.
    /// With deferred rotation sync (see
    /// [`Wal::set_deferred_rotation_sync`]) this is just the
    /// create+header cost; otherwise it includes the closing segment's
    /// fsync.
    fn on_rotate_stall(&mut self, dur_ns: u64) {
        let _ = dur_ns;
    }
    /// A checkpoint of `bytes` of state was published in `dur_ns`.
    fn on_snapshot(&mut self, bytes: usize, dur_ns: u64) {
        let _ = (bytes, dur_ns);
    }
    /// Compaction removed `removed` files in `dur_ns`.
    fn on_compact(&mut self, removed: usize, dur_ns: u64) {
        let _ = (removed, dur_ns);
    }
}

/// The observer slot: `Option<Box<dyn ...>>` behind a newtype so `Wal`
/// can keep deriving `Debug`.
struct ObserverSlot(Option<Box<dyn WalObserver>>);

impl std::fmt::Debug for ObserverSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() {
            "ObserverSlot(installed)"
        } else {
            "ObserverSlot(none)"
        })
    }
}

impl ObserverSlot {
    /// Starts timing iff someone is listening.
    fn t0(&self) -> Option<Instant> {
        self.0.is_some().then(Instant::now)
    }

    fn elapsed_ns(t0: Option<Instant>) -> u64 {
        t0.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0)
    }
}

/// When appended frames are forced to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fsync` after every append; an acknowledged record is durable.
    Always,
    /// `fsync` after every `n` appends; bounded loss window.
    EveryN(u32),
    /// Never `fsync` on append; fastest, page-cache durability only.
    Never,
}

impl SyncPolicy {
    /// Parses the CLI spelling: `always`, `never`, or `every=N`.
    pub fn parse(s: &str) -> Option<SyncPolicy> {
        match s {
            "always" => Some(SyncPolicy::Always),
            "never" => Some(SyncPolicy::Never),
            _ => s
                .strip_prefix("every=")
                .and_then(|n| n.parse().ok())
                .filter(|&n| n > 0)
                .map(SyncPolicy::EveryN),
        }
    }
}

impl std::fmt::Display for SyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyncPolicy::Always => f.write_str("always"),
            SyncPolicy::EveryN(n) => write!(f, "every={n}"),
            SyncPolicy::Never => f.write_str("never"),
        }
    }
}

/// Tunables for a [`Wal`].
#[derive(Debug, Clone, Copy)]
pub struct WalConfig {
    /// Rotate to a new segment once the active one exceeds this size.
    pub segment_bytes: u64,
    /// The sync policy for appends.
    pub sync: SyncPolicy,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            segment_bytes: 1 << 20,
            sync: SyncPolicy::Always,
        }
    }
}

/// A recovered checkpoint: the folded state covering `lsn < upto`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Records with `lsn < upto` are folded into `state`.
    pub upto: Lsn,
    /// The caller-defined serialized state.
    pub state: Vec<u8>,
}

/// An interrupted append found (and healed) during recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// The segment file that carried the torn frame.
    pub segment: String,
    /// File offset the segment was (or should be) truncated to.
    pub kept_bytes: u64,
    /// Bytes of interrupted frame that were discarded.
    pub lost_bytes: u64,
    /// The scanner's description of what was missing.
    pub reason: &'static str,
}

/// What [`Wal::open`] found on disk.
#[derive(Debug)]
pub struct Recovery {
    /// The newest valid checkpoint, if any. Ownership of the state
    /// bytes passes to the caller, which folds them before replaying.
    pub snapshot: Option<Snapshot>,
    /// The torn tail that was truncated away, if any.
    pub torn_tail: Option<TornTail>,
    /// Live segment files after recovery.
    pub segments: usize,
    /// Records available to [`Wal::replay`] (those past the snapshot).
    pub records: u64,
    /// The LSN the next append will receive.
    pub next_lsn: Lsn,
}

// ---------------------------------------------------------------------------
// Directory scan (shared by Wal::open and WalReader::open)
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct SegMeta {
    name: String,
    first: Lsn,
    count: u64,
    /// Absolute offset of the end of the last good frame.
    good_end: u64,
    file_len: u64,
}

#[derive(Debug)]
struct Scan {
    snapshot: Option<Snapshot>,
    segments: Vec<SegMeta>,
    torn: Option<TornTail>,
    tmp_files: Vec<String>,
    /// Trailing segments with no complete header: no records, remove
    /// them. Deferred rotation sync can leave several (each unsynced
    /// rotation abandons a headerless file), not just one.
    headerless_tails: Vec<String>,
    next_lsn: Lsn,
    replay_records: u64,
}

fn scan_dir<I: Io>(io: &I, dir: &Path) -> io::Result<Scan> {
    let names = io.list(dir)?;
    let mut seg_names: Vec<(Lsn, String)> = Vec::new();
    let mut snap_names: Vec<(Lsn, String)> = Vec::new();
    let mut tmp_files = Vec::new();
    for name in names {
        if let Some(first) = parse_segment_name(&name) {
            seg_names.push((first, name));
        } else if let Some(upto) = parse_snapshot_name(&name) {
            snap_names.push((upto, name));
        } else if name.ends_with(".tmp") {
            tmp_files.push(name);
        }
    }
    seg_names.sort();
    snap_names.sort();

    // Newest snapshot that validates wins; older ones are compaction
    // leftovers, invalid ones are skipped (the chain check below
    // catches the case where skipping one loses committed records).
    let mut snapshot = None;
    for (upto, name) in snap_names.iter().rev() {
        match io.read(&dir.join(name)).and_then(|d| decode_snapshot(&d, *upto)) {
            Ok(state) => {
                snapshot = Some(Snapshot { upto: *upto, state });
                break;
            }
            Err(_) => continue,
        }
    }
    let base = snapshot.as_ref().map(|s| s.upto).unwrap_or(0);

    // Crash residue is only tolerated at the very end of the log: a
    // headerless segment is removable iff every later segment is also
    // headerless (deferred rotation sync can abandon a whole run of
    // them), and a torn frame is healable iff nothing but headerless
    // residue follows it.
    let lens: Vec<u64> = seg_names
        .iter()
        .map(|(_, name)| io.len(&dir.join(name)))
        .collect::<io::Result<_>>()?;
    let only_residue_after =
        |i: usize| lens[i + 1..].iter().all(|&l| l < SEGMENT_HEADER as u64);

    let mut segments: Vec<SegMeta> = Vec::new();
    let mut torn = None;
    let mut headerless_tails = Vec::new();
    let mut replay_records = 0u64;
    for (i, (first, name)) in seg_names.iter().enumerate() {
        let is_last = only_residue_after(i);
        let data = io.read(&dir.join(name))?;
        if data.len() < SEGMENT_HEADER {
            if is_last {
                // Crash between creating the segment and flushing its
                // header: it never held a record.
                headerless_tails.push(name.clone());
                continue;
            }
            return Err(corrupt(format!(
                "segment {name} is truncated mid-header but later segments exist"
            )));
        }
        check_segment_header(&data, *first)
            .map_err(|e| corrupt(format!("segment {name}: {e}")))?;

        // Chain check: this segment must start exactly where the
        // previous one ended (or at/below the snapshot bound for the
        // first).
        let expected = segments
            .last()
            .map(|s: &SegMeta| s.first + s.count)
            .unwrap_or(base);
        match (*first).cmp(&expected) {
            std::cmp::Ordering::Greater if segments.is_empty() => {
                return Err(corrupt(format!(
                    "records {expected}..{first} are missing (no segment or snapshot covers them)"
                )));
            }
            std::cmp::Ordering::Less if segments.is_empty() => {
                // First segment may straddle or predate the snapshot.
            }
            std::cmp::Ordering::Equal => {}
            _ => {
                return Err(corrupt(format!(
                    "segment chain gap: {name} starts at {first}, expected {expected}"
                )));
            }
        }

        let mut scanner = FrameScanner::new(&data[SEGMENT_HEADER..]);
        let mut count = 0u64;
        let mut bad = None;
        for item in scanner.by_ref() {
            match item {
                Ok(_) => count += 1,
                Err(e) => {
                    bad = Some(e);
                    break;
                }
            }
        }
        let good_end = (SEGMENT_HEADER + scanner.offset()) as u64;
        match bad {
            None => {}
            Some(FrameError::Torn { reason, .. }) if is_last => {
                torn = Some(TornTail {
                    segment: name.clone(),
                    kept_bytes: good_end,
                    lost_bytes: data.len() as u64 - good_end,
                    reason,
                });
            }
            Some(FrameError::Torn { offset, reason }) => {
                return Err(corrupt(format!(
                    "segment {name}: torn frame at offset {} ({reason}) in a non-final segment",
                    SEGMENT_HEADER + offset
                )));
            }
            Some(FrameError::Corrupt { offset, detail }) => {
                return Err(corrupt(format!(
                    "segment {name}: corrupt frame at offset {}: {detail}",
                    SEGMENT_HEADER + offset
                )));
            }
        }
        let seg_end = first + count;
        replay_records += seg_end.saturating_sub(base.max(*first));
        segments.push(SegMeta {
            name: name.clone(),
            first: *first,
            count,
            good_end,
            file_len: data.len() as u64,
        });
    }

    let next_lsn = segments
        .last()
        .map(|s| s.first + s.count)
        .unwrap_or(0)
        .max(base);
    Ok(Scan {
        snapshot,
        segments,
        torn,
        tmp_files,
        headerless_tails,
        next_lsn,
        replay_records,
    })
}

// ---------------------------------------------------------------------------
// Replay iterator
// ---------------------------------------------------------------------------

/// Streams `(lsn, payload)` pairs out of a WAL directory, one segment
/// in memory at a time.
#[derive(Debug)]
pub struct Replay<'a, I: Io> {
    io: &'a I,
    dir: &'a Path,
    /// `(first_lsn, name, byte_limit)`; `byte_limit` caps a torn final
    /// segment in read-only mode.
    segments: std::collections::VecDeque<(Lsn, String, Option<u64>)>,
    current: Option<(Vec<u8>, usize, Lsn)>,
    skip_below: Lsn,
    failed: bool,
}

impl<'a, I: Io> Replay<'a, I> {
    fn new(
        io: &'a I,
        dir: &'a Path,
        segments: std::collections::VecDeque<(Lsn, String, Option<u64>)>,
        skip_below: Lsn,
    ) -> Replay<'a, I> {
        Replay {
            io,
            dir,
            segments,
            current: None,
            skip_below,
            failed: false,
        }
    }

    fn load_next_segment(&mut self) -> io::Result<bool> {
        let Some((first, name, limit)) = self.segments.pop_front() else {
            return Ok(false);
        };
        let mut data = self.io.read(&self.dir.join(&name))?;
        if let Some(limit) = limit {
            data.truncate(limit as usize);
        }
        if data.len() < SEGMENT_HEADER {
            return Err(corrupt(format!("segment {name}: missing header")));
        }
        check_segment_header(&data, first)?;
        self.current = Some((data, SEGMENT_HEADER, first));
        Ok(true)
    }
}

impl<'a, I: Io> Iterator for Replay<'a, I> {
    type Item = io::Result<(Lsn, Vec<u8>)>;

    fn next(&mut self) -> Option<Self::Item> {
        enum Step {
            SegmentDone,
            Record(Lsn, Vec<u8>),
            Fail(String),
        }
        loop {
            if self.failed {
                return None;
            }
            if self.current.is_none() {
                match self.load_next_segment() {
                    Ok(true) => {}
                    Ok(false) => return None,
                    Err(e) => {
                        self.failed = true;
                        return Some(Err(e));
                    }
                }
            }
            let step = {
                let (data, offset, lsn) = self.current.as_mut().expect("segment just loaded");
                match FrameScanner::new(&data[*offset..]).next() {
                    None => Step::SegmentDone,
                    Some(Ok((_, payload))) => {
                        let record_lsn = *lsn;
                        *lsn += 1;
                        *offset += FRAME_HEADER + payload.len();
                        Step::Record(record_lsn, payload.to_vec())
                    }
                    Some(Err(FrameError::Torn { offset: o, reason })) => {
                        Step::Fail(format!("torn frame at offset {} ({reason})", *offset + o))
                    }
                    Some(Err(FrameError::Corrupt { offset: o, detail })) => {
                        Step::Fail(format!("corrupt frame at offset {}: {detail}", *offset + o))
                    }
                }
            };
            match step {
                Step::SegmentDone => self.current = None,
                Step::Record(lsn, payload) => {
                    if lsn < self.skip_below {
                        continue;
                    }
                    return Some(Ok((lsn, payload)));
                }
                Step::Fail(detail) => {
                    self.failed = true;
                    return Some(Err(corrupt(detail)));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Wal
// ---------------------------------------------------------------------------

/// An open, writable write-ahead log.
#[derive(Debug)]
pub struct Wal<I: Io> {
    io: I,
    dir: PathBuf,
    config: WalConfig,
    next_lsn: Lsn,
    snapshot_upto: Lsn,
    /// `(first_lsn, file name)` of every live segment; the last is active.
    segments: Vec<(Lsn, String)>,
    active_len: u64,
    appends_since_sync: u32,
    broken: bool,
    observer: ObserverSlot,
    /// When true, [`Wal::rotate`] does not fsync the closing segment
    /// inline; [`Wal::sync`] drains the backlog oldest-first instead.
    defer_rotation_sync: bool,
    /// Closed segments whose fsync was deferred, oldest first.
    unsynced_closed: Vec<String>,
}

impl<I: Io> Wal<I> {
    /// Opens (creating if necessary) and recovers a WAL directory.
    ///
    /// Removes abandoned `.tmp` snapshot files, truncates a torn final
    /// frame, validates every surviving frame's checksum and the LSN
    /// chain, and hands the caller the newest checkpoint plus the
    /// replay position. Mid-log corruption is an `InvalidData` error.
    pub fn open(io: I, dir: impl Into<PathBuf>, config: WalConfig) -> io::Result<(Wal<I>, Recovery)> {
        let dir = dir.into();
        let config = WalConfig {
            segment_bytes: config.segment_bytes.max(SEGMENT_HEADER as u64 + 64),
            ..config
        };
        io.create_dir_all(&dir)?;
        let mut scan = scan_dir(&io, &dir)?;
        for tmp in &scan.tmp_files {
            io.remove(&dir.join(tmp))?;
        }
        for name in scan.headerless_tails.drain(..) {
            io.remove(&dir.join(&name))?;
        }
        if let Some(t) = &scan.torn {
            io.truncate(&dir.join(&t.segment), t.kept_bytes)?;
            io.sync(&dir.join(&t.segment))?;
        }
        let mut segments: Vec<(Lsn, String)> = scan
            .segments
            .iter()
            .map(|s| (s.first, s.name.clone()))
            .collect();
        let active_len = match scan.segments.last() {
            Some(last) => last.good_end,
            None => {
                let name = segment_name(scan.next_lsn);
                let path = dir.join(&name);
                io.create(&path)?;
                io.append(&path, &segment_header(scan.next_lsn))?;
                io.sync(&path)?;
                segments.push((scan.next_lsn, name));
                SEGMENT_HEADER as u64
            }
        };
        let recovery = Recovery {
            snapshot: scan.snapshot.take(),
            torn_tail: scan.torn.take(),
            segments: segments.len(),
            records: scan.replay_records,
            next_lsn: scan.next_lsn,
        };
        let snapshot_upto = recovery.snapshot.as_ref().map(|s| s.upto).unwrap_or(0);
        Ok((
            Wal {
                io,
                dir,
                config,
                next_lsn: scan.next_lsn,
                snapshot_upto,
                segments,
                active_len,
                appends_since_sync: 0,
                broken: false,
                observer: ObserverSlot(None),
                defer_rotation_sync: false,
                unsynced_closed: Vec::new(),
            },
            recovery,
        ))
    }

    /// Defers the closing segment's fsync out of [`Wal::rotate`] (and
    /// therefore out of the appending thread): the next [`Wal::sync`]
    /// drains deferred segments oldest-first before syncing the active
    /// one, so a later segment is never durable ahead of an earlier one
    /// and the no-committed-gap recovery invariant holds. Meant for
    /// group-commit setups where a dedicated thread calls `sync` anyway;
    /// off by default, and pointless (but harmless) under
    /// [`SyncPolicy::Always`] since every append already synced the
    /// closing segment.
    pub fn set_deferred_rotation_sync(&mut self, defer: bool) {
        self.defer_rotation_sync = defer;
    }

    /// Installs (or replaces) the observer notified of this log's I/O.
    /// Without one, no timing clock is ever read.
    pub fn set_observer(&mut self, observer: Box<dyn WalObserver>) {
        self.observer = ObserverSlot(Some(observer));
    }

    /// The LSN the next append will receive.
    pub fn next_lsn(&self) -> Lsn {
        self.next_lsn
    }

    /// The active configuration.
    pub fn config(&self) -> &WalConfig {
        &self.config
    }

    /// Live segment count (including the active one).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The WAL directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn active_path(&self) -> PathBuf {
        self.dir.join(&self.segments.last().expect("always one segment").1)
    }

    fn check_broken(&self) -> io::Result<()> {
        if self.broken {
            return Err(io::Error::other(
                "wal is broken after an earlier I/O error; reopen to recover",
            ));
        }
        Ok(())
    }

    /// Marks the log broken on failure, so a half-applied operation is
    /// never built upon — recovery is a reopen.
    fn guard<T>(&mut self, r: io::Result<T>) -> io::Result<T> {
        if r.is_err() {
            self.broken = true;
        }
        r
    }

    /// Appends one record, returning its LSN. Durability depends on
    /// [`SyncPolicy`]; under `Always` a returned LSN is crash-proof.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<Lsn> {
        self.check_broken()?;
        let frame = encode_frame(payload);
        if self.active_len + frame.len() as u64 > self.config.segment_bytes
            && self.active_len > SEGMENT_HEADER as u64
        {
            self.rotate()?;
        }
        let path = self.active_path();
        let t0 = self.observer.t0();
        let append = self.io.append(&path, &frame);
        self.guard(append)?;
        if let Some(obs) = self.observer.0.as_mut() {
            obs.on_append(frame.len(), ObserverSlot::elapsed_ns(t0));
        }
        self.active_len += frame.len() as u64;
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        match self.config.sync {
            SyncPolicy::Always => {
                let t0 = self.observer.t0();
                let sync = self.io.sync(&path);
                self.guard(sync)?;
                if let Some(obs) = self.observer.0.as_mut() {
                    obs.on_sync(ObserverSlot::elapsed_ns(t0));
                }
            }
            SyncPolicy::EveryN(n) => {
                self.appends_since_sync += 1;
                if self.appends_since_sync >= n {
                    self.sync()?;
                }
            }
            SyncPolicy::Never => {}
        }
        Ok(lsn)
    }

    /// Forces everything appended so far to stable storage, including
    /// any closed segments whose rotation-time fsync was deferred
    /// (those drain oldest-first, so durability stays prefix-ordered).
    pub fn sync(&mut self) -> io::Result<()> {
        self.check_broken()?;
        while !self.unsynced_closed.is_empty() {
            let path = self.dir.join(&self.unsynced_closed[0]);
            let t0 = self.observer.t0();
            let sync = self.io.sync(&path);
            self.guard(sync)?;
            if let Some(obs) = self.observer.0.as_mut() {
                obs.on_sync(ObserverSlot::elapsed_ns(t0));
            }
            self.unsynced_closed.remove(0);
        }
        let path = self.active_path();
        let t0 = self.observer.t0();
        let sync = self.io.sync(&path);
        self.guard(sync)?;
        if let Some(obs) = self.observer.0.as_mut() {
            obs.on_sync(ObserverSlot::elapsed_ns(t0));
        }
        self.appends_since_sync = 0;
        Ok(())
    }

    /// Closes the active segment and starts a new one at `next_lsn`.
    fn rotate(&mut self) -> io::Result<()> {
        let t0 = self.observer.t0();
        if self.defer_rotation_sync {
            // The closing segment's fsync moves to the next `sync`
            // call (a group-commit thread, typically); `sync` drains
            // deferred segments oldest-first so durability ordering —
            // and therefore the no-committed-gap recovery invariant —
            // is preserved.
            let closing = self.segments.last().expect("always one segment").1.clone();
            self.unsynced_closed.push(closing);
        } else {
            // The outgoing segment is synced under EVERY policy: a
            // later segment may be synced before the earlier one
            // otherwise, and a crash would then leave a gap in the
            // committed log — which recovery must (and does) reject —
            // instead of a torn tail at the end.
            self.sync()?;
        }
        let name = segment_name(self.next_lsn);
        let path = self.dir.join(&name);
        let create = self.io.create(&path);
        self.guard(create)?;
        let header = self.io.append(&path, &segment_header(self.next_lsn));
        self.guard(header)?;
        if self.config.sync == SyncPolicy::Always && !self.defer_rotation_sync {
            let sync = self.io.sync(&path);
            self.guard(sync)?;
        }
        self.segments.push((self.next_lsn, name));
        self.active_len = SEGMENT_HEADER as u64;
        self.appends_since_sync = 0;
        if let Some(obs) = self.observer.0.as_mut() {
            obs.on_rotate();
            obs.on_rotate_stall(ObserverSlot::elapsed_ns(t0));
        }
        Ok(())
    }

    /// Writes a checkpoint covering every record appended so far, then
    /// rotates so [`Wal::compact`] can delete the folded segments.
    ///
    /// The active segment is synced first (the checkpoint must never
    /// claim records the log could still lose), the checkpoint file is
    /// written and synced under a `.tmp` name, and the atomic rename
    /// publishes it. Returns the coverage bound.
    pub fn snapshot(&mut self, state: &[u8]) -> io::Result<Lsn> {
        self.check_broken()?;
        let t_snap = self.observer.t0();
        let upto = self.next_lsn;
        self.sync()?;
        let final_name = snapshot_name(upto);
        let tmp_path = self.dir.join(format!("{final_name}.tmp"));
        let create = self.io.create(&tmp_path);
        self.guard(create)?;
        let body = encode_snapshot(upto, state);
        let append = self.io.append(&tmp_path, &body);
        self.guard(append)?;
        let sync = self.io.sync(&tmp_path);
        self.guard(sync)?;
        let rename = self.io.rename(&tmp_path, &self.dir.join(&final_name));
        self.guard(rename)?;
        self.snapshot_upto = upto;
        // Rotate unless the active segment is already empty and aligned.
        let (active_first, _) = *self.segments.last().expect("always one segment");
        if !(active_first == upto && self.active_len == SEGMENT_HEADER as u64) {
            self.rotate()?;
        }
        if let Some(obs) = self.observer.0.as_mut() {
            obs.on_snapshot(state.len(), ObserverSlot::elapsed_ns(t_snap));
        }
        Ok(upto)
    }

    /// Deletes segments wholly covered by the newest checkpoint, plus
    /// superseded checkpoint files. Returns how many files went away.
    pub fn compact(&mut self) -> io::Result<usize> {
        self.check_broken()?;
        let t0 = self.observer.t0();
        let upto = self.snapshot_upto;
        let mut removed = 0;
        while self.segments.len() > 1 && self.segments[1].0 <= upto {
            let name = self.segments[0].1.clone();
            let remove = self.io.remove(&self.dir.join(&name));
            self.guard(remove)?;
            self.unsynced_closed.retain(|n| n != &name);
            self.segments.remove(0);
            removed += 1;
        }
        for name in self.io.list(&self.dir)? {
            if parse_snapshot_name(&name).is_some_and(|s| s < upto) {
                let remove = self.io.remove(&self.dir.join(&name));
                self.guard(remove)?;
                removed += 1;
            }
        }
        if let Some(obs) = self.observer.0.as_mut() {
            obs.on_compact(removed, ObserverSlot::elapsed_ns(t0));
        }
        Ok(removed)
    }

    /// Iterates the records past the newest checkpoint, in LSN order.
    pub fn replay(&self) -> Replay<'_, I> {
        let segments = self
            .segments
            .iter()
            .map(|(first, name)| (*first, name.clone(), None))
            .collect();
        Replay::new(&self.io, &self.dir, segments, self.snapshot_upto)
    }
}

// ---------------------------------------------------------------------------
// WalReader
// ---------------------------------------------------------------------------

/// Read-only access to a WAL directory: validates and replays without
/// truncating the torn tail or touching any file — safe to point at a
/// directory another process owns.
#[derive(Debug)]
pub struct WalReader<I: Io> {
    io: I,
    dir: PathBuf,
    snapshot: Option<Snapshot>,
    /// Records below this are covered by the snapshot — remembered
    /// separately so [`WalReader::take_snapshot`] does not change what
    /// [`WalReader::records`] yields.
    snapshot_upto: Lsn,
    segments: Vec<(Lsn, String, Option<u64>)>,
    torn: Option<TornTail>,
    next_lsn: Lsn,
    records: u64,
}

impl<I: Io> WalReader<I> {
    /// Scans and validates a WAL directory read-only. A torn final
    /// frame is tolerated (and reported via [`WalReader::torn_tail`]);
    /// mid-log corruption is an error, exactly as in [`Wal::open`].
    pub fn open(io: I, dir: impl Into<PathBuf>) -> io::Result<WalReader<I>> {
        let dir = dir.into();
        let scan = scan_dir(&io, &dir)?;
        let segments = scan
            .segments
            .iter()
            .map(|s| {
                let limit = (s.good_end < s.file_len).then_some(s.good_end);
                (s.first, s.name.clone(), limit)
            })
            .collect();
        Ok(WalReader {
            io,
            dir,
            snapshot_upto: scan.snapshot.as_ref().map(|s| s.upto).unwrap_or(0),
            snapshot: scan.snapshot,
            segments,
            torn: scan.torn,
            next_lsn: scan.next_lsn,
            records: scan.replay_records,
        })
    }

    /// The newest valid checkpoint.
    pub fn snapshot(&self) -> Option<&Snapshot> {
        self.snapshot.as_ref()
    }

    /// Takes ownership of the checkpoint state.
    pub fn take_snapshot(&mut self) -> Option<Snapshot> {
        self.snapshot.take()
    }

    /// The torn tail found during the scan, if any.
    pub fn torn_tail(&self) -> Option<&TornTail> {
        self.torn.as_ref()
    }

    /// The LSN the owning writer would assign next.
    pub fn next_lsn(&self) -> Lsn {
        self.next_lsn
    }

    /// How many records [`WalReader::records`] will yield.
    pub fn record_count(&self) -> u64 {
        self.records
    }

    /// Iterates the records past the checkpoint, in LSN order —
    /// regardless of whether the checkpoint state itself has already
    /// been taken with [`WalReader::take_snapshot`].
    pub fn records(&self) -> Replay<'_, I> {
        Replay::new(
            &self.io,
            &self.dir,
            self.segments.iter().cloned().collect(),
            self.snapshot_upto,
        )
    }
}
