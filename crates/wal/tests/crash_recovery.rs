//! Crash-recovery property tests: an injected fault at an arbitrary
//! mutating operation, followed by a power loss that keeps an arbitrary
//! fraction of the unsynced tail, must never leave the log in a state
//! [`Wal::open`] refuses to recover — and under [`SyncPolicy::Always`]
//! every acknowledged append must survive.

use std::path::Path;
use uucs_harness::prelude::*;
use uucs_wal::{FaultPlan, MemIo, SyncPolicy, Wal, WalConfig};

/// Deterministic payload for the `i`th append: varied length (so some
/// runs rotate segments, some don't) and content derived from the index
/// (so replay mismatches are caught byte-for-byte).
fn payload(i: u64, spice: u64) -> Vec<u8> {
    let len = ((i * 7 + spice) % 61) as usize;
    let mut p = format!("rec-{i:04}-").into_bytes();
    p.extend((0..len).map(|j| b'a' + ((i as usize + j) % 26) as u8));
    p
}

/// Appends up to `n` records, stopping at the first error (the injected
/// fault). Returns how many appends were acknowledged.
fn drive(wal: &mut Wal<MemIo>, n: u64, spice: u64) -> u64 {
    for i in 0..n {
        if wal.append(&payload(i, spice)).is_err() {
            return i;
        }
    }
    n
}

/// Recovers the directory and checks that the replayed records are an
/// exact LSN-ordered prefix of the attempted append sequence. Returns
/// the number of replayed records.
fn check_recovery(
    io: &MemIo,
    dir: &Path,
    config: WalConfig,
    spice: u64,
    attempted: u64,
) -> Result<u64, uucs_harness::prop::CaseError> {
    let opened = Wal::open(io.clone(), dir, config);
    prop_assert!(opened.is_ok(), "recovery errored: {:?}", opened.err());
    let (wal, recovery) = opened.unwrap();
    prop_assert_eq!(recovery.snapshot, None);
    let mut replayed = 0u64;
    for item in wal.replay() {
        prop_assert!(item.is_ok(), "replay errored: {:?}", item.err());
        let (lsn, bytes) = item.unwrap();
        prop_assert_eq!(lsn, replayed);
        prop_assert_eq!(bytes, payload(lsn, spice));
        replayed += 1;
    }
    prop_assert_eq!(recovery.records, replayed);
    prop_assert_eq!(recovery.next_lsn, replayed);
    prop_assert!(
        replayed <= attempted,
        "replayed {replayed} of only {attempted} attempts"
    );
    Ok(replayed)
}

proptest! {
    /// Under `SyncPolicy::Always`, an acknowledged append is durable:
    /// whatever operation the fault hits and however much of the page
    /// cache the crash flushes, recovery succeeds and replays at least
    /// every acknowledged record — plus at most the one in-flight append
    /// whose frame happened to reach the disk whole.
    #[test]
    fn acknowledged_appends_survive_any_crash(
        n in 1u64..40,
        fail_at in 0u64..100,
        short_raw in 0usize..24,
        frac_pct in 0u32..101,
        spice in 0u64..1000,
    ) {
        let io = MemIo::new();
        let dir = Path::new("/wal");
        let config = WalConfig { segment_bytes: 256, sync: SyncPolicy::Always };
        let (mut wal, _) = Wal::open(io.clone(), dir, config).unwrap();
        io.set_fault(Some(FaultPlan {
            fail_at,
            short_write: (short_raw < 16).then_some(short_raw),
        }));
        let acked = drive(&mut wal, n, spice);
        io.crash(frac_pct as f64 / 100.0);

        let replayed = check_recovery(&io, dir, config, spice, n)?;
        prop_assert!(
            replayed >= acked,
            "lost acknowledged records: acked {acked}, replayed {replayed}"
        );
        prop_assert!(
            replayed <= acked + 1,
            "more than the in-flight record appeared: acked {acked}, replayed {replayed}"
        );
    }

    /// Under `SyncPolicy::EveryN(k)`, recovery still always succeeds and
    /// the loss window is bounded: at most `k - 1` acknowledged records
    /// (plus the in-flight one) vanish, and what survives is an exact
    /// prefix of the append sequence — never a gap, never a reorder.
    #[test]
    fn every_n_loses_at_most_a_bounded_suffix(
        n in 1u64..40,
        k in 1u32..8,
        fail_at in 0u64..100,
        short_raw in 0usize..24,
        frac_pct in 0u32..101,
        spice in 0u64..1000,
    ) {
        let io = MemIo::new();
        let dir = Path::new("/wal");
        let config = WalConfig { segment_bytes: 256, sync: SyncPolicy::EveryN(k) };
        let (mut wal, _) = Wal::open(io.clone(), dir, config).unwrap();
        io.set_fault(Some(FaultPlan {
            fail_at,
            short_write: (short_raw < 16).then_some(short_raw),
        }));
        let acked = drive(&mut wal, n, spice);
        io.crash(frac_pct as f64 / 100.0);

        let replayed = check_recovery(&io, dir, config, spice, n)?;
        prop_assert!(
            replayed + u64::from(k) > acked,
            "lost more than the sync window: acked {acked}, replayed {replayed}, k {k}"
        );
    }

    /// A torn final frame is truncated, never reported as an error, and
    /// recovery is idempotent: a second open of the healed directory
    /// finds no torn tail and replays the same records.
    #[test]
    fn torn_tail_heals_idempotently(
        n in 1u64..30,
        cut in 1usize..8,
        spice in 0u64..1000,
    ) {
        let io = MemIo::new();
        let dir = Path::new("/wal");
        let config = WalConfig { segment_bytes: 4096, sync: SyncPolicy::Always };
        let (mut wal, _) = Wal::open(io.clone(), dir, config).unwrap();
        let acked = drive(&mut wal, n, spice);
        prop_assert_eq!(acked, n);
        prop_assert_eq!(wal.segment_count(), 1);
        // Tear the tail: one more append whose frame reaches the disk
        // whole (fault after write, crash flushes the cache), then cut
        // the durable image mid-frame — the torn-but-partially-flushed
        // residue of an interrupted append.
        let extra = payload(n, spice);
        let frame_len = 8 + extra.len();
        prop_assume!(cut < frame_len);
        io.set_fault(Some(FaultPlan { fail_at: io.mutating_ops(), short_write: None }));
        let _ = wal.append(&extra);
        io.crash(1.0);
        let seg = dir.join(format!("{:016x}.wal", 0));
        let whole = io.contents(&seg).expect("first segment exists");
        let torn_len = whole.len() - cut;
        {
            use uucs_wal::Io;
            io.truncate(&seg, torn_len as u64).unwrap();
            io.sync(&seg).unwrap();
        }

        let (wal2, rec2) = Wal::open(io.clone(), dir, config).unwrap();
        let torn = rec2.torn_tail.expect("torn tail must be detected");
        prop_assert_eq!(torn.kept_bytes + torn.lost_bytes, torn_len as u64);
        prop_assert_eq!(rec2.records, n);
        drop(wal2);

        let (wal3, rec3) = Wal::open(io.clone(), dir, config).unwrap();
        prop_assert!(rec3.torn_tail.is_none(), "second open found {:?}", rec3.torn_tail);
        prop_assert_eq!(rec3.records, n);
        prop_assert_eq!(wal3.replay().count() as u64, n);
    }

    /// Several crash/recover/append cycles in a row: the log stays an
    /// exact prefix-consistent record of every acknowledged append.
    #[test]
    fn repeated_crashes_compose(
        rounds in prop::collection::vec(0u64..1_000_000, 1..5),
        spice in 0u64..1000,
    ) {
        let io = MemIo::new();
        let dir = Path::new("/wal");
        let config = WalConfig { segment_bytes: 256, sync: SyncPolicy::Always };
        let mut durable = 0u64; // lower bound on surviving records
        let mut written = 0u64; // upper bound (incl. in-flight)
        for &round in &rounds {
            // Decode one draw into this round's shape.
            let n = round % 12 + 1;
            let fail_offset = (round / 12) % 40;
            let frac_pct = (round / 480) % 101;
            let opened = Wal::open(io.clone(), dir, config);
            prop_assert!(opened.is_ok(), "recovery errored: {:?}", opened.err());
            let (mut wal, recovery) = opened.unwrap();
            let base = recovery.next_lsn;
            prop_assert!(base >= durable, "round lost records: {base} < {durable}");
            prop_assert!(base <= written, "round invented records: {base} > {written}");
            io.set_fault(Some(FaultPlan {
                fail_at: io.mutating_ops() + fail_offset,
                short_write: None,
            }));
            let mut acked = 0u64;
            for i in 0..n {
                if wal.append(&payload(base + i, spice)).is_err() {
                    break;
                }
                acked += 1;
            }
            durable = base + acked;
            written = (base + acked + u64::from(acked < n)).max(written);
            io.crash(frac_pct as f64 / 100.0);
        }
        let (wal, recovery) = Wal::open(io.clone(), dir, config).unwrap();
        prop_assert!(recovery.next_lsn >= durable);
        prop_assert!(recovery.next_lsn <= written);
        for (i, item) in wal.replay().enumerate() {
            prop_assert!(item.is_ok(), "replay errored: {:?}", item.err());
            let (lsn, bytes) = item.unwrap();
            prop_assert_eq!(lsn, i as u64);
            prop_assert_eq!(bytes, payload(lsn, spice));
        }
    }
}
