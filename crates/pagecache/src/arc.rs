//! The ARC (Adaptive Replacement Cache) policy: the classic four-list
//! design from Megiddo & Modha.
//!
//! * `T1` holds pages seen exactly once recently (recency).
//! * `T2` holds pages seen at least twice recently (frequency).
//! * `B1` / `B2` are *ghost* lists: keys recently evicted from `T1` /
//!   `T2`, kept without their data so a re-reference can teach the
//!   policy which half deserved more room.
//! * The adaptation target `p` is the desired size of `T1`; a hit in
//!   `B1` grows it (recency was undervalued), a hit in `B2` shrinks it.
//!
//! The policy is pure bookkeeping over keys — it owns no page data and
//! performs no I/O. [`PageCache`](crate::cache::PageCache) pairs it
//! with frame storage and write-back. Pinned pages are never chosen as
//! victims: the replacement scan walks from the LRU end past pinned
//! entries, falling back to the other list, and reports "no victim"
//! (transient overflow) only when everything resident is pinned.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone, Copy)]
struct Node<K> {
    key: K,
    prev: usize,
    next: usize,
}

/// An O(1) LRU list: slab-backed doubly-linked nodes plus a key index.
#[derive(Debug)]
struct LruList<K: Copy + Eq + Hash> {
    nodes: Vec<Node<K>>,
    free: Vec<usize>,
    /// MRU end.
    head: usize,
    /// LRU end.
    tail: usize,
    index: HashMap<K, usize>,
}

impl<K: Copy + Eq + Hash> LruList<K> {
    fn new() -> Self {
        LruList {
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            index: HashMap::new(),
        }
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    fn contains(&self, key: &K) -> bool {
        self.index.contains_key(key)
    }

    fn push_mru(&mut self, key: K) {
        debug_assert!(!self.contains(&key));
        let node = Node {
            key,
            prev: NIL,
            next: self.head,
        };
        let id = match self.free.pop() {
            Some(id) => {
                self.nodes[id] = node;
                id
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        };
        if self.head != NIL {
            self.nodes[self.head].prev = id;
        }
        self.head = id;
        if self.tail == NIL {
            self.tail = id;
        }
        self.index.insert(key, id);
    }

    fn unlink(&mut self, id: usize) -> K {
        let Node { key, prev, next } = self.nodes[id];
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.index.remove(&key);
        self.free.push(id);
        key
    }

    /// Removes `key` if present; true when it was.
    fn remove(&mut self, key: &K) -> bool {
        match self.index.get(key).copied() {
            Some(id) => {
                self.unlink(id);
                true
            }
            None => false,
        }
    }

    /// Pops the LRU entry.
    fn pop_lru(&mut self) -> Option<K> {
        (self.tail != NIL).then(|| self.unlink(self.tail))
    }

    /// Pops the LRU-most entry satisfying `pred` (skipping, e.g.,
    /// pinned pages).
    fn pop_lru_where(&mut self, mut pred: impl FnMut(&K) -> bool) -> Option<K> {
        let mut id = self.tail;
        while id != NIL {
            if pred(&self.nodes[id].key) {
                return Some(self.unlink(id));
            }
            id = self.nodes[id].prev;
        }
        None
    }

    /// All keys currently in the list (unordered).
    fn keys(&self) -> impl Iterator<Item = &K> {
        self.index.keys()
    }
}

/// How an access classified against the four lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// The key was resident (`T1` or `T2`).
    Hit,
    /// Ghost hit in `B1`: recently evicted from the recency side.
    GhostRecency,
    /// Ghost hit in `B2`: recently evicted from the frequency side.
    GhostFrequency,
    /// Never seen (or fully forgotten).
    Cold,
}

/// The ARC replacement policy over keys of type `K`.
#[derive(Debug)]
pub struct ArcPolicy<K: Copy + Eq + Hash> {
    cap: usize,
    /// Adaptation target for `|T1|`, in `0..=cap`.
    p: usize,
    t1: LruList<K>,
    t2: LruList<K>,
    b1: LruList<K>,
    b2: LruList<K>,
}

impl<K: Copy + Eq + Hash> ArcPolicy<K> {
    /// A policy managing at most `cap` resident keys (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        ArcPolicy {
            cap: cap.max(1),
            p: 0,
            t1: LruList::new(),
            t2: LruList::new(),
            b1: LruList::new(),
            b2: LruList::new(),
        }
    }

    /// Resident key count (`|T1| + |T2|`).
    pub fn resident(&self) -> usize {
        self.t1.len() + self.t2.len()
    }

    /// The capacity this policy was built with.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// The current adaptation target for the recency side (test/debug
    /// introspection).
    pub fn target_recency(&self) -> usize {
        self.p
    }

    /// True when `key` is resident (would be a [`Access::Hit`]).
    pub fn is_resident(&self, key: &K) -> bool {
        self.t1.contains(key) || self.t2.contains(key)
    }

    /// True when `key` is remembered only as a ghost.
    pub fn is_ghost(&self, key: &K) -> bool {
        self.b1.contains(key) || self.b2.contains(key)
    }

    /// The ARC `REPLACE` subroutine: demotes one unpinned resident key
    /// to its ghost list and returns it, or `None` when every resident
    /// key is pinned (the caller overflows transiently).
    fn replace(&mut self, ghost_b2: bool, pinned: &mut impl FnMut(&K) -> bool) -> Option<K> {
        let t1_len = self.t1.len();
        let from_t1 =
            t1_len >= 1 && (t1_len > self.p || (ghost_b2 && t1_len == self.p));
        if from_t1 {
            if let Some(k) = self.t1.pop_lru_where(|k| !pinned(k)) {
                self.b1.push_mru(k);
                return Some(k);
            }
            if let Some(k) = self.t2.pop_lru_where(|k| !pinned(k)) {
                self.b2.push_mru(k);
                return Some(k);
            }
        } else {
            if let Some(k) = self.t2.pop_lru_where(|k| !pinned(k)) {
                self.b2.push_mru(k);
                return Some(k);
            }
            if let Some(k) = self.t1.pop_lru_where(|k| !pinned(k)) {
                self.b1.push_mru(k);
                return Some(k);
            }
        }
        None
    }

    /// Records an access to `key` and makes it resident (MRU of `T1`
    /// on a cold miss, MRU of `T2` otherwise). Returns how the access
    /// classified plus the key evicted to make room, if any. `pinned`
    /// guards keys that must not be chosen as victims.
    pub fn access(
        &mut self,
        key: K,
        mut pinned: impl FnMut(&K) -> bool,
    ) -> (Access, Option<K>) {
        // Case I: resident hit — promote to the frequency side.
        if self.t1.remove(&key) || self.t2.remove(&key) {
            self.t2.push_mru(key);
            return (Access::Hit, None);
        }
        // Case II: ghost hit in B1 — recency was undervalued; grow p.
        if self.b1.contains(&key) {
            let delta = (self.b2.len() / self.b1.len().max(1)).max(1);
            self.p = (self.p + delta).min(self.cap);
            self.b1.remove(&key);
            let evicted = self.replace(false, &mut pinned);
            self.t2.push_mru(key);
            return (Access::GhostRecency, evicted);
        }
        // Case III: ghost hit in B2 — frequency was undervalued; shrink p.
        if self.b2.contains(&key) {
            let delta = (self.b1.len() / self.b2.len().max(1)).max(1);
            self.p = self.p.saturating_sub(delta);
            self.b2.remove(&key);
            let evicted = self.replace(true, &mut pinned);
            self.t2.push_mru(key);
            return (Access::GhostFrequency, evicted);
        }
        // Case IV: cold miss. (`>=` rather than `==`: pinned misses
        // can leave the lists transiently over capacity, and the next
        // unpinned miss must still shed.)
        let mut evicted = None;
        let l1 = self.t1.len() + self.b1.len();
        if l1 >= self.cap {
            if !self.b1.is_empty() {
                self.b1.pop_lru();
                evicted = self.replace(false, &mut pinned);
            } else {
                // B1 is empty and T1 is full: drop T1's LRU outright
                // (no ghost), per the paper.
                evicted = self.t1.pop_lru_where(|k| !pinned(k));
            }
        } else {
            let total = l1 + self.t2.len() + self.b2.len();
            if total >= self.cap {
                if total >= 2 * self.cap {
                    self.b2.pop_lru();
                }
                evicted = self.replace(false, &mut pinned);
            }
        }
        self.t1.push_mru(key);
        (Access::Cold, evicted)
    }

    /// Forgets `key` entirely (resident or ghost); true if it was
    /// known. Used for invalidation — no ghost is left behind.
    pub fn remove(&mut self, key: &K) -> bool {
        self.t1.remove(key)
            || self.t2.remove(key)
            || self.b1.remove(key)
            || self.b2.remove(key)
    }

    /// Forgets every key failing `keep` — resident and ghost alike.
    pub fn retain(&mut self, mut keep: impl FnMut(&K) -> bool) {
        let mut doomed: Vec<K> = Vec::new();
        for list in [&self.t1, &self.t2, &self.b1, &self.b2] {
            doomed.extend(list.keys().filter(|k| !keep(k)).copied());
        }
        for k in doomed {
            self.remove(&k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_pins(_: &u64) -> bool {
        false
    }

    /// Drives `n` cold accesses 0..n.
    fn warm(policy: &mut ArcPolicy<u64>, n: u64) {
        for k in 0..n {
            policy.access(k, no_pins);
        }
    }

    #[test]
    fn hit_promotes_from_recency_to_frequency() {
        let mut p = ArcPolicy::new(4);
        let (a, ev) = p.access(1, no_pins);
        assert_eq!(a, Access::Cold);
        assert!(ev.is_none());
        let (a, _) = p.access(1, no_pins);
        assert_eq!(a, Access::Hit);
        assert!(p.is_resident(&1));
    }

    #[test]
    fn cold_misses_evict_t1_lru_without_ghost_when_t1_is_full() {
        // Fill T1 to capacity with single-touch keys, never re-touching:
        // B1 stays empty, so the cap+1'th cold miss drops T1's LRU with
        // no ghost left behind.
        let mut p = ArcPolicy::new(3);
        warm(&mut p, 3);
        assert_eq!(p.resident(), 3);
        let (a, ev) = p.access(100, no_pins);
        assert_eq!(a, Access::Cold);
        assert_eq!(ev, Some(0), "T1's LRU is the victim");
        assert!(!p.is_ghost(&0), "case-IV T1 eviction leaves no ghost");
        assert_eq!(p.resident(), 3);
    }

    #[test]
    fn evictions_via_replace_leave_ghosts_and_ghost_hits_readmit() {
        let mut p = ArcPolicy::new(3);
        // Make 0..3 frequent (resident in T2).
        warm(&mut p, 3);
        for k in 0..3 {
            p.access(k, no_pins);
        }
        // A cold key now evicts through REPLACE (T1 empty → T2 side),
        // leaving a ghost in B2.
        let (_, ev) = p.access(50, no_pins);
        let gone = ev.expect("cache at capacity must evict");
        assert!(p.is_ghost(&gone));
        // Touching the ghost is a frequency ghost hit and readmits it.
        let (a, _) = p.access(gone, no_pins);
        assert_eq!(a, Access::GhostFrequency);
        assert!(p.is_resident(&gone));
        assert!(!p.is_ghost(&gone));
    }

    #[test]
    fn b1_ghost_hit_grows_the_recency_target() {
        let mut p = ArcPolicy::new(2);
        // 0,1 resident in T1; 2 evicts one to B1 (l1 == cap path).
        warm(&mut p, 2);
        // Re-touch 0 and 1 so they sit in T2, then stream cold keys
        // through T1 to build B1 ghosts.
        p.access(0, no_pins);
        p.access(1, no_pins);
        let (_, ev) = p.access(10, no_pins);
        let ghost = ev.expect("evicts");
        let p_before = p.target_recency();
        // Ghost-hit whichever side the victim landed on; B1 hits must
        // raise p, B2 hits must not.
        let (access, _) = p.access(ghost, no_pins);
        match access {
            Access::GhostRecency => assert!(p.target_recency() > p_before),
            Access::GhostFrequency => assert!(p.target_recency() <= p_before),
            other => panic!("expected a ghost hit, got {other:?}"),
        }
    }

    #[test]
    fn b2_ghost_hit_shrinks_the_recency_target() {
        let mut p = ArcPolicy::new(2);
        warm(&mut p, 2);
        p.access(0, no_pins); // 0 → T2
        p.access(1, no_pins); // 1 → T2
        let (_, ev) = p.access(7, no_pins); // evicts from T2 → B2 ghost
        let ghost = ev.unwrap();
        assert!(p.is_ghost(&ghost));
        // Grow p first via a B1 ghost: evict 7 (in T1) by... simpler:
        // force p > 0 directly through a recency ghost round-trip.
        let (_, ev2) = p.access(8, no_pins);
        if let Some(g2) = ev2 {
            p.access(g2, no_pins); // some ghost hit; p adapts
        }
        let before = p.target_recency();
        let (a, _) = p.access(ghost, no_pins);
        assert_eq!(a, Access::GhostFrequency);
        assert!(p.target_recency() <= before, "B2 hit never grows p");
    }

    #[test]
    fn scan_resistance_one_pass_scan_does_not_flush_the_frequent_set() {
        // Classic ARC selling point: keys 0..4 are hot (touched twice),
        // then a long one-pass scan streams through. The hot set must
        // still be mostly resident afterwards because the scan only
        // fights for the T1 side.
        let mut p = ArcPolicy::new(8);
        for k in 0..4u64 {
            p.access(k, no_pins);
            p.access(k, no_pins);
        }
        for k in 100..140u64 {
            p.access(k, no_pins);
        }
        let hot_survivors = (0..4u64).filter(|k| p.is_resident(k)).count();
        assert!(
            hot_survivors >= 3,
            "scan flushed the frequent set: {hot_survivors}/4 left"
        );
    }

    #[test]
    fn pinned_keys_are_never_victims() {
        let mut p = ArcPolicy::new(2);
        warm(&mut p, 2);
        // Everything resident is pinned: a cold miss finds no victim
        // and the cache transiently overflows.
        let (_, ev) = p.access(9, |_| true);
        assert!(ev.is_none());
        assert_eq!(p.resident(), 3, "transient overflow while all pinned");
        // With pins lifted, later misses shed the overflow.
        let (_, ev) = p.access(10, |k| *k == 9);
        assert!(ev.is_some());
        assert_ne!(ev, Some(9), "the pinned key survived");
    }

    #[test]
    fn remove_forgets_residents_and_ghosts() {
        let mut p = ArcPolicy::new(2);
        warm(&mut p, 2);
        let (_, ev) = p.access(5, no_pins);
        let ghost_or_dropped = ev.unwrap();
        assert!(p.remove(&ghost_or_dropped) || !p.is_ghost(&ghost_or_dropped));
        assert!(p.remove(&5));
        assert!(!p.is_resident(&5));
        assert!(!p.is_ghost(&5));
        // Re-accessing after removal is a cold start again.
        let (a, _) = p.access(5, no_pins);
        assert_eq!(a, Access::Cold);
    }

    #[test]
    fn retain_drops_a_whole_file_worth_of_keys() {
        let mut p = ArcPolicy::new(4);
        warm(&mut p, 4);
        p.retain(|k| *k % 2 == 0);
        assert!(p.is_resident(&0) && p.is_resident(&2));
        assert!(!p.is_resident(&1) && !p.is_ghost(&1));
        assert!(!p.is_resident(&3) && !p.is_ghost(&3));
    }

    #[test]
    fn ghost_memory_is_bounded_by_two_c() {
        let mut p = ArcPolicy::new(4);
        for k in 0..1000u64 {
            p.access(k, no_pins);
        }
        let total = p.t1.len() + p.t2.len() + p.b1.len() + p.b2.len();
        assert!(total <= 2 * p.capacity(), "directory grew past 2c: {total}");
        assert!(p.resident() <= p.capacity());
    }

    /// Exhaustive-ish invariant check under a mixed workload: resident
    /// count never exceeds c, directory never exceeds 2c, p stays in
    /// range, and an evicted key is never still resident.
    #[test]
    fn invariants_hold_under_a_skewed_mixed_workload() {
        let mut p = ArcPolicy::new(8);
        let mut x = 0x2545f491_4f6cdd1du64;
        for i in 0..5000u64 {
            // xorshift; skew towards a small hot set.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = if x % 100 < 60 { x % 6 } else { x % 512 };
            let (_, ev) = p.access(key, no_pins);
            if let Some(e) = ev {
                assert!(!p.is_resident(&e), "iteration {i}: victim still resident");
            }
            assert!(p.resident() <= 8, "iteration {i}");
            assert!(p.target_recency() <= 8, "iteration {i}");
            let dir = p.t1.len() + p.t2.len() + p.b1.len() + p.b2.len();
            assert!(dir <= 16, "iteration {i}: directory {dir}");
        }
    }
}
