//! # uucs-pagecache — ARC page cache + disk scheduler for the WAL-backed stores
//!
//! The server tier's durability path (`uucs-wal`) does raw, unbuffered
//! file I/O: every checkpoint load, replay, backfill, and compaction
//! scan re-reads its segments from the filesystem, and segment
//! rotation stalls ride the verb-handler threads. This crate is the
//! storage-engine layer underneath it:
//!
//! * [`ArcPolicy`] — the classic Adaptive Replacement Cache policy
//!   (T1/T2 resident lists, B1/B2 ghost lists, adaptive recency
//!   target), pure bookkeeping with pin-aware victim selection.
//! * [`PageCache`] — fixed-size page frames keyed by `(file-id,
//!   page-no)` over the policy: pin/unpin, dirty tracking, ordered
//!   write-back through the [`PageIo`] trait.
//! * [`CachedIo`] — the cache as a drop-in [`uucs_wal::Io`] backend:
//!   write-through (durability semantics of the wrapped backend are
//!   preserved bit-for-bit, so the `MemIo` fault-injection harness
//!   drives it unchanged), read-cached (warm replays and backfills are
//!   served from memory). Capacity 0 is a strict passthrough.
//! * [`DiskScheduler`] — a bounded request queue (read / write / fsync
//!   / rotate, completion [`Ticket`]s) serviced by a dedicated I/O
//!   thread pool, so group-commit fsyncs parallelize across shards and
//!   compaction leaves the handler threads alone.
//!
//! `uucs-wal` itself stays dependency-free: this crate depends on the
//! WAL's `Io` trait (one direction only), and the server composes the
//! two — the same borrowed-hook pattern `WalObserver` established.
//! Design notes live in the repository's `DESIGN.md` §5i.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod arc;
pub mod cache;
pub mod io;
pub mod sched;

pub use crate::arc::{Access, ArcPolicy};
pub use crate::cache::{CacheObserver, CacheStats, PageCache, PageIo, PageKey};
pub use crate::io::{CachedIo, IoPages, DEFAULT_PAGE_SIZE};
pub use crate::sched::{DiskScheduler, OpKind, SchedObserver, Ticket};

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;
    use uucs_harness::prelude::*;
    use uucs_wal::{Io, MemIo, SyncPolicy, Wal, WalConfig};

    fn cfg(segment_bytes: u64, sync: SyncPolicy) -> WalConfig {
        WalConfig {
            segment_bytes,
            sync,
        }
    }

    #[test]
    fn cached_io_round_trips_reads_and_appends() {
        let io = CachedIo::new(MemIo::new(), 64, 64);
        let p = Path::new("/d/a.log");
        io.create_dir_all(Path::new("/d")).unwrap();
        io.append(p, b"hello ").unwrap();
        io.append(p, b"world").unwrap();
        assert_eq!(io.read(p).unwrap(), b"hello world");
        assert_eq!(io.len(p).unwrap(), 11);
        assert_eq!(io.read_at(p, 6, 5).unwrap(), b"world");
        // Second read is served from resident pages.
        let miss_before = io.stats().misses;
        assert_eq!(io.read(p).unwrap(), b"hello world");
        assert_eq!(io.stats().misses, miss_before, "warm read: no new misses");
        assert!(io.stats().hits > 0);
    }

    #[test]
    fn cached_io_stays_coherent_across_truncate_rename_remove() {
        let io = CachedIo::new(MemIo::new(), 64, 64);
        let a = Path::new("/d/a.log");
        let b = Path::new("/d/b.log");
        io.append(a, &[7u8; 200]).unwrap();
        assert_eq!(io.read(a).unwrap().len(), 200);
        io.truncate(a, 100).unwrap();
        assert_eq!(io.read(a).unwrap(), vec![7u8; 100]);
        io.rename(a, b).unwrap();
        assert_eq!(io.read(b).unwrap(), vec![7u8; 100]);
        assert!(io.read(a).is_err());
        io.remove(b).unwrap();
        assert!(io.read(b).is_err());
    }

    #[test]
    fn passthrough_mode_is_transparent() {
        let mem = MemIo::new();
        let io = CachedIo::passthrough(mem.clone());
        assert!(!io.is_enabled());
        let p = Path::new("/d/a.log");
        io.append(p, b"data").unwrap();
        io.sync(p).unwrap();
        assert_eq!(io.stats(), CacheStats::default());
        assert_eq!(mem.contents(p).unwrap(), b"data");
    }

    /// A full WAL lifecycle (appends, rotations, snapshot, compaction,
    /// reopen) behaves identically over `CachedIo<MemIo>` and bare
    /// `MemIo` — the cache is invisible to the log's semantics.
    #[test]
    fn wal_over_cached_io_matches_uncached_wal() {
        type Replayed = (Vec<(u64, Vec<u8>)>, Option<Vec<u8>>);
        let run = |cached: bool| -> Replayed {
            let mem = MemIo::new();
            let open = |mem: &MemIo| {
                if cached {
                    let io = CachedIo::new(mem.clone(), 256, 128);
                    Wal::open(io, "/w", cfg(256, SyncPolicy::EveryN(3)))
                } else {
                    Wal::open(CachedIo::passthrough(mem.clone()), "/w", cfg(256, SyncPolicy::EveryN(3)))
                }
            };
            let (mut wal, _) = open(&mem).unwrap();
            for i in 0..40u32 {
                wal.append(&i.to_le_bytes()).unwrap();
            }
            wal.snapshot(b"half-way").unwrap();
            for i in 40..60u32 {
                wal.append(&i.to_le_bytes()).unwrap();
            }
            wal.compact().unwrap();
            drop(wal);
            let (wal, rec) = open(&mem).unwrap();
            let records = wal.replay().map(|r| r.unwrap()).collect();
            (records, rec.snapshot.map(|s| s.state))
        };
        assert_eq!(run(true), run(false));
    }

    /// The acceptance-criterion crash shape: records acked (synced)
    /// while the cache layer is in the write path survive a simulated
    /// power cut, byte-for-byte, when replayed through an *uncached*
    /// reopen — no acked byte lives only in cache memory.
    #[test]
    fn crash_during_cached_writes_loses_nothing_synced() {
        let mem = MemIo::new();
        let io = CachedIo::new(mem.clone(), 128, 128);
        let (mut wal, _) = Wal::open(io, "/w", cfg(512, SyncPolicy::Never)).unwrap();
        for i in 0..30u32 {
            wal.append(&i.to_le_bytes()).unwrap();
        }
        wal.sync().unwrap(); // the "ack" point
        for i in 30..40u32 {
            wal.append(&i.to_le_bytes()).unwrap(); // never synced
        }
        mem.crash(0.0);
        // Reopen WITHOUT the cache: what is on the simulated platter is
        // all that counts.
        let (wal, rec) = Wal::open(mem, "/w", cfg(512, SyncPolicy::Never)).unwrap();
        assert_eq!(rec.next_lsn, 30, "every synced record survived");
        let got: Vec<u32> = wal
            .replay()
            .map(|r| u32::from_le_bytes(r.unwrap().1.try_into().unwrap()))
            .collect();
        assert_eq!(got, (0..30).collect::<Vec<_>>());
    }

    /// Injected faults fire identically through the cache: the WAL
    /// breaks, the backend plays dead, and recovery after the crash
    /// sees exactly the synced prefix.
    #[test]
    fn fault_injection_passes_through_the_cache() {
        let mem = MemIo::new();
        let io = CachedIo::new(mem.clone(), 128, 128);
        let (mut wal, _) = Wal::open(io, "/w", WalConfig::default()).unwrap();
        wal.append(b"durable").unwrap();
        mem.set_fault(Some(uucs_wal::FaultPlan {
            fail_at: mem.mutating_ops(),
            short_write: Some(3),
        }));
        assert!(wal.append(b"torn-away").is_err());
        assert!(mem.is_dead());
        mem.crash(1.0);
        let (wal, rec) = Wal::open(mem, "/w", WalConfig::default()).unwrap();
        assert!(rec.torn_tail.is_some());
        assert_eq!(rec.next_lsn, 1);
        assert_eq!(
            wal.replay().map(|r| r.unwrap().1).collect::<Vec<_>>(),
            vec![b"durable".to_vec()]
        );
    }

    /// A `PageCache` over `IoPages<MemIo>`: dirty write-back lands in
    /// the fault-injection backend and survives its crash model.
    #[test]
    fn page_cache_write_back_through_memio_survives_crash_when_synced() {
        let mem = MemIo::new();
        let pages = IoPages::new(mem.clone(), 64);
        let file = pages.register("/p/data");
        let mut cache = PageCache::new(8, 64, pages);
        cache
            .put_dirty(PageKey { file, page: 0 }, vec![1u8; 64])
            .unwrap();
        cache
            .put_dirty(PageKey { file, page: 1 }, vec![2u8; 32])
            .unwrap();
        assert_eq!(cache.flush_file(file).unwrap(), 2);
        mem.sync(Path::new("/p/data")).unwrap();
        mem.crash(0.0);
        let survived = mem.contents(Path::new("/p/data")).unwrap();
        assert_eq!(survived.len(), 96);
        assert_eq!(&survived[..64], &[1u8; 64][..]);
        assert_eq!(&survived[64..], &[2u8; 32][..]);
    }

    proptest! {
        /// Property (satellite): cached and uncached store reads are
        /// byte-identical across random op sequences — appends of
        /// random sizes, interleaved whole-file and ranged reads,
        /// syncs, snapshots — and crash-replay agrees with an
        /// uncached replay of the same platter image.
        #[test]
        fn cached_reads_equal_uncached_reads_across_random_ops(
            seeds in prop::collection::vec(0u32..1_000_000, 1..40),
            seg in 128u64..1024,
        ) {
            // Decode each seed into (op kind, payload size, read offset).
            let ops: Vec<(u8, usize, usize)> = seeds
                .iter()
                .map(|s| ((s % 5) as u8, 1 + (s / 5 % 119) as usize, (s / 600 % 200) as usize))
                .collect();
            let mem = MemIo::new();
            let io = CachedIo::new(mem.clone(), 32, 128);
            let (mut wal, _) =
                Wal::open(io.clone(), "/w", cfg(seg, SyncPolicy::Never)).unwrap();
            let mut appended: u64 = 0;
            for (kind, size, at) in ops {
                match kind {
                    0 | 1 => {
                        let byte = (appended % 251) as u8;
                        wal.append(&vec![byte; size]).unwrap();
                        appended += 1;
                    }
                    2 => wal.sync().unwrap(),
                    3 => {
                        // Whole-file reads through the cache must match
                        // the backend exactly, for every live file.
                        for name in io.list(Path::new("/w")).unwrap() {
                            let p = Path::new("/w").join(&name);
                            prop_assert_eq!(io.read(&p).unwrap(), mem.read(&p).unwrap());
                        }
                    }
                    _ => {
                        for name in io.list(Path::new("/w")).unwrap() {
                            let p = Path::new("/w").join(&name);
                            let want = mem.read_at(&p, at as u64, size).unwrap();
                            let got = io.read_at(&p, at as u64, size).unwrap();
                            prop_assert_eq!(got, want);
                        }
                    }
                }
            }
            wal.sync().unwrap();
            let live: Vec<_> = wal.replay().map(|r| r.unwrap()).collect();
            drop(wal);
            // Crash-replay: the platter image replays identically with
            // and without the cache in front.
            mem.crash(0.0);
            let (wal_cached, _) = Wal::open(
                CachedIo::new(mem.clone(), 32, 128),
                "/w",
                cfg(seg, SyncPolicy::Never),
            )
            .unwrap();
            let cached: Vec<_> = wal_cached.replay().map(|r| r.unwrap()).collect();
            drop(wal_cached);
            let (wal_plain, _) =
                Wal::open(mem.clone(), "/w", cfg(seg, SyncPolicy::Never)).unwrap();
            let plain: Vec<_> = wal_plain.replay().map(|r| r.unwrap()).collect();
            prop_assert_eq!(&cached, &plain);
            prop_assert_eq!(cached, live);
        }
    }
}
