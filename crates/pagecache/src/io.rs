//! [`CachedIo`]: the ARC page cache as a drop-in [`uucs_wal::Io`]
//! backend, plus [`IoPages`], the adapter that lets a [`PageCache`]
//! run directly over any `Io` (including the `MemIo` fault-injection
//! harness).
//!
//! `CachedIo` is **write-through**: every mutation reaches the inner
//! backend before the cache is updated, so durability and crash
//! semantics are *exactly* those of the wrapped backend — wrapping
//! `MemIo` changes nothing about what a simulated power cut loses, and
//! wrapping `StdIo` changes nothing about what an fsync guarantees.
//! What the cache buys is the read side: whole-file reads (WAL replay,
//! checkpoint load, snapshot-then-tail backfill, compaction scans) are
//! assembled from resident pages when warm and populate the cache when
//! cold. A capacity of zero pages disables the cache entirely and
//! every call is a direct passthrough.

use crate::cache::{CacheObserver, CacheStats, PageCache, PageIo, PageKey};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use uucs_wal::Io;

/// Default page size for [`CachedIo`]: 4 KiB, the common filesystem
/// block size.
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// A no-backend [`PageIo`]: `CachedIo` performs its own backend reads
/// (it needs the path, not just the file id) and never holds dirty
/// pages, so the inner `PageCache` never touches this.
#[derive(Debug, Default, Clone, Copy)]
struct NoBackend;

impl PageIo for NoBackend {
    fn read_page(&self, _key: PageKey, _page_size: usize) -> io::Result<Vec<u8>> {
        Err(io::Error::other("CachedIo reads through paths, not PageIo"))
    }
    fn write_page(&self, _key: PageKey, _data: &[u8]) -> io::Result<()> {
        Err(io::Error::other("CachedIo pages are never dirty"))
    }
}

#[derive(Debug, Clone, Copy)]
struct FileMeta {
    id: u64,
    /// The inner file's length, when known. `None` forces a re-stat.
    len: Option<u64>,
}

struct CacheState {
    cache: PageCache<NoBackend>,
    files: HashMap<PathBuf, FileMeta>,
    next_id: u64,
}

struct Shared<I> {
    inner: I,
    /// `None` when the cache is disabled (capacity 0): passthrough.
    state: Option<Mutex<CacheState>>,
    page_size: usize,
}

/// A caching [`Io`] wrapper; clones share the cache (like `StdIo`'s
/// shared handle table), so every store shard of a flavor can feed one
/// cache.
pub struct CachedIo<I: Io> {
    shared: Arc<Shared<I>>,
}

impl<I: Io> Clone for CachedIo<I> {
    fn clone(&self) -> Self {
        CachedIo {
            shared: self.shared.clone(),
        }
    }
}

impl<I: Io> std::fmt::Debug for CachedIo<I> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedIo")
            .field("enabled", &self.shared.state.is_some())
            .field("page_size", &self.shared.page_size)
            .finish()
    }
}

impl<I: Io> CachedIo<I> {
    /// Wraps `inner` with an ARC cache of `capacity_pages` pages of
    /// `page_size` bytes. `capacity_pages == 0` builds a passthrough.
    pub fn new(inner: I, capacity_pages: usize, page_size: usize) -> Self {
        let page_size = page_size.max(64);
        let state = (capacity_pages > 0).then(|| {
            Mutex::new(CacheState {
                cache: PageCache::new(capacity_pages, page_size, NoBackend),
                files: HashMap::new(),
                next_id: 0,
            })
        });
        CachedIo {
            shared: Arc::new(Shared {
                inner,
                state,
                page_size,
            }),
        }
    }

    /// A disabled cache: every operation goes straight to `inner`.
    pub fn passthrough(inner: I) -> Self {
        CachedIo::new(inner, 0, DEFAULT_PAGE_SIZE)
    }

    /// Whether caching is active (capacity > 0).
    pub fn is_enabled(&self) -> bool {
        self.shared.state.is_some()
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &I {
        &self.shared.inner
    }

    /// Cache counters; zeros when disabled.
    pub fn stats(&self) -> CacheStats {
        match &self.shared.state {
            Some(state) => self.lock(state).cache.stats(),
            None => CacheStats::default(),
        }
    }

    /// Installs a traffic observer on the underlying page cache (no-op
    /// when disabled).
    pub fn set_observer(&self, observer: Box<dyn CacheObserver>) {
        if let Some(state) = &self.shared.state {
            self.lock(state).cache.set_observer(observer);
        }
    }

    fn lock<'a>(&self, state: &'a Mutex<CacheState>) -> MutexGuard<'a, CacheState> {
        state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn page_size(&self) -> u64 {
        self.shared.page_size as u64
    }

    /// The file's meta entry, creating an id on first touch.
    fn meta<'a>(state: &'a mut CacheState, path: &Path) -> &'a mut FileMeta {
        let next = &mut state.next_id;
        state
            .files
            .entry(path.to_path_buf())
            .or_insert_with(|| {
                let id = *next;
                *next += 1;
                FileMeta { id, len: None }
            })
    }

    /// Forgets everything cached about `path` (after a failed or
    /// shape-changing mutation).
    fn forget(state: &mut CacheState, path: &Path) {
        if let Some(meta) = state.files.remove(path) {
            state.cache.invalidate_file(meta.id);
        }
    }

    /// The inner file length, from the meta cache or a stat.
    fn stat_len(&self, state: &mut CacheState, path: &Path) -> io::Result<u64> {
        if let Some(meta) = state.files.get(path) {
            if let Some(len) = meta.len {
                return Ok(len);
            }
        }
        let len = self.shared.inner.len(path)?;
        Self::meta(state, path).len = Some(len);
        Ok(len)
    }

    /// Installs `data` (the whole file image) as pages.
    fn install_all(state: &mut CacheState, id: u64, page_size: usize, data: &[u8]) {
        for (page, chunk) in data.chunks(page_size).enumerate() {
            let key = PageKey {
                file: id,
                page: page as u32,
            };
            let _ = state.cache.install(key, chunk.to_vec());
        }
    }
}

impl<I: Io> Io for CachedIo<I> {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.shared.inner.create_dir_all(dir)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        self.shared.inner.list(dir)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let Some(state_mutex) = &self.shared.state else {
            return self.shared.inner.read(path);
        };
        let mut state = self.lock(state_mutex);
        let page_size = self.shared.page_size;
        // Warm path: assemble the whole file from resident pages.
        if let Some(meta) = state.files.get(path).copied() {
            if let Some(len) = meta.len {
                let pages = len.div_ceil(self.page_size()) as u32;
                let mut out = Vec::with_capacity(len as usize);
                let mut complete = true;
                for page in 0..pages {
                    let key = PageKey {
                        file: meta.id,
                        page,
                    };
                    match state.cache.lookup(key) {
                        Some(data) => out.extend_from_slice(data),
                        None => {
                            complete = false;
                            break;
                        }
                    }
                }
                if complete && out.len() as u64 == len {
                    return Ok(out);
                }
            }
        }
        // Cold path: one backend read (same syscall shape as uncached),
        // then populate.
        let data = self.shared.inner.read(path)?;
        let meta = Self::meta(&mut state, path);
        meta.len = Some(data.len() as u64);
        let id = meta.id;
        Self::install_all(&mut state, id, page_size, &data);
        Ok(data)
    }

    fn create(&self, path: &Path) -> io::Result<()> {
        let r = self.shared.inner.create(path);
        if let Some(state_mutex) = &self.shared.state {
            let mut state = self.lock(state_mutex);
            match &r {
                Ok(()) => {
                    let meta = Self::meta(&mut state, path);
                    meta.len = Some(0);
                    let id = meta.id;
                    state.cache.invalidate_file(id);
                }
                Err(_) => Self::forget(&mut state, path),
            }
        }
        r
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let Some(state_mutex) = &self.shared.state else {
            return self.shared.inner.append(path, data);
        };
        let mut state = self.lock(state_mutex);
        // Know the pre-append length first, so the cached tail page can
        // be kept coherent. A stat failure just means "file is new".
        let old_len = self.stat_len(&mut state, path).unwrap_or(0);
        if let Err(e) = self.shared.inner.append(path, data) {
            // The backend may have partially applied (short write):
            // cached metadata is no longer trustworthy.
            Self::forget(&mut state, path);
            return Err(e);
        }
        let page_size = self.page_size();
        let meta = Self::meta(&mut state, path);
        meta.len = Some(old_len + data.len() as u64);
        let id = meta.id;
        // Keep the resident tail page coherent with the grown file:
        // extend it in place when the append lands exactly at its end,
        // otherwise drop it (a later read re-fetches).
        let tail_page = (old_len / page_size) as u32;
        let within = (old_len % page_size) as usize;
        let key = PageKey {
            file: id,
            page: tail_page,
        };
        match state.cache.peek(key).map(<[u8]>::len) {
            Some(l) if l == within && within > 0 => {
                let take = data.len().min(self.shared.page_size - within);
                state.cache.extend(key, &data[..take]);
            }
            Some(_) => {
                // Stale or boundary-misaligned tail page: drop it (and
                // everything after, defensively).
                state.cache.invalidate_from(id, tail_page);
            }
            None => {}
        }
        // Appended bytes beyond the resident tail page are NOT
        // installed eagerly — the first read caches them. This keeps a
        // write-heavy log from churning the read cache.
        Ok(())
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        self.shared.inner.sync(path)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let r = self.shared.inner.truncate(path, len);
        if let Some(state_mutex) = &self.shared.state {
            let mut state = self.lock(state_mutex);
            match &r {
                Ok(()) => {
                    if let Some(meta) = state.files.get_mut(path) {
                        // Backends differ on truncate-past-EOF (std
                        // extends, MemIo clamps): re-stat next time.
                        meta.len = None;
                        let id = meta.id;
                        let from = (len / self.page_size()) as u32;
                        state.cache.invalidate_from(id, from);
                    }
                }
                Err(_) => Self::forget(&mut state, path),
            }
        }
        r
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let r = self.shared.inner.rename(from, to);
        if let Some(state_mutex) = &self.shared.state {
            let mut state = self.lock(state_mutex);
            match &r {
                Ok(()) => {
                    Self::forget(&mut state, to);
                    if let Some(meta) = state.files.remove(from) {
                        // The id (and its pages) follow the file.
                        state.files.insert(to.to_path_buf(), meta);
                    }
                }
                Err(_) => {
                    Self::forget(&mut state, from);
                    Self::forget(&mut state, to);
                }
            }
        }
        r
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        let r = self.shared.inner.remove(path);
        if let Some(state_mutex) = &self.shared.state {
            let mut state = self.lock(state_mutex);
            // Forget on success AND failure: stale state helps nobody.
            Self::forget(&mut state, path);
        }
        r
    }

    fn len(&self, path: &Path) -> io::Result<u64> {
        let Some(state_mutex) = &self.shared.state else {
            return self.shared.inner.len(path);
        };
        let mut state = self.lock(state_mutex);
        self.stat_len(&mut state, path)
    }

    fn read_at(&self, path: &Path, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        let Some(state_mutex) = &self.shared.state else {
            return self.shared.inner.read_at(path, offset, len);
        };
        let mut state = self.lock(state_mutex);
        let file_len = self.stat_len(&mut state, path)?;
        let start = offset.min(file_len);
        let end = offset.saturating_add(len as u64).min(file_len);
        if start >= end {
            return Ok(Vec::new());
        }
        let page_size = self.page_size();
        let id = Self::meta(&mut state, path).id;
        let mut out = Vec::with_capacity((end - start) as usize);
        let mut pos = start;
        while pos < end {
            let page = (pos / page_size) as u32;
            let page_start = u64::from(page) * page_size;
            let within = (pos - page_start) as usize;
            let key = PageKey { file: id, page };
            let have = state.cache.lookup(key).map(<[u8]>::to_vec);
            let data = match have {
                Some(d) => d,
                None => {
                    let want = (file_len - page_start).min(page_size) as usize;
                    let d = self
                        .shared
                        .inner
                        .read_at(path, page_start, want)?;
                    let _ = state.cache.install(key, d.clone());
                    d
                }
            };
            if within >= data.len() {
                break; // page shorter than expected (concurrent truncation)
            }
            let take = (data.len() - within).min((end - pos) as usize);
            out.extend_from_slice(&data[within..within + take]);
            pos += take as u64;
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// IoPages: PageIo over any uucs_wal::Io
// ---------------------------------------------------------------------------

/// Adapts any [`uucs_wal::Io`] backend into a [`PageIo`], so a
/// [`PageCache`] — and its fault-injection tests — can run directly
/// over [`MemIo`](uucs_wal::MemIo) or [`StdIo`](uucs_wal::StdIo).
/// Files are registered by path and addressed by the returned id.
///
/// Write-back honors the backend's append-only surface: a dirty page
/// can only be persisted when it lands at (or inside nothing but) the
/// current end of the file, which is exactly what
/// [`PageCache::flush_file`]'s ascending-order contract produces for
/// append-shaped workloads.
pub struct IoPages<I: Io> {
    io: I,
    page_size: usize,
    paths: Mutex<(HashMap<u64, PathBuf>, u64)>,
}

impl<I: Io> IoPages<I> {
    /// Wraps `io` with an empty path registry; `page_size` must match
    /// the [`PageCache`] this adapter backs.
    pub fn new(io: I, page_size: usize) -> Self {
        IoPages {
            io,
            page_size: page_size.max(64),
            paths: Mutex::new((HashMap::new(), 0)),
        }
    }

    /// Registers `path` and returns the file id pages of it use.
    pub fn register(&self, path: impl Into<PathBuf>) -> u64 {
        let mut guard = self.paths.lock().unwrap_or_else(PoisonError::into_inner);
        let id = guard.1;
        guard.1 += 1;
        guard.0.insert(id, path.into());
        id
    }

    /// The wrapped backend.
    pub fn io(&self) -> &I {
        &self.io
    }

    fn path_of(&self, file: u64) -> io::Result<PathBuf> {
        self.paths
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .0
            .get(&file)
            .cloned()
            .ok_or_else(|| io::Error::other(format!("unregistered file id {file}")))
    }
}

impl<I: Io> PageIo for IoPages<I> {
    fn read_page(&self, key: PageKey, page_size: usize) -> io::Result<Vec<u8>> {
        let path = self.path_of(key.file)?;
        self.io
            .read_at(&path, u64::from(key.page) * page_size as u64, page_size)
    }

    fn write_page(&self, key: PageKey, data: &[u8]) -> io::Result<()> {
        let path = self.path_of(key.file)?;
        let offset = u64::from(key.page) * self.page_size as u64;
        let cur = match self.io.len(&path) {
            Ok(l) => l,
            Err(e) if e.kind() == io::ErrorKind::NotFound => 0,
            Err(e) => return Err(e),
        };
        if offset > cur {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                format!("append-only backend: page at {offset} past EOF {cur}"),
            ));
        }
        if offset < cur {
            // Rewriting an existing page: only a bit-identical rewrite
            // of the current tail page is representable (truncate +
            // re-append); anything else is unsupported.
            self.io.truncate(&path, offset)?;
        }
        self.io.append(&path, data)
    }
}
