//! Page frames over the [`ArcPolicy`]: pin/unpin, dirty tracking, and
//! write-back through a [`PageIo`] backend.
//!
//! The cache stores fixed-size pages keyed by [`PageKey`] `(file-id,
//! page-no)`. The last page of a file may be shorter than `page_size`
//! (EOF), and may be *extended in place* by [`PageCache::extend`] as
//! the underlying file grows — the append-only WAL path uses that to
//! keep cached segments current without re-reading them.

use crate::arc::{Access, ArcPolicy};
use std::collections::HashMap;
use std::io;

/// A page address: the `file` is a small integer handle (see
/// [`CachedIo`](crate::io::CachedIo) for the path↔id map it keeps),
/// `page` is the page number within the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageKey {
    /// File handle.
    pub file: u64,
    /// Page number (`offset / page_size`).
    pub page: u32,
}

/// How pages reach backing storage. The WAL's own
/// [`Io`](uucs_wal::Io) backends ([`MemIo`](uucs_wal::MemIo)
/// included, so the fault-injection harness drives this layer too) are
/// adapted to it by [`IoPages`](crate::io::IoPages).
pub trait PageIo {
    /// Reads the page's bytes; short (or empty) at EOF.
    fn read_page(&self, key: PageKey, page_size: usize) -> io::Result<Vec<u8>>;
    /// Persists a dirty page's bytes. [`PageCache::flush_file`] calls
    /// this in ascending page order per file, which lets append-only
    /// backends participate.
    fn write_page(&self, key: PageKey, data: &[u8]) -> io::Result<()>;
}

/// Observation hooks for cache traffic, in the same borrowed-hook
/// style as `uucs_wal::WalObserver`: every method has a no-op default,
/// the cache stays dependency-free, and a telemetry stack plugs in
/// from outside.
pub trait CacheObserver: Send {
    /// A lookup was served from a resident page.
    fn on_hit(&mut self) {}
    /// A lookup had to go to the backend.
    fn on_miss(&mut self) {}
    /// A page was evicted to make room.
    fn on_evict(&mut self) {}
    /// A dirty page was written back to the backend.
    fn on_writeback(&mut self) {}
}

/// Running totals, readable at any time via [`PageCache::stats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from memory.
    pub hits: u64,
    /// Lookups that went to the backend.
    pub misses: u64,
    /// Pages evicted by the policy.
    pub evictions: u64,
    /// Dirty pages written back.
    pub writebacks: u64,
}

#[derive(Debug)]
struct Frame {
    data: Vec<u8>,
    pins: u32,
    dirty: bool,
}

/// An ARC-managed cache of fixed-size pages backed by a [`PageIo`].
///
/// Not internally synchronized: callers wrap it in their own lock
/// (`CachedIo` keeps it behind a `Mutex`, like `StdIo`'s handle
/// cache).
pub struct PageCache<P: PageIo> {
    io: P,
    page_size: usize,
    policy: ArcPolicy<PageKey>,
    frames: HashMap<PageKey, Frame>,
    observer: Option<Box<dyn CacheObserver>>,
    stats: CacheStats,
}

impl<P: PageIo> std::fmt::Debug for PageCache<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageCache")
            .field("page_size", &self.page_size)
            .field("resident", &self.frames.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl<P: PageIo> PageCache<P> {
    /// A cache of at most `capacity` pages of `page_size` bytes.
    pub fn new(capacity: usize, page_size: usize, io: P) -> Self {
        PageCache {
            io,
            page_size: page_size.max(64),
            policy: ArcPolicy::new(capacity),
            frames: HashMap::new(),
            observer: None,
            stats: CacheStats::default(),
        }
    }

    /// Installs (or replaces) the traffic observer.
    pub fn set_observer(&mut self, observer: Box<dyn CacheObserver>) {
        self.observer = Some(observer);
    }

    /// The configured page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Running hit/miss/eviction/write-back totals.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resident page count.
    pub fn resident(&self) -> usize {
        self.frames.len()
    }

    /// The backing [`PageIo`].
    pub fn io(&self) -> &P {
        &self.io
    }

    fn observe(&mut self, f: impl Fn(&mut dyn CacheObserver)) {
        if let Some(obs) = self.observer.as_mut() {
            f(obs.as_mut());
        }
    }

    /// Makes room for `key` per the policy, writing back a dirty victim
    /// first. Must be called before inserting a new frame.
    fn admit(&mut self, key: PageKey) -> io::Result<()> {
        let frames = &self.frames;
        let (_, evicted) = self
            .policy
            .access(key, |k| frames.get(k).is_some_and(|f| f.pins > 0));
        if let Some(victim) = evicted {
            if let Some(frame) = self.frames.remove(&victim) {
                if frame.dirty {
                    self.io.write_page(victim, &frame.data)?;
                    self.stats.writebacks += 1;
                    self.observe(|o| o.on_writeback());
                }
                self.stats.evictions += 1;
                self.observe(|o| o.on_evict());
            }
        }
        Ok(())
    }

    /// A resident page's bytes, with no policy promotion and no stats
    /// movement — coherence checks, not cache traffic.
    pub fn peek(&self, key: PageKey) -> Option<&[u8]> {
        self.frames.get(&key).map(|f| f.data.as_slice())
    }

    /// Looks `key` up without touching the backend. A resident page
    /// counts as a hit (and is promoted); a miss returns `None` and
    /// records nothing — pair with [`PageCache::install`].
    pub fn lookup(&mut self, key: PageKey) -> Option<&[u8]> {
        if self.frames.contains_key(&key) {
            let frames = &self.frames;
            let (access, _) = self
                .policy
                .access(key, |k| frames.get(k).is_some_and(|f| f.pins > 0));
            debug_assert_eq!(access, Access::Hit);
            self.stats.hits += 1;
            self.observe(|o| o.on_hit());
            return self.frames.get(&key).map(|f| f.data.as_slice());
        }
        None
    }

    /// Installs a page the caller fetched itself (counted as a miss).
    /// The evicted victim, if dirty, is written back first.
    pub fn install(&mut self, key: PageKey, data: Vec<u8>) -> io::Result<()> {
        self.stats.misses += 1;
        self.observe(|o| o.on_miss());
        if self.frames.contains_key(&key) {
            // Refresh in place; the policy sees a hit-shaped access.
            let frames = &self.frames;
            self.policy
                .access(key, |k| frames.get(k).is_some_and(|f| f.pins > 0));
            self.frames.get_mut(&key).expect("just checked").data = data;
            return Ok(());
        }
        self.admit(key)?;
        self.frames.insert(
            key,
            Frame {
                data,
                pins: 0,
                dirty: false,
            },
        );
        Ok(())
    }

    /// Read-through access: a resident page is a hit; otherwise the
    /// page is fetched from the backend and installed.
    pub fn get(&mut self, key: PageKey) -> io::Result<&[u8]> {
        if self.lookup(key).is_none() {
            let data = self.io.read_page(key, self.page_size)?;
            self.install(key, data)?;
        }
        Ok(self
            .frames
            .get(&key)
            .map(|f| f.data.as_slice())
            .expect("resident after lookup/install"))
    }

    /// Writes a page image into the cache and marks it dirty; it
    /// reaches the backend on [`PageCache::flush_file`] or when
    /// eviction writes it back.
    pub fn put_dirty(&mut self, key: PageKey, data: Vec<u8>) -> io::Result<()> {
        if let Some(frame) = self.frames.get_mut(&key) {
            frame.data = data;
            frame.dirty = true;
            let frames = &self.frames;
            self.policy
                .access(key, |k| frames.get(k).is_some_and(|f| f.pins > 0));
            return Ok(());
        }
        self.admit(key)?;
        self.frames.insert(
            key,
            Frame {
                data,
                pins: 0,
                dirty: true,
            },
        );
        Ok(())
    }

    /// Appends `bytes` to the resident page `key` (the growing tail of
    /// an append-only file), leaving its dirtiness as-is. No-op if the
    /// page is not resident.
    pub fn extend(&mut self, key: PageKey, bytes: &[u8]) {
        if let Some(frame) = self.frames.get_mut(&key) {
            frame.data.extend_from_slice(bytes);
            debug_assert!(frame.data.len() <= self.page_size);
        }
    }

    /// Pins `key` (loading it through the backend if absent): a pinned
    /// page is never chosen for eviction. Pins nest.
    pub fn pin(&mut self, key: PageKey) -> io::Result<()> {
        self.get(key)?;
        self.frames.get_mut(&key).expect("resident").pins += 1;
        Ok(())
    }

    /// Releases one pin. Unbalanced unpins are a caller bug and panic
    /// in debug builds.
    pub fn unpin(&mut self, key: PageKey) {
        if let Some(frame) = self.frames.get_mut(&key) {
            debug_assert!(frame.pins > 0, "unpin without a pin");
            frame.pins = frame.pins.saturating_sub(1);
        }
    }

    /// Current pin count (test introspection).
    pub fn pins(&self, key: PageKey) -> u32 {
        self.frames.get(&key).map_or(0, |f| f.pins)
    }

    /// Writes back every dirty page of `file` in ascending page order
    /// (so append-only backends see their bytes arrive in file order).
    /// Returns how many pages were written.
    pub fn flush_file(&mut self, file: u64) -> io::Result<usize> {
        let mut dirty: Vec<PageKey> = self
            .frames
            .iter()
            .filter(|(k, f)| k.file == file && f.dirty)
            .map(|(k, _)| *k)
            .collect();
        dirty.sort();
        let n = dirty.len();
        for key in dirty {
            let data = self.frames.get(&key).expect("listed above").data.clone();
            self.io.write_page(key, &data)?;
            self.frames.get_mut(&key).expect("listed above").dirty = false;
            self.stats.writebacks += 1;
            self.observe(|o| o.on_writeback());
        }
        Ok(n)
    }

    /// [`PageCache::flush_file`] over every file with dirty pages.
    pub fn flush_all(&mut self) -> io::Result<usize> {
        let mut files: Vec<u64> = self
            .frames
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(k, _)| k.file)
            .collect();
        files.sort_unstable();
        files.dedup();
        let mut n = 0;
        for file in files {
            n += self.flush_file(file)?;
        }
        Ok(n)
    }

    /// Drops every page (and ghost) of `file` without writing anything
    /// back — for truncate/remove, where cached bytes are stale.
    pub fn invalidate_file(&mut self, file: u64) {
        self.frames.retain(|k, _| k.file != file);
        self.policy.retain(|k| k.file != file);
    }

    /// Drops pages of `file` numbered `>= from_page` (truncation to a
    /// mid-file point keeps the still-valid prefix).
    pub fn invalidate_from(&mut self, file: u64, from_page: u32) {
        self.frames
            .retain(|k, _| !(k.file == file && k.page >= from_page));
        self.policy
            .retain(|k| !(k.file == file && k.page >= from_page));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::collections::BTreeMap;
    use std::rc::Rc;

    /// A PageIo over a flat in-memory page table.
    #[derive(Default, Clone)]
    struct MapIo {
        pages: Rc<RefCell<BTreeMap<PageKey, Vec<u8>>>>,
    }

    impl PageIo for MapIo {
        fn read_page(&self, key: PageKey, _page_size: usize) -> io::Result<Vec<u8>> {
            Ok(self.pages.borrow().get(&key).cloned().unwrap_or_default())
        }
        fn write_page(&self, key: PageKey, data: &[u8]) -> io::Result<()> {
            self.pages.borrow_mut().insert(key, data.to_vec());
            Ok(())
        }
    }

    fn key(file: u64, page: u32) -> PageKey {
        PageKey { file, page }
    }

    #[test]
    fn read_through_miss_then_hit() {
        let io = MapIo::default();
        io.write_page(key(1, 0), b"hello").unwrap();
        let mut cache = PageCache::new(4, 64, io);
        assert_eq!(cache.get(key(1, 0)).unwrap(), b"hello");
        assert_eq!(cache.get(key(1, 0)).unwrap(), b"hello");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn dirty_pages_write_back_on_flush_in_page_order() {
        let io = MapIo::default();
        let pages = io.pages.clone();
        let mut cache = PageCache::new(8, 64, io);
        cache.put_dirty(key(3, 2), b"two".to_vec()).unwrap();
        cache.put_dirty(key(3, 0), b"zero".to_vec()).unwrap();
        cache.put_dirty(key(4, 0), b"other-file".to_vec()).unwrap();
        assert!(pages.borrow().is_empty(), "dirty data stays cached");
        assert_eq!(cache.flush_file(3).unwrap(), 2);
        assert_eq!(pages.borrow().get(&key(3, 0)).unwrap(), b"zero");
        assert_eq!(pages.borrow().get(&key(3, 2)).unwrap(), b"two");
        assert!(!pages.borrow().contains_key(&key(4, 0)));
        assert_eq!(cache.flush_all().unwrap(), 1);
        // Flushing again writes nothing: pages are clean now.
        assert_eq!(cache.flush_all().unwrap(), 0);
        assert_eq!(cache.stats().writebacks, 3);
    }

    #[test]
    fn eviction_writes_back_dirty_victims() {
        let io = MapIo::default();
        let pages = io.pages.clone();
        let mut cache = PageCache::new(2, 64, io);
        cache.put_dirty(key(1, 0), b"a".to_vec()).unwrap();
        cache.put_dirty(key(1, 1), b"b".to_vec()).unwrap();
        // Two more cold pages force evictions past capacity 2.
        cache.install(key(1, 2), b"c".to_vec()).unwrap();
        cache.install(key(1, 3), b"d".to_vec()).unwrap();
        let flushed = pages.borrow().len();
        assert!(flushed >= 1, "an evicted dirty page must be written back");
        assert!(cache.stats().evictions >= 1);
        // Nothing was lost: every key still reads back correctly.
        for (k, want) in [(0u32, b"a"), (1, b"b")] {
            let have = cache.get(key(1, k)).unwrap().to_vec();
            assert_eq!(have, want.to_vec(), "page {k}");
        }
    }

    #[test]
    fn pinned_pages_survive_eviction_pressure() {
        let io = MapIo::default();
        let mut cache = PageCache::new(2, 64, io);
        cache.put_dirty(key(1, 0), b"pinned".to_vec()).unwrap();
        cache.pin(key(1, 0)).unwrap();
        for p in 1..10u32 {
            cache.install(key(1, p), vec![p as u8]).unwrap();
        }
        // The pinned page was never evicted: still resident and dirty,
        // no backend write for it happened.
        assert_eq!(cache.pins(key(1, 0)), 1);
        let before = cache.stats().misses;
        assert_eq!(cache.get(key(1, 0)).unwrap(), b"pinned");
        assert_eq!(cache.stats().misses, before, "served without a miss");
        cache.unpin(key(1, 0));
    }

    #[test]
    fn invalidate_file_and_prefix() {
        let io = MapIo::default();
        io.write_page(key(1, 0), b"durable".to_vec().as_slice()).unwrap();
        let mut cache = PageCache::new(8, 64, io);
        cache.put_dirty(key(1, 0), b"stale".to_vec()).unwrap();
        cache.put_dirty(key(1, 5), b"tail".to_vec()).unwrap();
        cache.invalidate_from(1, 3);
        assert_eq!(cache.resident(), 1, "page 5 dropped, page 0 kept");
        cache.invalidate_file(1);
        assert_eq!(cache.resident(), 0);
        // Invalidation discarded, not flushed: the backend still holds
        // the old image.
        assert_eq!(cache.get(key(1, 0)).unwrap(), b"durable");
    }

    #[test]
    fn observer_sees_hits_misses_evictions_writebacks() {
        struct Obs {
            hits: u64,
            misses: u64,
            evicts: u64,
            writebacks: u64,
        }
        impl CacheObserver for Obs {
            fn on_hit(&mut self) {
                self.hits += 1;
            }
            fn on_miss(&mut self) {
                self.misses += 1;
            }
            fn on_evict(&mut self) {
                self.evicts += 1;
            }
            fn on_writeback(&mut self) {
                self.writebacks += 1;
            }
        }
        let io = MapIo::default();
        let mut cache = PageCache::new(2, 64, io);
        cache.set_observer(Box::new(Obs {
            hits: 0,
            misses: 0,
            evicts: 0,
            writebacks: 0,
        }));
        cache.put_dirty(key(1, 0), b"x".to_vec()).unwrap();
        cache.get(key(1, 0)).unwrap(); // hit
        cache.install(key(1, 1), b"y".to_vec()).unwrap();
        cache.install(key(1, 2), b"z".to_vec()).unwrap(); // evicts
        let s = cache.stats();
        assert!(s.hits >= 1 && s.misses >= 2 && s.evictions >= 1);
    }
}
