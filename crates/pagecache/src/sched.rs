//! The disk scheduler: a bounded request queue serviced by a dedicated
//! I/O thread pool, with completion tickets.
//!
//! Handler threads `submit` work (an fsync, a compaction, a segment
//! write) and either fire-and-forget or park on the returned
//! [`Ticket`]; the pool executes jobs in FIFO order per queue. This is
//! what decouples verb handlers from rotation and compaction stalls:
//! the slow I/O happens on scheduler threads while the handler moves
//! on, and the `GroupCommitter` redeems durability watermarks from the
//! tickets exactly as it did from its own serial fsync loop.
//!
//! Submission applies backpressure: when the queue is at capacity,
//! `submit` blocks until a worker drains a slot — bounded memory, and
//! a natural brake when the disk falls behind.

use std::collections::VecDeque;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// The class of a scheduled operation — for observability; the
/// scheduler treats every job the same.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// A read (backfill, replay, checkpoint load).
    Read,
    /// A data write (checkpoint body, shipped batch).
    Write,
    /// An fsync (group commit slots).
    Fsync,
    /// Segment rotation / compaction housekeeping.
    Rotate,
}

impl OpKind {
    /// Stable lower-case name (metric label).
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Read => "read",
            OpKind::Write => "write",
            OpKind::Fsync => "fsync",
            OpKind::Rotate => "rotate",
        }
    }
}

/// Observation hooks for queue behavior; methods take `&self` because
/// workers fire them concurrently. No-op defaults, per the repo's
/// borrowed-hook convention.
pub trait SchedObserver: Send + Sync {
    /// A request entered the queue (`depth` = queue length after).
    fn on_enqueue(&self, kind: OpKind, depth: usize) {
        let _ = (kind, depth);
    }
    /// A worker picked a request up after `stall_ns` in the queue.
    fn on_dequeue(&self, kind: OpKind, stall_ns: u64, depth: usize) {
        let _ = (kind, stall_ns, depth);
    }
    /// A request finished executing in `dur_ns`.
    fn on_complete(&self, kind: OpKind, dur_ns: u64) {
        let _ = (kind, dur_ns);
    }
}

type Job = Box<dyn FnOnce() -> io::Result<u64> + Send + 'static>;

struct Request {
    kind: OpKind,
    job: Job,
    ticket: Arc<TicketState>,
    enqueued: Instant,
}

#[derive(Default)]
struct TicketState {
    done: Mutex<Option<io::Result<u64>>>,
    cond: Condvar,
}

/// A completion ticket: redeem with [`Ticket::wait`], or poll with
/// [`Ticket::is_done`]. Dropping a ticket abandons the result; the job
/// still runs.
pub struct Ticket {
    state: Arc<TicketState>,
}

impl Ticket {
    /// Blocks until the job completes and returns its result (a
    /// caller-defined `u64`, e.g. a durability watermark).
    pub fn wait(self) -> io::Result<u64> {
        let mut done = self
            .state
            .done
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(result) = done.take() {
                return result;
            }
            done = self
                .state
                .cond
                .wait(done)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// True once the job has completed (result still unclaimed).
    pub fn is_done(&self) -> bool {
        self.state
            .done
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_some()
    }
}

struct SchedShared {
    queue: Mutex<VecDeque<Request>>,
    /// Signals workers (work available / stop) and submitters (slot
    /// freed).
    work: Condvar,
    space: Condvar,
    capacity: usize,
    stop: AtomicBool,
    observer: Mutex<Option<Arc<dyn SchedObserver>>>,
}

impl SchedShared {
    fn lock_queue(&self) -> MutexGuard<'_, VecDeque<Request>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn observer(&self) -> Option<Arc<dyn SchedObserver>> {
        self.observer
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

/// A bounded-queue I/O thread pool with completion tickets.
pub struct DiskScheduler {
    shared: Arc<SchedShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for DiskScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskScheduler")
            .field("workers", &self.workers.len())
            .field("capacity", &self.shared.capacity)
            .field("queue_depth", &self.queue_depth())
            .finish()
    }
}

impl DiskScheduler {
    /// A pool of `threads` workers over a queue of at most
    /// `queue_capacity` outstanding requests (both clamped to ≥ 1).
    pub fn new(threads: usize, queue_capacity: usize) -> Self {
        let shared = Arc::new(SchedShared {
            queue: Mutex::new(VecDeque::new()),
            work: Condvar::new(),
            space: Condvar::new(),
            capacity: queue_capacity.max(1),
            stop: AtomicBool::new(false),
            observer: Mutex::new(None),
        });
        let workers = (0..threads.max(1))
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("uucs-disk-{i}"))
                    .spawn(move || Self::worker(&shared))
                    .expect("spawn disk worker")
            })
            .collect();
        DiskScheduler { shared, workers }
    }

    /// Installs the queue observer (telemetry hookup).
    pub fn set_observer(&self, observer: Arc<dyn SchedObserver>) {
        *self
            .shared
            .observer
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(observer);
    }

    /// Worker thread count.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Requests currently waiting (not counting ones being executed).
    pub fn queue_depth(&self) -> usize {
        self.shared.lock_queue().len()
    }

    /// Enqueues `job`, blocking while the queue is full (backpressure).
    /// After [`DiskScheduler::shutdown`] the job is rejected: the
    /// ticket resolves to an error immediately.
    pub fn submit(
        &self,
        kind: OpKind,
        job: impl FnOnce() -> io::Result<u64> + Send + 'static,
    ) -> Ticket {
        let state = Arc::new(TicketState::default());
        let ticket = Ticket {
            state: state.clone(),
        };
        let mut queue = self.shared.lock_queue();
        while queue.len() >= self.shared.capacity && !self.shared.stop.load(Ordering::Acquire) {
            queue = self
                .shared
                .space
                .wait(queue)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if self.shared.stop.load(Ordering::Acquire) {
            drop(queue);
            Self::resolve(&state, Err(io::Error::other("disk scheduler is shut down")));
            return ticket;
        }
        queue.push_back(Request {
            kind,
            job: Box::new(job),
            ticket: state,
            enqueued: Instant::now(),
        });
        let depth = queue.len();
        drop(queue);
        if let Some(obs) = self.shared.observer() {
            obs.on_enqueue(kind, depth);
        }
        self.shared.work.notify_one();
        ticket
    }

    fn resolve(state: &Arc<TicketState>, result: io::Result<u64>) {
        *state.done.lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
        state.cond.notify_all();
    }

    fn worker(shared: &SchedShared) {
        loop {
            let request = {
                let mut queue = shared.lock_queue();
                loop {
                    if let Some(req) = queue.pop_front() {
                        break req;
                    }
                    if shared.stop.load(Ordering::Acquire) {
                        return;
                    }
                    queue = shared
                        .work
                        .wait(queue)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };
            shared.space.notify_one();
            let depth = shared.lock_queue().len();
            let stall_ns = request.enqueued.elapsed().as_nanos() as u64;
            let observer = shared.observer();
            if let Some(obs) = &observer {
                obs.on_dequeue(request.kind, stall_ns, depth);
            }
            let t0 = Instant::now();
            let result = (request.job)();
            if let Some(obs) = &observer {
                obs.on_complete(request.kind, t0.elapsed().as_nanos() as u64);
            }
            Self::resolve(&request.ticket, result);
        }
    }

    /// Stops accepting work, drains the queue, and joins the workers.
    /// Already-queued jobs still run (their tickets resolve normally).
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.work.notify_all();
        self.shared.space.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // Anything still queued after the workers exited (stop raced a
        // final submit) gets an error, not a hang.
        for req in self.shared.lock_queue().drain(..) {
            Self::resolve(
                &req.ticket,
                Err(io::Error::other("disk scheduler shut down before the job ran")),
            );
        }
    }
}

impl Drop for DiskScheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    #[test]
    fn tickets_resolve_with_job_results_in_fifo_order() {
        let sched = DiskScheduler::new(1, 16);
        let seen = Arc::new(Mutex::new(Vec::new()));
        let tickets: Vec<_> = (0..8u64)
            .map(|i| {
                let seen = seen.clone();
                sched.submit(OpKind::Write, move || {
                    seen.lock().unwrap().push(i);
                    Ok(i * 10)
                })
            })
            .collect();
        for (i, t) in tickets.into_iter().enumerate() {
            assert_eq!(t.wait().unwrap(), i as u64 * 10);
        }
        assert_eq!(*seen.lock().unwrap(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn errors_travel_through_the_ticket() {
        let sched = DiskScheduler::new(2, 4);
        let t = sched.submit(OpKind::Fsync, || Err(io::Error::other("disk on fire")));
        let err = t.wait().unwrap_err();
        assert!(err.to_string().contains("disk on fire"));
    }

    #[test]
    fn bounded_queue_applies_backpressure_but_completes_everything() {
        let sched = Arc::new(DiskScheduler::new(2, 2));
        let ran = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let sched = sched.clone();
            let ran = ran.clone();
            handles.push(std::thread::spawn(move || {
                let tickets: Vec<_> = (0..25)
                    .map(|_| {
                        let ran = ran.clone();
                        sched.submit(OpKind::Fsync, move || {
                            std::thread::sleep(Duration::from_micros(200));
                            ran.fetch_add(1, Ordering::Relaxed);
                            Ok(0)
                        })
                    })
                    .collect();
                for t in tickets {
                    t.wait().unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ran.load(Ordering::Relaxed), 100);
        assert_eq!(sched.queue_depth(), 0);
    }

    #[test]
    fn shutdown_drains_queued_work_and_rejects_new_work() {
        let mut sched = DiskScheduler::new(1, 64);
        let ran = Arc::new(AtomicU64::new(0));
        let tickets: Vec<_> = (0..10)
            .map(|_| {
                let ran = ran.clone();
                sched.submit(OpKind::Rotate, move || {
                    ran.fetch_add(1, Ordering::Relaxed);
                    Ok(0)
                })
            })
            .collect();
        sched.shutdown();
        for t in tickets {
            // Queued-before-shutdown jobs either ran or were rejected
            // with an explicit error — never a hang.
            let _ = t.wait();
        }
        let t = sched.submit(OpKind::Read, || Ok(1));
        assert!(t.wait().is_err(), "post-shutdown submits are rejected");
    }

    #[test]
    fn observer_sees_enqueue_dequeue_complete() {
        #[derive(Default)]
        struct Obs {
            enq: AtomicU64,
            deq: AtomicU64,
            done: AtomicU64,
        }
        impl SchedObserver for Obs {
            fn on_enqueue(&self, _k: OpKind, _d: usize) {
                self.enq.fetch_add(1, Ordering::Relaxed);
            }
            fn on_dequeue(&self, _k: OpKind, _stall: u64, _d: usize) {
                self.deq.fetch_add(1, Ordering::Relaxed);
            }
            fn on_complete(&self, _k: OpKind, _dur: u64) {
                self.done.fetch_add(1, Ordering::Relaxed);
            }
        }
        let sched = DiskScheduler::new(2, 8);
        let obs = Arc::new(Obs::default());
        sched.set_observer(obs.clone());
        let tickets: Vec<_> = (0..5).map(|_| sched.submit(OpKind::Fsync, || Ok(0))).collect();
        for t in tickets {
            t.wait().unwrap();
        }
        assert_eq!(obs.enq.load(Ordering::Relaxed), 5);
        assert_eq!(obs.deq.load(Ordering::Relaxed), 5);
        assert_eq!(obs.done.load(Ordering::Relaxed), 5);
    }
}
