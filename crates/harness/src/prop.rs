//! A minimal, std-only property-testing runtime — a `proptest`-compatible
//! subset backed by the workspace's own deterministic [`Pcg64`].
//!
//! The surface mirrors the parts of `proptest` the UUCS test suites use:
//!
//! * the [`proptest!`](crate::proptest) macro (including
//!   `#![proptest_config(...)]` and `mut` argument bindings),
//! * [`Strategy`] with ranges (`0u64..500`, `0.0f64..10.0`), [`any`],
//!   `prop::collection::vec`, and regex-lite string literals
//!   (`"[a-z]{1,8}"`, `"\\PC*"`),
//! * [`prop_assert!`](crate::prop_assert) /
//!   [`prop_assert_eq!`](crate::prop_assert_eq) /
//!   [`prop_assert_ne!`](crate::prop_assert_ne) /
//!   [`prop_assume!`](crate::prop_assume),
//! * shrinking: failing inputs are minimized by a binary search toward
//!   each strategy's lower bound before the failure is reported.
//!
//! Case generation is deterministic: the stream is
//! `Pcg64::new(seed).split_str(test_name)`, so a failure reproduces by
//! rerunning the same test binary. The defaults can be tuned with
//! `UUCS_PROPTEST_CASES` and `UUCS_PROPTEST_SEED`.

use std::fmt::Debug;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use uucs_stats::Pcg64;

/// The RNG driving all generation.
pub type TestRng = Pcg64;

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum CaseError {
    /// The property is false for this input (assertion failure or panic).
    Fail(String),
    /// The input did not satisfy a `prop_assume!` precondition.
    Reject,
}

impl CaseError {
    /// Builds the failure variant (used by the assertion macros).
    pub fn fail(msg: impl Into<String>) -> Self {
        CaseError::Fail(msg.into())
    }
}

/// What a property body returns for one input.
pub type CaseResult = Result<(), CaseError>;

/// Runner configuration. `ProptestConfig` is an alias for source
/// compatibility with ported `proptest` suites.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of passing cases required.
    pub cases: u32,
    /// Abort if more inputs than this are rejected by `prop_assume!`.
    pub max_rejects: u32,
    /// Cap on property re-executions spent shrinking a failure.
    pub max_shrink_iters: u32,
    /// Root seed for the deterministic generation stream.
    pub seed: u64,
}

/// Alias matching the `proptest` name used at existing call sites.
pub type ProptestConfig = Config;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: env_u64("UUCS_PROPTEST_CASES", 64) as u32,
            max_rejects: 4096,
            max_shrink_iters: 512,
            seed: env_u64("UUCS_PROPTEST_SEED", 0x5eed_2004),
        }
    }
}

impl Config {
    /// A config that runs exactly `cases` passing cases.
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// A generator of values plus a shrinker for failing ones.
///
/// `shrink` returns *candidate* simpler values, ordered most-aggressive
/// first; the runner keeps the first candidate that still fails and
/// iterates, which yields a binary search toward the strategy's minimum.
pub trait Strategy {
    /// The generated value type.
    type Value: Clone + Debug;

    /// Draws one value from the deterministic stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Candidate simplifications of `value`, most aggressive first.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                if span > u64::MAX as u128 {
                    // The span covers (almost) the whole domain; a raw
                    // draw is uniform enough.
                    rng.next_u64() as $t
                } else {
                    (self.start as i128 + rng.below(span as u64) as i128) as $t
                }
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let lo = self.start;
                let v = *value;
                if v <= lo {
                    return Vec::new();
                }
                // Delta-halving ladder: lo, v - span/2, v - span/4, ...,
                // v - 1. Accepting the largest still-failing jump each
                // round gives a binary search toward the minimum.
                let mut out = vec![lo];
                let mut delta = (v - lo) / 2;
                while delta > 0 {
                    let cand = v - delta;
                    if cand != lo && out.last() != Some(&cand) {
                        out.push(cand);
                    }
                    delta /= 2;
                }
                if v - 1 != lo && out.last() != Some(&(v - 1)) {
                    out.push(v - 1);
                }
                out
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty float range strategy");
                self.start + (rng.f64() as $t) * (self.end - self.start)
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let lo = self.start;
                let v = *value;
                // NaN (incomparable) and v <= lo both shrink to nothing.
                if v.partial_cmp(&lo) != Some(core::cmp::Ordering::Greater)
                    || (v - lo).abs() < 1e-9
                {
                    return Vec::new();
                }
                // Same delta-halving ladder as the integer ranges, with
                // bounded depth (floats never reach exact equality).
                let mut out = vec![lo];
                let mut delta = (v - lo) / 2.0;
                for _ in 0..16 {
                    if delta.abs() < 1e-9 {
                        break;
                    }
                    out.push(v - delta);
                    delta /= 2.0;
                }
                out
            }
        }
    )+};
}

float_range_strategy!(f32, f64);

/// Types with a whole-domain generator, for [`any`].
pub trait ArbitraryValue: Clone + Debug {
    /// Draws from the full domain of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
    /// Candidate simplifications, most aggressive first.
    fn shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),+) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
            fn shrink(&self) -> Vec<$t> {
                let v = *self;
                if v == 0 {
                    return Vec::new();
                }
                let mut out = vec![0];
                let mut delta = v / 2;
                while delta > 0 {
                    let cand = v - delta;
                    if cand != 0 && out.last() != Some(&cand) {
                        out.push(cand);
                    }
                    delta /= 2;
                }
                out
            }
        }
    )+};
}

arbitrary_uint!(u8, u16, u32, u64, usize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bernoulli(0.5)
    }
    fn shrink(&self) -> Vec<bool> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Mix magnitudes: mostly moderate values, occasionally extreme.
        let base = rng.f64() * 2.0 - 1.0;
        base * 10f64.powi(rng.below(9) as i32 - 2)
    }
    fn shrink(&self) -> Vec<f64> {
        if *self == 0.0 {
            return Vec::new();
        }
        vec![0.0, self / 2.0]
    }
}

/// Strategy for a full-domain draw of `T` (the `any::<T>()` form).
pub struct Any<T>(std::marker::PhantomData<T>);

/// Generates any value of `T`, like `proptest::prelude::any`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        value.shrink()
    }
}

// -- collections ------------------------------------------------------------

/// Inclusive-lower, exclusive-upper element-count range for `vec`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// Strategy for `Vec<S::Value>` with lengths drawn from a range.
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

/// Builds a vector strategy (the `prop::collection::vec` form).
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.lo + rng.below((self.size.hi - self.size.lo) as u64) as usize;
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        let len = value.len();
        // Structural shrinks first: shorter vectors.
        if len > self.size.lo {
            out.push(value[..self.size.lo].to_vec());
            let half = self.size.lo.max(len / 2);
            if half != self.size.lo && half != len {
                out.push(value[..half].to_vec());
            }
            if len - 1 != half && len - 1 != self.size.lo {
                out.push(value[..len - 1].to_vec());
            }
        }
        // Then element-wise shrinks (first candidate per slot, capped so
        // huge vectors don't explode the search).
        for idx in 0..len.min(64) {
            if let Some(cand) = self.elem.shrink(&value[idx]).into_iter().next() {
                let mut next = value.clone();
                next[idx] = cand;
                out.push(next);
            }
        }
        out
    }
}

// -- regex-lite string strategies -------------------------------------------

/// One atom of a string pattern: a character class plus a repetition
/// count range (inclusive).
#[derive(Debug, Clone)]
struct PatternAtom {
    /// Inclusive char ranges the atom draws from.
    class: Vec<(char, char)>,
    min: usize,
    max: usize,
}

/// Parses the tiny regex subset the suites use: literal chars, escapes
/// (`\n`, `\t`, `\\`, ...), `[...]` classes with ranges, the `\PC`
/// printable-character category, and `*`, `+`, `?`, `{m}`, `{m,n}`
/// quantifiers.
fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
    // Printable, non-control characters across a few scripts — a stand-in
    // for proptest's `\PC` (anything that is not a control character).
    const PRINTABLE: &[(char, char)] = &[
        (' ', '~'),
        ('\u{a1}', '\u{1ff}'),
        ('\u{391}', '\u{3c9}'),
        ('\u{4e00}', '\u{4eff}'),
        ('\u{1f600}', '\u{1f64f}'),
    ];
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let class: Vec<(char, char)> = match chars[i] {
            '[' => {
                i += 1;
                let mut ranges = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let c = if chars[i] == '\\' {
                        i += 1;
                        unescape(chars.get(i).copied().unwrap_or('\\'))
                    } else {
                        chars[i]
                    };
                    if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&c| c != ']')
                    {
                        let hi = chars[i + 2];
                        ranges.push((c, hi));
                        i += 3;
                    } else {
                        ranges.push((c, c));
                        i += 1;
                    }
                }
                i += 1; // consume ']'
                ranges
            }
            '\\' => {
                i += 1;
                match chars.get(i) {
                    // `\PC`: any printable (non-control) character.
                    Some('P') if chars.get(i + 1) == Some(&'C') => {
                        i += 2;
                        PRINTABLE.to_vec()
                    }
                    Some(&c) => {
                        i += 1;
                        let c = unescape(c);
                        std::vec![(c, c)]
                    }
                    None => break,
                }
            }
            '.' => {
                i += 1;
                PRINTABLE.to_vec()
            }
            c => {
                i += 1;
                std::vec![(c, c)]
            }
        };
        // Quantifier.
        let (min, max) = match chars.get(i) {
            Some('*') => {
                i += 1;
                (0, 32)
            }
            Some('+') => {
                i += 1;
                (1, 32)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('{') => {
                let close = chars[i..].iter().position(|&c| c == '}').map(|p| p + i);
                let Some(close) = close else { break };
                let inner: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                let mut parts = inner.splitn(2, ',');
                let m: usize = parts.next().unwrap_or("0").trim().parse().unwrap_or(0);
                let n: usize = parts
                    .next()
                    .map(|s| s.trim().parse().unwrap_or(m))
                    .unwrap_or(m);
                (m, n.max(m))
            }
            _ => (1, 1),
        };
        atoms.push(PatternAtom { class, min, max });
    }
    atoms
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

/// String literals act as regex-lite strategies, like in `proptest`.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(self) {
            if atom.class.is_empty() {
                continue;
            }
            let reps = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
            for _ in 0..reps {
                let (lo, hi) = atom.class[rng.below(atom.class.len() as u64) as usize];
                // Rejection-sample the (rare) surrogate gap.
                let span = hi as u32 - lo as u32 + 1;
                let c = loop {
                    let code = lo as u32 + rng.below(span as u64) as u32;
                    if let Some(c) = char::from_u32(code) {
                        break c;
                    }
                };
                out.push(c);
            }
        }
        out
    }

    fn shrink(&self, value: &String) -> Vec<String> {
        let chars: Vec<char> = value.chars().collect();
        if chars.is_empty() {
            return Vec::new();
        }
        let mut out = vec![String::new()];
        if chars.len() > 1 {
            out.push(chars[..chars.len() / 2].iter().collect());
            out.push(chars[..chars.len() - 1].iter().collect());
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Tuples of strategies (one per macro argument)
// ---------------------------------------------------------------------------

/// A tuple of strategies generating a tuple of values, with joint
/// one-position-at-a-time shrinking.
pub trait StrategyTuple {
    /// Tuple of the component value types.
    type Values: Clone + Debug;

    /// Draws each component in order from the shared stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Values;

    /// Tries every single-position simplification of `cur`; returns the
    /// first candidate for which `fails` says the property still fails.
    fn shrink_step(
        &self,
        cur: &Self::Values,
        fails: &mut dyn FnMut(&Self::Values) -> bool,
    ) -> Option<Self::Values>;
}

macro_rules! impl_strategy_tuple {
    ($(($idx:tt $s:ident))+) => {
        impl<$($s: Strategy),+> StrategyTuple for ($($s,)+) {
            type Values = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Values {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink_step(
                &self,
                cur: &Self::Values,
                fails: &mut dyn FnMut(&Self::Values) -> bool,
            ) -> Option<Self::Values> {
                $(
                    for cand in self.$idx.shrink(&cur.$idx) {
                        let mut next = cur.clone();
                        next.$idx = cand;
                        if fails(&next) {
                            return Some(next);
                        }
                    }
                )+
                None
            }
        }
    };
}

impl_strategy_tuple!((0 S0));
impl_strategy_tuple!((0 S0) (1 S1));
impl_strategy_tuple!((0 S0) (1 S1) (2 S2));
impl_strategy_tuple!((0 S0) (1 S1) (2 S2) (3 S3));
impl_strategy_tuple!((0 S0) (1 S1) (2 S2) (3 S3) (4 S4));
impl_strategy_tuple!((0 S0) (1 S1) (2 S2) (3 S3) (4 S4) (5 S5));
impl_strategy_tuple!((0 S0) (1 S1) (2 S2) (3 S3) (4 S4) (5 S5) (6 S6));
impl_strategy_tuple!((0 S0) (1 S1) (2 S2) (3 S3) (4 S4) (5 S5) (6 S6) (7 S7));
impl_strategy_tuple!((0 S0) (1 S1) (2 S2) (3 S3) (4 S4) (5 S5) (6 S6) (7 S7) (8 S8));
impl_strategy_tuple!((0 S0) (1 S1) (2 S2) (3 S3) (4 S4) (5 S5) (6 S6) (7 S7) (8 S8) (9 S9));

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".into()
    }
}

fn run_one<V>(prop: &mut dyn FnMut(&V) -> CaseResult, values: &V) -> CaseResult {
    match catch_unwind(AssertUnwindSafe(|| prop(values))) {
        Ok(r) => r,
        Err(payload) => Err(CaseError::Fail(panic_message(payload))),
    }
}

/// Runs `prop` against `cfg.cases` generated inputs; on failure, shrinks
/// the input and panics with the minimal reproduction. This is the
/// engine behind the [`proptest!`](crate::proptest) macro.
pub fn run_property<T: StrategyTuple>(
    cfg: &Config,
    name: &str,
    strategies: T,
    mut prop: impl FnMut(&T::Values) -> CaseResult,
) {
    let mut rng = Pcg64::new(cfg.seed).split_str(name);
    let mut passed = 0u32;
    let mut rejects = 0u32;
    while passed < cfg.cases {
        let values = strategies.generate(&mut rng);
        match run_one(&mut prop, &values) {
            Ok(()) => passed += 1,
            Err(CaseError::Reject) => {
                rejects += 1;
                assert!(
                    rejects <= cfg.max_rejects,
                    "property '{name}': gave up after {rejects} rejected inputs \
                     ({passed}/{} cases passed)",
                    cfg.cases
                );
            }
            Err(CaseError::Fail(first_msg)) => {
                // Shrink: during the search, silence the default panic
                // hook so hundreds of candidate panics don't spam the
                // captured output.
                let mut cur = values;
                let mut msg = first_msg;
                let prev_hook = std::panic::take_hook();
                std::panic::set_hook(Box::new(|_| {}));
                let mut attempts = 0u32;
                while attempts < cfg.max_shrink_iters {
                    let mut last_fail_msg = None;
                    let step = strategies.shrink_step(&cur, &mut |cand| {
                        attempts += 1;
                        if attempts > cfg.max_shrink_iters {
                            return false;
                        }
                        match run_one(&mut prop, cand) {
                            Err(CaseError::Fail(m)) => {
                                last_fail_msg = Some(m);
                                true
                            }
                            _ => false,
                        }
                    });
                    match step {
                        Some(next) => {
                            cur = next;
                            if let Some(m) = last_fail_msg {
                                msg = m;
                            }
                        }
                        None => break,
                    }
                }
                std::panic::set_hook(prev_hook);
                panic!(
                    "property '{name}' failed (seed {:#x}, after {passed} passing cases, \
                     {attempts} shrink attempts)\n  minimal failing input: {:?}\n  cause: {}",
                    cfg.seed, cur, msg
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property-based tests; a drop-in for `proptest::proptest!`
/// over the subset of syntax used in this workspace.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::prop::Config::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident
        ( $( $arg:pat in $strat:expr ),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            #[allow(unused_mut, unused_variables)]
            fn $name() {
                let __cfg: $crate::prop::Config = $cfg;
                let __strategies = ( $($strat,)+ );
                $crate::prop::run_property(
                    &__cfg,
                    stringify!($name),
                    __strategies,
                    |__values| -> $crate::prop::CaseResult {
                        let ( $($arg,)+ ) = ::std::clone::Clone::clone(__values);
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
}

/// Asserts a condition inside a property; failures are shrunk, not fatal.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::prop::CaseError::fail(format!(
                "prop_assert!({}) failed at {}:{}",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::prop::CaseError::fail(format!(
                "prop_assert! failed at {}:{}: {}",
                file!(), line!(), format!($($fmt)+)
            )));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::prop::CaseError::fail(format!(
                        "prop_assert_eq! failed at {}:{}\n  left: {:?}\n right: {:?}",
                        file!(), line!(), __l, __r
                    )));
                }
            }
        }
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err($crate::prop::CaseError::fail(format!(
                        "prop_assert_ne! failed at {}:{}\n  both: {:?}",
                        file!(), line!(), __l
                    )));
                }
            }
        }
    };
}

/// Skips inputs that don't satisfy a precondition (not counted as cases).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::prop::CaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_generation_stays_in_range() {
        let mut rng = Pcg64::new(1);
        let s = 5u64..50;
        for _ in 0..1000 {
            let v = s.generate(&mut rng);
            assert!((5..50).contains(&v));
        }
    }

    #[test]
    fn float_generation_stays_in_range() {
        let mut rng = Pcg64::new(2);
        let s = -1.0f64..3.0;
        for _ in 0..1000 {
            let v = s.generate(&mut rng);
            assert!((-1.0..3.0).contains(&v));
        }
    }

    #[test]
    fn vec_lengths_respect_bounds() {
        let mut rng = Pcg64::new(3);
        let s = vec(0.0f64..1.0, 2..7);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
        }
    }

    #[test]
    fn string_pattern_class_and_counts() {
        let mut rng = Pcg64::new(4);
        let s = "[a-z]{1,8}";
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((1..=8).contains(&v.chars().count()), "{v:?}");
            assert!(v.chars().all(|c| c.is_ascii_lowercase()), "{v:?}");
        }
        let printable = "\\PC*";
        for _ in 0..200 {
            let v = printable.generate(&mut rng);
            assert!(v.chars().all(|c| !c.is_control()), "{v:?}");
        }
    }

    #[test]
    fn structured_pattern_parses() {
        let mut rng = Pcg64::new(5);
        let s = "[0-9a-z. \n]{0,100}";
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v.chars().count() <= 100);
            assert!(v
                .chars()
                .all(|c| c.is_ascii_digit()
                    || c.is_ascii_lowercase()
                    || c == '.'
                    || c == ' '
                    || c == '\n'));
        }
    }

    /// The satellite-task acceptance check: shrinking a seeded synthetic
    /// property finds the exact minimal failing integer.
    #[test]
    fn shrinking_finds_minimal_failing_integer() {
        const THRESHOLD: u64 = 317;
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_property(
                &Config::with_cases(64),
                "synthetic_threshold",
                (0u64..1000,),
                |&(v,)| {
                    if v >= THRESHOLD {
                        Err(CaseError::fail("too big"))
                    } else {
                        Ok(())
                    }
                },
            );
        }));
        let msg = panic_message(result.expect_err("property must fail"));
        assert!(
            msg.contains(&format!("minimal failing input: ({THRESHOLD},)")),
            "shrink did not reach the minimal input:\n{msg}"
        );
    }

    #[test]
    fn rejection_is_not_failure() {
        // Half the inputs are assumed away; the property still completes.
        run_property(
            &Config::with_cases(32),
            "assume_even",
            (0u64..1000,),
            |&(v,)| {
                if v % 2 == 1 {
                    return Err(CaseError::Reject);
                }
                assert!(v % 2 == 0);
                Ok(())
            },
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = Config::default();
        let strat = (0u64..1_000_000, vec(0.0f64..1.0, 0..10));
        let draw = |seed: u64| {
            let mut rng = Pcg64::new(seed).split_str("det");
            (0..16).map(|_| strat.generate(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(cfg.seed), draw(cfg.seed));
        assert_ne!(draw(cfg.seed), draw(cfg.seed + 1));
    }

    // The macro surface itself, exercised end-to-end.
    crate::proptest! {
        #![proptest_config(crate::prop::Config::with_cases(16))]
        #[test]
        fn macro_roundtrip(mut xs in vec(0u32..100, 0..8), flip in any::<bool>()) {
            xs.sort();
            let mut ys = xs.clone();
            if flip { ys.reverse(); ys.reverse(); }
            crate::prop_assert_eq!(xs, ys);
        }
    }
}
