//! RAII temporary directories for tests.
//!
//! Test suites used to build scratch paths from `std::process::id()`
//! alone, which collides when two tests in one process share the name
//! and leaks the directory when a test crashes before its manual
//! cleanup. [`TempDir`] fixes both: a process-wide counter makes every
//! instance unique within the process, the pid keeps concurrent test
//! binaries apart, a stale survivor of a crashed earlier run is cleared
//! on creation, and `Drop` removes the directory even when the test
//! fails after its assertions.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Distinguishes instances created by one process.
static NEXT: AtomicU64 = AtomicU64::new(0);

/// A uniquely named directory under the system temp dir, removed on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates `${TMPDIR}/<prefix>-<pid>-<counter>`, empty.
    ///
    /// Panics if the directory cannot be created — a test without its
    /// scratch space cannot run meaningfully.
    pub fn new(prefix: &str) -> TempDir {
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("{prefix}-{}-{n}", std::process::id()));
        if path.exists() {
            // A stale dir from a crashed run that recycled our pid.
            let _ = std::fs::remove_dir_all(&path);
        }
        std::fs::create_dir_all(&path)
            .unwrap_or_else(|e| panic!("cannot create temp dir {path:?}: {e}"));
        TempDir { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A path inside the directory.
    pub fn join(&self, name: impl AsRef<Path>) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_and_cleaned_up() {
        let a = TempDir::new("uucs-tempdir-test");
        let b = TempDir::new("uucs-tempdir-test");
        assert_ne!(a.path(), b.path());
        assert!(a.path().is_dir());
        std::fs::write(a.join("f.txt"), "x").unwrap();
        let kept = a.path().to_path_buf();
        drop(a);
        assert!(!kept.exists(), "dropped TempDir removes its tree");
        assert!(b.path().is_dir(), "sibling survives");
    }
}
