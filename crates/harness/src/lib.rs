//! # uucs-harness — the workspace's in-tree measurement runtime
//!
//! UUCS deploys like the volunteer-computing systems it studies: onto
//! arbitrary hosts, with no guarantee of network access at build time.
//! This crate makes the workspace hermetic by replacing the two registry
//! test/bench frameworks with std-only equivalents:
//!
//! * [`bench`] — a Criterion-compatible micro-benchmark runtime:
//!   warmup + iteration calibration, median/MAD over samples, throughput
//!   reporting, JSON emission to `target/uucs-bench/*.json`, and a
//!   `UUCS_BENCH_QUICK=1` smoke mode. Entry points:
//!   [`bench_group!`]/[`bench_main!`] and [`Criterion`].
//! * [`prop`] — a proptest-compatible property-testing runtime: seeded
//!   [`Pcg64`](uucs_stats::Pcg64)-driven generators for ints, floats,
//!   vectors, ranges and regex-lite strings, a configurable case count,
//!   and binary-search shrinking on failure. Entry points: [`proptest!`]
//!   and [`prelude`].
//! * [`tempdir`] — an RAII [`TempDir`] guard for test scratch space
//!   (unique per instance, cleaned up on drop).
//!
//! Both runtimes draw their randomness and statistics conventions from
//! `uucs-stats`, so every harness run is deterministic and offline.

pub mod bench;
pub mod prop;
pub mod tempdir;

pub use bench::{BenchResult, Bencher, BenchmarkGroup, Criterion, Throughput};
pub use std::hint::black_box;
pub use tempdir::TempDir;

/// Collection strategies, addressed as `prop::collection::vec` from the
/// prelude (matching proptest's module layout).
pub mod collection {
    pub use crate::prop::{vec, SizeRange, VecStrategy};
}

/// Everything a property-test file needs: a drop-in replacement for
/// `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::prop::{any, Config, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    /// The `prop::...` module alias (e.g. `prop::collection::vec`).
    pub use crate as prop;
}
