//! A std-only micro-benchmark runtime — a Criterion-compatible subset.
//!
//! The measurement loop per bench function:
//!
//! 1. **Calibration / warmup** — the routine is run with geometrically
//!    growing iteration counts until it has consumed the warmup budget,
//!    which both warms caches and yields a per-iteration cost estimate.
//! 2. **Sampling** — the iteration count is fixed so one sample takes
//!    roughly `target_sample_time`, then `sample_size` samples are
//!    collected.
//! 3. **Reporting** — the median and MAD (median absolute deviation) of
//!    the per-iteration times are printed, with throughput when the
//!    bench declared one, and every result is appended to
//!    `target/uucs-bench/<bench-target>.json` at exit.
//!
//! Setting `UUCS_BENCH_QUICK=1` switches to smoke mode: every bench runs
//! exactly one sample of one iteration (artifact printing via
//! `print_once`-style fixtures is unaffected), which is what CI uses to
//! prove the bench targets stay runnable.
//!
//! Tunables: `UUCS_BENCH_SAMPLES` (default 20), `UUCS_BENCH_SAMPLE_MS`
//! (default 10), `UUCS_BENCH_WARMUP_MS` (default 100).

use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Work-per-iteration declaration, for derived rates in reports.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Handed to each bench closure; `iter` runs and times the payload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over this sample's iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// One measured bench, as serialized into the JSON report.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full bench id (`group/name`).
    pub name: String,
    /// Iterations per sample after calibration.
    pub iters_per_sample: u64,
    /// Number of samples collected.
    pub samples: usize,
    /// Median per-iteration time.
    pub median_ns: f64,
    /// Median absolute deviation of per-iteration times.
    pub mad_ns: f64,
    /// Mean per-iteration time.
    pub mean_ns: f64,
    /// Fastest sample's per-iteration time.
    pub min_ns: f64,
    /// Slowest sample's per-iteration time.
    pub max_ns: f64,
    /// Declared throughput, if any.
    pub throughput: Option<Throughput>,
}

impl BenchResult {
    fn per_sec(&self) -> Option<(f64, &'static str)> {
        let (n, unit) = match self.throughput? {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) => (n, "B/s"),
        };
        if self.median_ns <= 0.0 {
            return None;
        }
        Some((n as f64 * 1e9 / self.median_ns, unit))
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The bench driver: collects settings, runs bench functions, reports.
pub struct Criterion {
    target: String,
    quick: bool,
    sample_size: usize,
    target_sample_time: Duration,
    warmup_time: Duration,
    filter: Option<String>,
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Builds a driver from the environment and CLI args, as
    /// [`bench_main!`](crate::bench_main) does. `target` names the JSON
    /// report file.
    pub fn from_env(target: &str) -> Self {
        // cargo bench passes `--bench`; any bare argument is a filter.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'));
        Criterion {
            target: target.to_string(),
            quick: quick_mode(),
            sample_size: env_u64("UUCS_BENCH_SAMPLES", 20).max(2) as usize,
            target_sample_time: Duration::from_millis(env_u64("UUCS_BENCH_SAMPLE_MS", 10)),
            warmup_time: Duration::from_millis(env_u64("UUCS_BENCH_WARMUP_MS", 100)),
            filter,
            results: Vec::new(),
        }
    }

    /// Measures one bench function under the driver's default settings.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        self.run_bench(id.as_ref().to_string(), None, None, f);
        self
    }

    /// Opens a named group whose benches share settings overrides.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.as_ref().to_string(),
            sample_size: None,
            throughput: None,
        }
    }

    fn run_bench<F: FnMut(&mut Bencher)>(
        &mut self,
        name: String,
        sample_size: Option<usize>,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut per_iter_ns: Vec<f64>;
        let iters;
        if self.quick {
            // Smoke mode: exactly one sample of one iteration.
            iters = 1;
            let elapsed = run_sample(&mut f, 1);
            per_iter_ns = std::vec![elapsed.as_nanos() as f64];
        } else {
            iters = calibrate(&mut f, self.warmup_time, self.target_sample_time);
            let samples = sample_size.unwrap_or(self.sample_size);
            per_iter_ns = (0..samples)
                .map(|_| run_sample(&mut f, iters).as_nanos() as f64 / iters as f64)
                .collect();
        }
        let result = summarize(name, iters, &mut per_iter_ns, throughput);
        print_result(&result, self.quick);
        self.results.push(result);
    }

    /// Writes the JSON report and prints the footer. Called once by
    /// [`bench_main!`](crate::bench_main) after all groups ran.
    pub fn finalize(&self) {
        if self.results.is_empty() {
            return;
        }
        let path = report_dir().join(format!("{}.json", self.target));
        match self.write_json(&path) {
            Ok(()) => println!(
                "\n{} benches, report written to {}",
                self.results.len(),
                path.display()
            ),
            Err(e) => eprintln!("uucs-bench: could not write {}: {e}", path.display()),
        }
    }

    fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut out = std::fs::File::create(path)?;
        writeln!(out, "{{")?;
        writeln!(out, "  \"target\": {},", json_string(&self.target))?;
        writeln!(out, "  \"quick\": {},", self.quick)?;
        writeln!(out, "  \"benches\": [")?;
        for (i, r) in self.results.iter().enumerate() {
            let throughput = match r.throughput {
                Some(Throughput::Elements(n)) => {
                    format!(", \"elements_per_iter\": {n}")
                }
                Some(Throughput::Bytes(n)) => format!(", \"bytes_per_iter\": {n}"),
                None => String::new(),
            };
            writeln!(
                out,
                "    {{\"name\": {}, \"iters_per_sample\": {}, \"samples\": {}, \
                 \"median_ns\": {:.1}, \"mad_ns\": {:.1}, \"mean_ns\": {:.1}, \
                 \"min_ns\": {:.1}, \"max_ns\": {:.1}{}}}{}",
                json_string(&r.name),
                r.iters_per_sample,
                r.samples,
                r.median_ns,
                r.mad_ns,
                r.mean_ns,
                r.min_ns,
                r.max_ns,
                throughput,
                if i + 1 == self.results.len() { "" } else { "," }
            )?;
        }
        writeln!(out, "  ]")?;
        writeln!(out, "}}")
    }
}

/// Whether `UUCS_BENCH_QUICK=1` smoke mode is active.
pub fn quick_mode() -> bool {
    std::env::var("UUCS_BENCH_QUICK").is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
}

/// A group of benches sharing a name prefix, sample size, and throughput,
/// mirroring Criterion's `BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Declares per-iteration work so reports include a rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Measures one bench under the group's settings.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.as_ref());
        self.criterion
            .run_bench(name, self.sample_size, self.throughput, f);
        self
    }

    /// Ends the group (kept for Criterion API parity).
    pub fn finish(self) {}
}

/// Runs one sample of `iters` iterations and returns its wall time.
fn run_sample<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    bencher.elapsed
}

/// Grows the iteration count geometrically until the routine has burned
/// the warmup budget, then sizes samples to `target_sample_time`.
fn calibrate<F: FnMut(&mut Bencher)>(
    f: &mut F,
    warmup: Duration,
    target_sample_time: Duration,
) -> u64 {
    let mut iters: u64 = 1;
    let mut spent = Duration::ZERO;
    let mut per_iter_ns = f64::INFINITY;
    loop {
        let elapsed = run_sample(f, iters);
        spent += elapsed;
        if elapsed > Duration::ZERO {
            per_iter_ns = elapsed.as_nanos() as f64 / iters as f64;
        }
        if spent >= warmup || iters >= 1 << 24 {
            break;
        }
        iters = iters.saturating_mul(2);
    }
    if !per_iter_ns.is_finite() || per_iter_ns <= 0.0 {
        return 1;
    }
    ((target_sample_time.as_nanos() as f64 / per_iter_ns).round() as u64).clamp(1, 1 << 24)
}

fn summarize(
    name: String,
    iters: u64,
    per_iter_ns: &mut [f64],
    throughput: Option<Throughput>,
) -> BenchResult {
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median = median_of_sorted(per_iter_ns);
    let mut deviations: Vec<f64> = per_iter_ns.iter().map(|x| (x - median).abs()).collect();
    deviations.sort_by(|a, b| a.total_cmp(b));
    BenchResult {
        name,
        iters_per_sample: iters,
        samples: per_iter_ns.len(),
        median_ns: median,
        mad_ns: median_of_sorted(&deviations),
        mean_ns: per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64,
        min_ns: per_iter_ns.first().copied().unwrap_or(0.0),
        max_ns: per_iter_ns.last().copied().unwrap_or(0.0),
        throughput,
    }
}

fn median_of_sorted(xs: &[f64]) -> f64 {
    match xs.len() {
        0 => 0.0,
        n if n % 2 == 1 => xs[n / 2],
        n => (xs[n / 2 - 1] + xs[n / 2]) / 2.0,
    }
}

fn print_result(r: &BenchResult, quick: bool) {
    let rate = r
        .per_sec()
        .map(|(rate, unit)| format!("  thrpt: {}{unit}", si(rate)))
        .unwrap_or_default();
    if quick {
        println!("bench {:<44} {:>12}/iter (quick: 1 iter){rate}", r.name, ns(r.median_ns));
    } else {
        println!(
            "bench {:<44} {:>12}/iter ± {} (n={}×{}){rate}",
            r.name,
            ns(r.median_ns),
            ns(r.mad_ns),
            r.samples,
            r.iters_per_sample,
        );
    }
}

/// Formats nanoseconds with an adaptive unit.
fn ns(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2} s", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2} ms", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2} µs", v / 1e3)
    } else {
        format!("{v:.0} ns")
    }
}

/// Formats a rate with SI prefixes.
fn si(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2} G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2} M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2} K", v / 1e3)
    } else {
        format!("{v:.1} ")
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Where JSON reports land: `<workspace target dir>/uucs-bench`.
fn report_dir() -> PathBuf {
    // Walk up from the bench executable (target/<profile>/deps/...) to
    // the enclosing `target` directory; fall back to ./target.
    if let Ok(exe) = std::env::current_exe() {
        let mut dir = exe.as_path();
        while let Some(parent) = dir.parent() {
            if parent.file_name().is_some_and(|n| n == "target") {
                return parent.join("uucs-bench");
            }
            dir = parent;
        }
    }
    PathBuf::from("target").join("uucs-bench")
}

/// Declares a bench group function, like `criterion_group!`.
#[macro_export]
macro_rules! bench_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::bench::Criterion) {
            $( $bench(c); )+
        }
    };
}

/// Declares the bench `main`, like `criterion_main!`.
#[macro_export]
macro_rules! bench_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::bench::Criterion::from_env(env!("CARGO_CRATE_NAME"));
            $( $group(&mut criterion); )+
            criterion.finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    /// Calibration sizes samples near the target on a known-cost payload.
    #[test]
    fn calibration_converges_on_known_cost() {
        // ~200µs per iteration of busy spinning.
        let spin = |us: u64| {
            let start = Instant::now();
            while start.elapsed() < Duration::from_micros(us) {
                std::hint::black_box(0u64);
            }
        };
        let mut routine = |b: &mut Bencher| b.iter(|| spin(200));
        let target = Duration::from_millis(10);
        let iters = calibrate(&mut routine, Duration::from_millis(20), target);
        // 10ms / 200µs = 50 iterations; allow generous slack for timer
        // noise and scheduler jitter.
        assert!(
            (10..=250).contains(&iters),
            "calibrated {iters} iters for a 200µs payload and 10ms target"
        );
        // And the resulting sample really lands near the target.
        let sample = run_sample(&mut routine, iters);
        assert!(
            sample >= target / 4 && sample <= target * 8,
            "calibrated sample took {sample:?} (target {target:?})"
        );
    }

    /// Quick mode runs each bench exactly once with a single iteration.
    #[test]
    fn quick_mode_runs_at_most_one_iteration() {
        let calls = Cell::new(0u64);
        let iters_seen = Cell::new(0u64);
        let mut c = Criterion {
            target: "quick-test".into(),
            quick: true,
            sample_size: 20,
            target_sample_time: Duration::from_millis(10),
            warmup_time: Duration::from_millis(100),
            filter: None,
            results: Vec::new(),
        };
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls.set(calls.get() + 1);
            });
            iters_seen.set(iters_seen.get().max(b.iters));
        });
        assert_eq!(calls.get(), 1, "payload must run exactly once in quick mode");
        assert_eq!(iters_seen.get(), 1);
        assert_eq!(c.results.len(), 1);
        assert_eq!(c.results[0].samples, 1);
    }

    #[test]
    fn groups_prefix_names_and_apply_settings() {
        let mut c = Criterion {
            target: "group-test".into(),
            quick: true,
            sample_size: 20,
            target_sample_time: Duration::from_millis(10),
            warmup_time: Duration::from_millis(100),
            filter: None,
            results: Vec::new(),
        };
        let mut group = c.benchmark_group("grp");
        group.sample_size(10);
        group.throughput(Throughput::Elements(100));
        group.bench_function("inner", |b| b.iter(|| 1 + 1));
        group.finish();
        assert_eq!(c.results[0].name, "grp/inner");
        assert!(matches!(
            c.results[0].throughput,
            Some(Throughput::Elements(100))
        ));
    }

    #[test]
    fn median_and_mad_are_robust() {
        let mut xs = [10.0, 10.0, 10.0, 11.0, 9.0, 1000.0];
        let r = summarize("m".into(), 1, &mut xs, None);
        // Sorted deviations from the median 10: [0,0,0,1,1,990] → MAD 0.5.
        assert_eq!(r.median_ns, 10.0);
        assert_eq!(r.mad_ns, 0.5);
        assert_eq!(r.max_ns, 1000.0);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
