#!/usr/bin/env bash
# The tier-1 gate, hermetically: offline warning-free build, full test
# suite, and a quick-mode smoke pass over every bench target (which also
# regenerates the paper artifacts).
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== build (release, offline, warnings are fatal) =="
build_log=$(mktemp)
trap 'rm -f "$build_log"' EXIT
# --workspace matters: with a root package, a bare `cargo build` skips
# every other member's binaries (uucs-server, uucs-client, ...).
cargo build --release --workspace 2>&1 | tee "$build_log"
if grep -q "^warning" "$build_log"; then
    echo "ci: cargo build emitted warnings (see above)" >&2
    exit 1
fi

echo "== test (workspace) =="
cargo test -q --workspace

echo "== wal fault-injection suite (crash points x sync policies) =="
cargo test -q -p uucs-wal

echo "== chaos suite (network faults, exactly-once, kill/recover) =="
cargo test -q --test chaos

echo "== wire fuzz (garbage/truncated/interleaved frames) =="
cargo test -q --test wire_fuzz

echo "== bench smoke (UUCS_BENCH_QUICK=1, all six targets) =="
for bench in paper_figures substrate exerciser_accuracy ablations wal chaos; do
    echo "-- $bench --"
    UUCS_BENCH_QUICK=1 cargo bench -p uucs-bench --bench "$bench"
done

echo "ci: all gates passed"
