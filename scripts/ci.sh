#!/usr/bin/env bash
# The tier-1 gate, hermetically: offline warning-free build, lint gate,
# full test suite, and a quick-mode smoke pass over every bench target
# (which also regenerates the paper artifacts and the bench summary).
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== build (release, offline, warnings are fatal) =="
build_log=$(mktemp)
trap 'rm -f "$build_log"' EXIT
# --workspace matters: with a root package, a bare `cargo build` skips
# every other member's binaries (uucs-server, uucs-client, ...).
cargo build --release --workspace 2>&1 | tee "$build_log"
if grep -q "^warning" "$build_log"; then
    echo "ci: cargo build emitted warnings (see above)" >&2
    exit 1
fi

echo "== clippy (deny warnings) =="
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "ci: clippy unavailable in this toolchain; skipping the lint gate" >&2
fi

echo "== test (workspace) =="
cargo test -q --workspace

echo "== wal fault-injection suite (crash points x sync policies) =="
cargo test -q -p uucs-wal

echo "== pagecache suite (ARC ghost lists, cached-vs-plain equivalence, scheduler) =="
cargo test -q -p uucs-pagecache

echo "== chaos suite (network faults, exactly-once, kill/recover) =="
cargo test -q --test chaos

echo "== telemetry e2e (STATS verb, gauges, deterministic traces) =="
cargo test -q --test telemetry_e2e

echo "== wire fuzz (garbage/truncated/interleaved frames, both framings) =="
cargo test -q --test wire_fuzz

echo "== wire crate (framing, negotiation, delta codec) =="
cargo test -q -p uucs-wire

echo "== wire e2e (legacy byte-parity, negotiation matrix, pipelining, MODELDELTA) =="
cargo test -q --test wire_e2e

echo "== model service (sketch properties, e2e, closed-loop governor) =="
cargo test -q -p uucs-modelsvc
cargo test -q --test modelsvc_e2e

echo "== engine e2e (>1024 conns, group-commit kill chaos, reshard replay) =="
cargo test -q --test engine_e2e

echo "== cluster suite (WAL shipping, backfill edge cases, promotion race) =="
cargo test -q -p uucs-cluster

echo "== cluster e2e (kill-the-leader exactly-once, partitioned follower) =="
cargo test -q --test cluster_e2e

echo "== fleet smoke (200 multiplexed clients vs a live sharded server) =="
cargo run -q --release -p uucs-study -- fleet --quick

echo "== cluster fleet smoke (2-node tier, leader killed mid-run, failover) =="
cargo run -q --release -p uucs-study -- fleet --cluster --quick

echo "== binary fleet smoke (wire v2, pipelined depth 8) =="
cargo run -q --release -p uucs-study -- fleet --quick --wire binary --pipeline 8

echo "== bench smoke (UUCS_BENCH_QUICK=1, all twelve targets) =="
for bench in paper_figures substrate exerciser_accuracy ablations wal chaos telemetry_overhead modelsvc engine cluster wire pagecache; do
    echo "-- $bench --"
    UUCS_BENCH_QUICK=1 cargo bench -p uucs-bench --bench "$bench"
done

echo "== bench summary =="
# Collect the per-target JSON reports the harness wrote under
# target/uucs-bench/ into one stable artifact at the repo root.
summary=BENCH_SUMMARY.json
{
    printf '{\n'
    first=1
    for bench in paper_figures substrate exerciser_accuracy ablations wal chaos telemetry_overhead modelsvc engine cluster wire pagecache; do
        report="target/uucs-bench/$bench.json"
        [ -f "$report" ] || continue
        [ "$first" -eq 1 ] || printf ',\n'
        first=0
        printf '  "%s": ' "$bench"
        cat "$report"
    done
    printf '\n}\n'
} >"$summary"
echo "ci: wrote $summary"

echo "ci: all gates passed"
