//! Reproduces the paper's controlled study (§3) end to end and prints
//! every regenerated table and figure with paper-vs-measured
//! comparisons — the content of EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release --example controlled_study [seed] [users]
//! ```

use uucs::comfort::Fidelity;
use uucs::study::controlled::{ControlledStudy, StudyConfig};
use uucs::study::report;

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2004);
    let users: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(33);

    eprintln!("controlled study: seed {seed}, {users} users, Fast fidelity");
    let data = ControlledStudy::new(StudyConfig {
        seed,
        users,
        fidelity: Fidelity::Fast,
    })
    .run();
    println!("{}", report::full_report(&data));
    println!(
        "agreement with the paper (within 0.5 contention units): {:.0}%",
        report::agreement_fraction(&data, 0.5) * 100.0
    );
}
