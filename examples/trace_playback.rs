//! Figure 4, measured: plays a step and a ramp at full fidelity and
//! draws the commanded contention against the *achieved* CPU utilization
//! the machine's monitors recorded, second by second — the §2.3 load
//! measurements the UUCS client stores with every run.
//!
//! ```text
//! cargo run --release --example trace_playback
//! ```

use uucs::comfort::{execute_run_traced, Fidelity, RunSetup, RunStyle, UserPopulation};
use uucs::testcase::{ExerciseSpec, Resource, Testcase};
use uucs::workloads::Task;

fn main() {
    let pop = UserPopulation::generate(1, 5);
    // A maximally tolerant stand-in so both testcases run to exhaustion
    // and the full 120-second series prints.
    let mut user = pop.users()[0].clone();
    for v in user.thresholds.values_mut() {
        *v = f64::INFINITY;
    }

    for (name, spec) in [
        (
            "step(2.0, 120, 40)",
            ExerciseSpec::Step {
                level: 2.0,
                duration: 120.0,
                start: 40.0,
            },
        ),
        (
            "ramp(2.0, 120)",
            ExerciseSpec::Ramp {
                level: 2.0,
                duration: 120.0,
            },
        ),
    ] {
        let tc = Testcase::single("trace-demo", 1.0, Resource::Cpu, spec);
        let (record, trace) = execute_run_traced(&RunSetup {
            user: &user,
            task: Task::Word,
            testcase: &tc,
            style: RunStyle::infer(&tc),
            seed: 9,
            fidelity: Fidelity::Full,
            client_id: "trace-demo".into(),
        });
        println!("== {name} (outcome: {:?}) ==", record.outcome);
        println!("{}", trace.render_ascii(Resource::Cpu, 12));
        println!(
            "mean CPU utilization {:.2}, mean keystroke latency {} us\n",
            record.monitor.cpu_util,
            record
                .monitor
                .mean_latency_us
                .map(|l| format!("{l:.0}"))
                .unwrap_or_else(|| "-".into())
        );
    }
    println!("(per-second CSV available via RunTrace::to_csv)");
}
