//! Closed-loop adaptive borrowing, end to end.
//!
//! Boots a real TCP server, feeds it a population's uploads (building
//! the server-side comfort model), then drives a
//! [`BorrowingGovernor`](uucs::client::BorrowingGovernor) through the
//! resilient transport: fetch advice, cap the exerciser, survive the
//! server going away. Finishes with the borrowed-versus-discomfort
//! frontier that shows where the governor landed.
//!
//! ```text
//! cargo run --release --example adaptive_borrowing
//! ```

use std::sync::Arc;
use uucs::client::{BorrowingGovernor, RefreshOutcome, ResilientTransport, UucsClient};
use uucs::comfort::{calibration, Fidelity, UserPopulation};
use uucs::protocol::MachineSnapshot;
use uucs::server::{tcp, TestcaseStore, UucsServer};
use uucs::study::closedloop::{render_closed_loop, ClosedLoop, ClosedLoopConfig};
use uucs::testcase::{ExerciseSpec, Resource};
use uucs::workloads::Task;

fn main() {
    let task = Task::Word;
    let resource = Resource::Cpu;
    let epsilon = 0.05;

    // A real server over real TCP, with the Word calibration library.
    let server = Arc::new(UucsServer::new(
        TestcaseStore::from_testcases(calibration::controlled_testcases(task))
            .expect("unique ids"),
        2004,
    ));
    let handle = tcp::serve(server.clone(), "127.0.0.1:0").expect("bind");
    eprintln!("server listening on {}", handle.addr());

    // A small fleet uploads: this is what trains the comfort model.
    eprintln!("uploading a 16-subject fleet's runs ...");
    let population = UserPopulation::generate(16, 2004);
    for (i, user) in population.users().iter().enumerate() {
        let mut transport = ResilientTransport::new(handle.addr().to_string());
        let mut client = UucsClient::new(
            MachineSnapshot::study_machine(format!("borrower-{i:02}")),
            i as u64,
        );
        client.register(&mut transport).expect("register");
        for tc in calibration::controlled_testcases(task) {
            client.perform_run(user, task, &tc, Fidelity::Fast, 77 + i as u64);
        }
        client.hot_sync(&mut transport).expect("upload");
    }
    eprintln!(
        "model epoch {} after {} records",
        server.model_epoch(),
        server.result_count()
    );

    // The governor: ask for the highest level that keeps predicted
    // discomfort under epsilon, and cap the exerciser with it.
    let mut transport = ResilientTransport::new(handle.addr().to_string());
    let mut governor = BorrowingGovernor::new(resource, task.name(), epsilon, 0.5);
    let outcome = governor.refresh(&mut transport);
    println!(
        "governor refresh: {outcome:?} -> cap {:.3} at epoch {:?}",
        governor.level(),
        governor.epoch()
    );
    match governor.governed_spec(60.0) {
        ExerciseSpec::Step { level, duration, .. } => println!(
            "governed exerciser: steady step at contention {level:.3} for {duration}s"
        ),
        other => println!("governed exerciser: {other:?}"),
    }
    println!(
        "a greedy request for contention 8.0 is capped to {:.3}",
        governor.cap(8.0)
    );

    // Kill the server: the governor degrades to its cached model.
    handle.shutdown();
    drop(server);
    let outcome = governor.refresh(&mut transport);
    assert_eq!(outcome, RefreshOutcome::Offline);
    println!(
        "server gone: refresh -> {outcome:?}, cap {:.3} from the cached model (epoch {:?})",
        governor.level(),
        governor.epoch()
    );

    // The frontier: governor versus every fixed level, scored on a
    // simulated population (see DESIGN.md section 5e).
    eprintln!("\nscoring governor vs fixed levels ...");
    let data = ClosedLoop::new(ClosedLoopConfig {
        epsilon,
        ..ClosedLoopConfig::default()
    })
    .run();
    println!("{}", render_closed_loop(&data));
}
