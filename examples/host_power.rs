//! Question 6 from the paper's introduction: "How does the level depend
//! on the raw power of the host?" The paper deferred this to its
//! Internet-wide study; the simulator lets us *predict* the answer with
//! the perception-driven user model.
//!
//! The same user (same perception profile: latency tolerance ratio,
//! absolute perceptibility floor, patience) works on hosts from 0.5× to
//! 4× the study machine while a CPU ramp plays. On faster hosts the
//! foreground's absolute latencies shrink, so a larger *relative*
//! degradation still hides below the human perceptibility floor —
//! borrowing can go deeper before anyone notices.
//!
//! ```text
//! cargo run --release --example host_power
//! ```

use uucs::comfort::{
    execute_perception_run_at_speed, Fidelity, PerceptionProfile, RunSetup, RunStyle,
    UserPopulation,
};
use uucs::protocol::RunOutcome;
use uucs::testcase::{ExerciseSpec, Resource, Testcase};
use uucs::workloads::Task;

fn main() {
    let pop = UserPopulation::generate(1, 12);
    let user = &pop.users()[0];
    let profile = PerceptionProfile {
        tolerance_ratio: 1.8,
        latency_floor_us: 120_000.0,
        jitter_ratio: 2.5,
        patience_secs: 3,
    };

    println!(
        "{:<12} {:>8} {:>22} {:>14}",
        "task", "host", "discomfort level", "offset (s)"
    );
    for task in [Task::Word, Task::Powerpoint, Task::Quake] {
        // A deep CPU ramp so even tolerant configurations can cross.
        let tc = Testcase::single(
            format!("hp-{}-cpu-ramp", task.name().to_lowercase()),
            1.0,
            Resource::Cpu,
            ExerciseSpec::Ramp {
                level: 8.0,
                duration: 120.0,
            },
        );
        for speed in [0.5, 1.0, 2.0, 4.0] {
            let rec = execute_perception_run_at_speed(
                &RunSetup {
                    user,
                    task,
                    testcase: &tc,
                    style: RunStyle::Ramp,
                    seed: 31,
                    fidelity: Fidelity::Full,
                    client_id: "host-power".into(),
                },
                &profile,
                speed,
            );
            let level = rec
                .level_at_feedback(Resource::Cpu)
                .map(|l| format!("{l:.2}"))
                .unwrap_or_else(|| "-".into());
            let verdict = match rec.outcome {
                RunOutcome::Discomfort => level,
                RunOutcome::Exhausted => "> 8.0 (exhausted)".into(),
            };
            println!(
                "{:<12} {:>7.1}x {:>22} {:>14.0}",
                task.name(),
                speed,
                verdict,
                rec.offset_secs
            );
        }
        println!();
    }
    println!(
        "prediction for the paper's Internet study: tolerated CPU borrowing rises \
         with host speed for latency-floor-limited tasks (Word, Powerpoint), while \
         frame-rate tasks remain ratio-limited — the absolute floor matters less \
         when every frame is already fast."
    );
}
