//! The Internet-wide study (§4): around 100 heterogeneous clients
//! hot-sync a library of over 2000 testcases, execute them at Poisson
//! arrivals under whatever the user happens to be doing, and upload
//! results; the analysis then re-estimates the aggregate comfort CDFs
//! with the wider data.
//!
//! ```text
//! cargo run --release --example internet_study [clients] [runs-per-client]
//! ```

use uucs::comfort::metrics::discomfort_ecdf;
use uucs::study::internet::{InternetStudy, InternetStudyConfig};
use uucs::testcase::Resource;

fn main() {
    let mut args = std::env::args().skip(1);
    let clients: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(100);
    let runs_per_client: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(20);

    eprintln!("internet study: {clients} clients x {runs_per_client} runs ...");
    let data = InternetStudy::new(InternetStudyConfig {
        seed: 42,
        clients,
        runs_per_client,
        mean_gap_secs: 1800.0,
    })
    .run();

    println!(
        "collected {} runs from {} clients over {:.1} simulated client-days\n",
        data.records.len(),
        data.population.len(),
        data.simulated_secs / 86_400.0
    );

    // Estimate per-resource CDFs over every testcase kind the clients
    // happened to run (ramps, steps, sin, saw, M/M/1, M/G/1).
    for resource in [Resource::Cpu, Resource::Disk] {
        let prefix = format!("{resource}-");
        let runs: Vec<_> = data
            .records
            .iter()
            .filter(|r| r.testcase.starts_with(&prefix))
            .collect();
        let cdf = discomfort_ecdf(runs.iter().copied(), resource);
        println!(
            "{}",
            cdf.render_ascii(
                &format!(
                    "Internet-wide discomfort CDF for {resource} ({} runs, all function kinds)",
                    cdf.total()
                ),
                60,
                14
            )
        );
        if let Some(c05) = cdf.quantile(0.05) {
            println!("  c_0.05 estimate: {c05:.2}\n");
        }
    }

    println!(
        "tip: pass a larger client count to tighten the estimates — the paper's \
         Internet study exists precisely to grow these CDFs."
    );
}
