//! Comfort-aware cycle stealing — the trade-off the paper's introduction
//! motivates, measured.
//!
//! Compares four background-job strategies against each foreground task:
//!
//! * **screensaver** — run only when the user is away (Condor/SETI
//!   default): harvests nothing during a session.
//! * **low-priority** — soak idle cycles, preempted instantly.
//! * **throttled** — borrow at the level the comfort CDFs say offends at
//!   most 5 % of users (§5's advice).
//! * **feedback** — AIMD throttle driven by discomfort clicks (the
//!   paper's future-work direction).
//!
//! ```text
//! cargo run --release --example cycle_stealing
//! ```

use uucs::comfort::{
    run_harvest, run_resource_harvest, FeedbackThrottle, Fidelity, HarvestStrategy,
    ThrottleAdvisor, UserPopulation,
};
use uucs::study::controlled::{ControlledStudy, StudyConfig};
use uucs::study::figures;
use uucs::testcase::Resource;
use uucs::workloads::Task;

fn main() {
    eprintln!("deriving throttle levels from a 120-user study ...");
    let data = ControlledStudy::new(StudyConfig {
        seed: 2004,
        users: 120,
        fidelity: Fidelity::Fast,
    })
    .run();
    let mut advisor = ThrottleAdvisor::new();
    for t in Task::ALL {
        advisor.set_context(
            t,
            Resource::Cpu,
            figures::cell_metrics(&data, t, Resource::Cpu).ecdf.clone(),
        );
        advisor.set_aggregate(Resource::Cpu, figures::aggregate_cdf(&data, Resource::Cpu));
    }

    let pop = UserPopulation::generate(1, 7);
    let user = &pop.users()[0];
    let session = 300u64;

    println!(
        "{:<12} {:<14} {:>12} {:>12} {:>10} {:>8}",
        "task", "strategy", "harvest/s", "fg impact", "fg ms", "clicks"
    );
    for task in Task::ALL {
        let throttle_level = advisor
            .recommend_for(task, Resource::Cpu, 0.05)
            .unwrap_or(0.1);
        let strategies: Vec<(&str, HarvestStrategy)> = vec![
            ("screensaver", HarvestStrategy::ScreensaverOnly),
            ("low-priority", HarvestStrategy::LowPriority),
            (
                "throttled@5%",
                HarvestStrategy::Throttled {
                    level: throttle_level,
                },
            ),
            (
                "feedback",
                HarvestStrategy::Feedback {
                    throttle: FeedbackThrottle::new(0.05, 6.0, 0.02, 0.5, 40),
                },
            ),
        ];
        for (name, strategy) in strategies {
            let o = run_harvest(user, task, strategy, session, 11);
            println!(
                "{:<12} {:<14} {:>11.2}x {:>11.2}x {:>10.1} {:>8}",
                task.name(),
                name,
                o.harvest_rate(),
                o.fg_latency_ratio,
                o.fg_latency_ms,
                o.clicks
            );
        }
        println!();
    }
    println!(
        "reading: harvest/s = background CPU-seconds per wall second; fg impact = \
         foreground latency vs unloaded baseline. The paper's point in one table: \
         comfort-aware borrowing harvests real cycles from a busy machine at a \
         bounded, chosen level of user impact, where the screensaver strategy \
         gets nothing and low priority gets only what the task leaves idle.\n"
    );

    // §5's headline, measured: at the same 5% discomfort budget, how much
    // of each resource's standalone capacity can be captured?
    let mut advisor_all = ThrottleAdvisor::new();
    for r in Resource::STUDIED {
        advisor_all.set_aggregate(r, figures::aggregate_cdf(&data, r));
    }
    println!("\"Borrow disk and memory aggressively, CPU less so\" (5% budget, Word session):");
    println!(
        "{:<10} {:>8} {:>14} {:>18} {:>10}",
        "resource", "level", "captured", "amount", "fg impact"
    );
    for r in Resource::STUDIED {
        let level = advisor_all.recommend(r, 0.05).unwrap_or(0.1);
        let o = run_resource_harvest(user, Task::Word, r, level, 120, 21);
        println!(
            "{:<10} {:>8.2} {:>13.0}% {:>12.0} {:<5} {:>9.2}x",
            r.to_string(),
            level,
            o.capacity_fraction * 100.0,
            o.harvested,
            o.unit,
            o.fg_latency_ratio
        );
    }
}
