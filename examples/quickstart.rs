//! Quickstart: the five-minute tour of UUCS-RS.
//!
//! Builds a testcase (a CPU ramp like the paper's Figure 4), plays it on
//! the simulated study machine against a synthetic user doing the
//! Powerpoint task, and prints the run record — then asks the throttle
//! advisor what a background application could safely borrow.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use uucs::comfort::{execute_run, Fidelity, RunSetup, RunStyle, ThrottleAdvisor, UserPopulation};
use uucs::study::controlled::{ControlledStudy, StudyConfig};
use uucs::study::figures;
use uucs::testcase::{ExerciseSpec, Resource, Testcase};
use uucs::workloads::Task;

fn main() {
    // 1. A testcase: ramp CPU contention from 0 to 2.0 over two minutes
    //    (Figure 4, right panel).
    let testcase = Testcase::single(
        "quickstart-cpu-ramp",
        1.0,
        Resource::Cpu,
        ExerciseSpec::Ramp {
            level: 2.0,
            duration: 120.0,
        },
    );
    println!(
        "testcase {}: {}s of {} borrowing, peak contention {:.1}",
        testcase.id,
        testcase.duration(),
        Resource::Cpu,
        testcase.function(Resource::Cpu).unwrap().peak()
    );

    // 2. A synthetic user, calibrated to the paper's published comfort
    //    statistics.
    let population = UserPopulation::generate(1, 42);
    let user = &population.users()[0];
    println!(
        "user {} threshold for Powerpoint/CPU: {:.2} thread-equivalents",
        user.id,
        user.threshold(Task::Powerpoint, Resource::Cpu)
    );

    // 3. Execute the run at full fidelity: the exercisers contend with
    //    the Powerpoint model and the OS background on the simulated
    //    2 GHz/512 MB study machine, and the monitors record real data.
    let record = execute_run(&RunSetup {
        user,
        task: Task::Powerpoint,
        testcase: &testcase,
        style: RunStyle::Ramp,
        seed: 7,
        fidelity: Fidelity::Full,
        client_id: "quickstart".into(),
    });
    println!("\nrun result:\n{}", record.emit());

    // 4. Advice to implementors (§5): run a small controlled study and
    //    read borrowing levels off the CDFs.
    println!("running a 33-user controlled study for the CDFs ...");
    let data = ControlledStudy::new(StudyConfig {
        seed: 2004,
        users: 33,
        fidelity: Fidelity::Fast,
    })
    .run();
    let mut advisor = ThrottleAdvisor::new();
    for r in Resource::STUDIED {
        advisor.set_aggregate(r, figures::aggregate_cdf(&data, r));
        advisor.set_context(
            Task::Quake,
            r,
            figures::cell_metrics(&data, Task::Quake, r).ecdf.clone(),
        );
    }
    println!("\nthrottle advice (discomforting at most 5% of users):");
    for r in Resource::STUDIED {
        println!(
            "  {:<8} aggregate: {:.2}   while gaming: {:.2}",
            r.to_string(),
            advisor.recommend(r, 0.05).unwrap(),
            advisor.recommend_for(Task::Quake, r, 0.05).unwrap()
        );
    }
}
