//! §5 "Advice to implementors", executable.
//!
//! Runs the controlled study, builds the comfort CDFs, and shows:
//! 1. throttle settings for a range of acceptable-discomfort budgets,
//!    aggregated and per context ("Know what the user is doing"), and
//! 2. the feedback-driven throttle (the paper's future-work direction)
//!    converging against a synthetic user.
//!
//! ```text
//! cargo run --release --example throttle_advisor
//! ```

use uucs::comfort::{FeedbackThrottle, Fidelity, ThrottleAdvisor, UserPopulation};
use uucs::study::controlled::{ControlledStudy, StudyConfig};
use uucs::study::figures;
use uucs::testcase::Resource;
use uucs::workloads::Task;

fn main() {
    eprintln!("running the controlled study for CDFs ...");
    let data = ControlledStudy::new(StudyConfig {
        seed: 2004,
        users: 120,
        fidelity: Fidelity::Fast,
    })
    .run();

    let mut advisor = ThrottleAdvisor::new();
    for r in Resource::STUDIED {
        advisor.set_aggregate(r, figures::aggregate_cdf(&data, r));
        for t in Task::ALL {
            advisor.set_context(t, r, figures::cell_metrics(&data, t, r).ecdf.clone());
        }
    }

    println!("Throttle settings by acceptable discomfort budget (aggregate):");
    println!("{:<10} {:>8} {:>8} {:>8}", "budget", "CPU", "Memory", "Disk");
    for budget in [0.01, 0.05, 0.10, 0.20] {
        let level = |r| {
            advisor
                .recommend(r, budget)
                .map(|l| format!("{l:.2}"))
                .unwrap_or_else(|| "-".into())
        };
        println!(
            "{:<10} {:>8} {:>8} {:>8}",
            format!("{:.0}%", budget * 100.0),
            level(Resource::Cpu),
            level(Resource::Memory),
            level(Resource::Disk)
        );
    }

    println!("\nContext matters (5% budget), as §5 advises:");
    println!("{:<12} {:>8} {:>8} {:>8}", "context", "CPU", "Memory", "Disk");
    for t in Task::ALL {
        let level = |r| {
            advisor
                .recommend_for(t, r, 0.05)
                .map(|l| format!("{l:.2}"))
                .unwrap_or_else(|| "-".into())
        };
        println!(
            "{:<12} {:>8} {:>8} {:>8}",
            t.name(),
            level(Resource::Cpu),
            level(Resource::Memory),
            level(Resource::Disk)
        );
    }

    // The feedback throttle against a synthetic user: borrow CPU from a
    // Quake player, back off on every discomfort click.
    let pop = UserPopulation::generate(1, 99);
    let user = &pop.users()[0];
    let threshold = user.threshold(Task::Quake, Resource::Cpu);
    println!(
        "\nFeedback throttle vs user {} (Quake/CPU threshold {:.2}):",
        user.id, threshold
    );
    let mut throttle = FeedbackThrottle::new(0.05, 10.0, 0.02, 0.5, 10);
    let mut clicks = 0;
    for minute in 0..120 {
        let level = throttle.step();
        if level > threshold {
            throttle.on_discomfort();
            clicks += 1;
        }
        if minute % 20 == 19 {
            println!(
                "  after {:>3} steps: level {:.2} ({} clicks so far)",
                minute + 1,
                throttle.level(),
                clicks
            );
        }
    }
    println!(
        "converged to {:.2} — {:.0}% of the user's true threshold, with {} clicks",
        throttle.level(),
        100.0 * throttle.level() / threshold,
        clicks
    );
}
