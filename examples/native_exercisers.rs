//! The native (real-host) exercisers — the measurement tool itself, as
//! it would run on an end-user machine (paper §2.2). Plays short,
//! time-scaled exercise functions against *this* machine: calibrated
//! busy-wait CPU borrowing, memory-pool touching, and synced scratch-file
//! writes.
//!
//! Everything is small and brief by default (a few seconds, a few MB) so
//! the example is safe to run anywhere.
//!
//! ```text
//! cargo run --release --example native_exercisers
//! ```

use std::time::Duration;
use uucs::exercisers::native::{
    calibrate_spin, run_native_cpu, run_native_disk, run_native_memory, StopFlag,
};
use uucs::stats::Pcg64;
use uucs::testcase::{ExerciseSpec, Resource};

fn main() {
    // Calibration: "carefully calibrated busy-wait loops".
    let cal = calibrate_spin();
    println!("spin calibration: {} iterations/ms", cal.iters_per_ms);

    // CPU: a 120 s ramp played at 60x (2 s real time).
    let f = ExerciseSpec::Ramp {
        level: 1.0,
        duration: 120.0,
    }
    .sample(Resource::Cpu, 1.0);
    let stop = StopFlag::new();
    let mut rng = Pcg64::new(1);
    let stats = run_native_cpu(
        &f,
        0,
        Duration::from_millis(10),
        cal,
        &stop,
        60.0,
        &mut rng,
    );
    println!(
        "cpu exerciser: {} busy / {} idle subintervals (ramp 0 -> 1.0)",
        stats.busy_subintervals, stats.idle_subintervals
    );

    // Memory: a step to 60% of an 8 MB pool, 1 s real time.
    let f = ExerciseSpec::Step {
        level: 0.6,
        duration: 60.0,
        start: 0.0,
    }
    .sample(Resource::Memory, 1.0);
    let stats = run_native_memory(&f, 8 << 20, Duration::from_millis(50), &stop, 60.0);
    println!(
        "memory exerciser: {} pages touched across {} refreshes",
        stats.pages_touched, stats.busy_subintervals
    );

    // Disk: random seeks + synced writes in a 1 MB scratch file, ~1 s.
    let dir = std::env::temp_dir().join(format!("uucs-native-demo-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("scratch.bin");
    let f = ExerciseSpec::Step {
        level: 1.0,
        duration: 30.0,
        start: 0.0,
    }
    .sample(Resource::Disk, 1.0);
    let mut rng = Pcg64::new(2);
    match run_native_disk(
        &f,
        0,
        &path,
        1 << 20,
        65_536,
        Duration::from_millis(20),
        &stop,
        30.0,
        &mut rng,
    ) {
        Ok(stats) => println!(
            "disk exerciser: {} KiB written through ({} busy subintervals)",
            stats.bytes_written / 1024,
            stats.busy_subintervals
        ),
        Err(e) => println!("disk exerciser skipped: {e}"),
    }
    std::fs::remove_dir_all(&dir).ok();

    // The discomfort hot-key: stop everything instantly.
    println!(
        "press-F11 semantics: StopFlag::stop() halts all exercisers immediately \
         and the client records the feedback point."
    );
}
