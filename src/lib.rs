//! # UUCS-RS — Understanding User Comfort with Resource Borrowing
//!
//! A Rust reproduction of *Gupta, Lin, Dinda, "Measuring and Understanding
//! User Comfort With Resource Borrowing", HPDC 2004*.
//!
//! This façade crate re-exports the whole workspace so applications can
//! depend on a single crate:
//!
//! * [`stats`] — deterministic RNG, distributions, ECDFs, t-tests.
//! * [`testcase`] — exercise functions (step/ramp/sin/saw/expexp/exppar)
//!   and testcases, with the paper's text-file format.
//! * [`sim`] — the discrete-event machine simulator (CPU scheduler,
//!   memory/paging, disk) that stands in for the study's Windows host.
//! * [`workloads`] — foreground task models (Word, Powerpoint, IE, Quake).
//! * [`exercisers`] — CPU/memory/disk resource exercisers, both
//!   simulator-backed and native.
//! * [`comfort`] — the core contribution: synthetic user comfort models,
//!   the run engine, comfort metrics (`f_d`, `c_p`, `c_a`), and the
//!   throttle advisor.
//! * [`modelsvc`] — mergeable streaming quantile sketches and the
//!   cohort-keyed comfort model behind the `MODEL`/`ADVICE` verbs and
//!   the client's closed-loop borrowing governor.
//! * [`protocol`] — the client/server text record formats and framing.
//! * [`wire`] — the negotiated binary wire protocol (v2): CRC-framed
//!   typed encodings, request pipelining, and epoch-delta model sync.
//! * [`server`] / [`client`] — the distributed measurement application.
//! * [`cluster`] — the replicated server tier: WAL shipping to
//!   followers, model gossip, and deterministic leader takeover.
//! * [`study`] — the controlled-study and Internet-study drivers plus the
//!   figure/table renderers for every result in the paper.
//! * [`telemetry`] — std-only metrics (counters/gauges/histograms),
//!   spans on a pluggable clock, and the flight recorder; surfaced over
//!   the wire by the `STATS` verb.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use uucs_client as client;
pub use uucs_cluster as cluster;
pub use uucs_comfort as comfort;
pub use uucs_exercisers as exercisers;
pub use uucs_modelsvc as modelsvc;
pub use uucs_protocol as protocol;
pub use uucs_server as server;
pub use uucs_sim as sim;
pub use uucs_stats as stats;
pub use uucs_study as study;
pub use uucs_telemetry as telemetry;
pub use uucs_testcase as testcase;
pub use uucs_wal as wal;
pub use uucs_wire as wire;
pub use uucs_workloads as workloads;
